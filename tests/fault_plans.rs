//! Random fault-plan safety: arbitrary mixes of the new scenario families —
//! partition/merge, duplicate delivery, correlated bursts — stacked on the
//! classic random loss, across arbitrary seeds, must leave the per-site
//! commit logs free of divergence. This is the acceptance property of the
//! scenario-diversity work: `check_logs` is the oracle, the plan space is
//! the adversary.

use dbsm_testbed::core::{run_experiment, ExperimentConfig};
use dbsm_testbed::fault::{check_logs, FaultPlan, FaultSpec};
use dbsm_testbed::sim::SimTime;
use proptest::prelude::*;
use std::time::Duration;

const SITES: usize = 3;

/// The eight ways to split three sites into 2–3 non-empty disjoint groups
/// (plus partial splits that isolate the unlisted site).
const GROUPINGS: [&[&[u16]]; 5] = [
    &[&[0, 1], &[2]],
    &[&[0], &[1, 2]],
    &[&[0, 2], &[1]],
    &[&[0], &[1], &[2]],
    &[&[0], &[1]], // site 2 unlisted: isolated from everyone
];

fn arb_partition() -> impl Strategy<Value = FaultSpec> {
    (0usize..GROUPINGS.len(), 1_000u64..12_000, 100u64..5_000).prop_map(|(which, at_ms, dur_ms)| {
        FaultSpec::Partition {
            groups: GROUPINGS[which].iter().map(|g| g.to_vec()).collect(),
            at: SimTime::from_millis(at_ms),
            heal_at: SimTime::from_millis(at_ms + dur_ms),
        }
    })
}

fn arb_duplicate() -> impl Strategy<Value = FaultSpec> {
    (1u32..30, 1u32..4).prop_map(|(p_pct, max_copies)| FaultSpec::DuplicateDelivery {
        p: f64::from(p_pct) / 100.0,
        max_copies: max_copies as u8,
    })
}

fn arb_burst() -> impl Strategy<Value = FaultSpec> {
    (0u32..8, 1u64..20, 5u32..25).prop_map(|(mask, win_ms, p_pct)| {
        let sites: Vec<u16> = (0u16..SITES as u16).filter(|s| mask & (1 << s) != 0).collect();
        FaultSpec::CorrelatedBurst {
            sites: if sites.is_empty() { (0..SITES as u16).collect() } else { sites },
            window: Duration::from_millis(win_ms),
            p: f64::from(p_pct) / 100.0,
        }
    })
}

/// A random plan drawing 0–1 specs from each new family plus optional
/// classic random loss (picked per-family so every combination arises).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop::collection::vec(arb_partition(), 0..2),
        prop::collection::vec(arb_duplicate(), 0..2),
        prop::collection::vec(arb_burst(), 0..2),
        0u32..5,
    )
        .prop_map(|(parts, dups, bursts, loss_pct)| {
            let mut plan = FaultPlan::none();
            for s in parts.into_iter().chain(dups).chain(bursts) {
                plan = plan.with(s);
            }
            if loss_pct > 0 {
                for s in FaultPlan::random_loss(f64::from(loss_pct) / 100.0).specs {
                    plan = plan.with(s);
                }
            }
            plan
        })
}

/// True if every partition in the plan leaves a 2-site segment: that
/// segment is a primary component of a 3-site view, so the group must stay
/// live and keep committing.
fn keeps_a_primary(plan: &FaultPlan) -> bool {
    plan.specs.iter().all(|s| match s {
        FaultSpec::Partition { groups, .. } => groups.iter().any(|g| g.len() >= 2),
        _ => true,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn random_fault_plans_never_diverge(plan in arb_plan(), seed in any::<u64>()) {
        plan.validate(SITES).expect("generated plans are well-formed");
        let mut cfg = ExperimentConfig::replicated(SITES, 24)
            .with_target(150)
            .with_seed(seed)
            .with_faults(plan.clone());
        // Dense load so plenty of traffic crosses every fault window, and a
        // bounded horizon so no-primary outcomes (all sites halted) end the
        // run promptly.
        cfg.think_mean = Duration::from_secs(1);
        cfg.max_sim = Duration::from_secs(120);
        let m = run_experiment(cfg);
        let crashed: Vec<bool> =
            (0..SITES as u16).map(|s| m.crashed_sites.contains(&s)).collect();
        if let Err(d) = check_logs(&m.commit_logs, &crashed) {
            panic!("divergence under plan {plan:?} seed {seed}: {d}");
        }
        if keeps_a_primary(&plan) {
            prop_assert!(
                m.committed() > 0,
                "a primary component survived every partition yet nothing committed: {plan:?}"
            );
        }
    }
}

/// A crash/restart pair for one site: the crash must precede the restart,
/// which [`FaultPlan::validate`] enforces and the generator guarantees.
fn arb_crash_restart() -> impl Strategy<Value = Vec<FaultSpec>> {
    (0u16..SITES as u16, 1_500u64..8_000, 500u64..6_000).prop_map(|(site, at_ms, down_ms)| {
        vec![
            FaultSpec::Crash { site, at: SimTime::from_millis(at_ms) },
            FaultSpec::Restart { site, at: SimTime::from_millis(at_ms + down_ms) },
        ]
    })
}

/// A random interleaving of crash/partition/heal/restart: 0–2 partition
/// windows (each with its heal) stacked around one crash-then-restart pair,
/// so the rejoin races view changes, primary-component reconfigurations and
/// its own downed network in every combination the generator reaches.
fn arb_restart_plan() -> impl Strategy<Value = FaultPlan> {
    (prop::collection::vec(arb_partition(), 0..3), arb_crash_restart()).prop_map(
        |(parts, crash_restart)| {
            let mut plan = FaultPlan::none();
            for s in parts.into_iter().chain(crash_restart) {
                plan = plan.with(s);
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn random_restart_interleavings_are_safe_and_deterministic(
        plan in arb_restart_plan(),
        seed in any::<u64>(),
    ) {
        use dbsm_testbed::fault::check_logs_rejoined_multi;
        plan.validate(SITES).expect("generated plans are well-formed");
        let cfg = || {
            let mut cfg = ExperimentConfig::replicated(SITES, 24)
                .with_target(150)
                .with_seed(seed)
                .with_faults(plan.clone());
            cfg.think_mean = Duration::from_secs(1);
            cfg.max_sim = Duration::from_secs(120);
            cfg
        };
        let m = run_experiment(cfg());
        // Safety: every log — operational, halted, or rejoined — sits on
        // one chain, with rejoined sites chaining through their cuts.
        let crashed: Vec<bool> =
            (0..SITES as u16).map(|s| m.crashed_sites.contains(&s)).collect();
        if let Err(d) = check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts()) {
            panic!("divergence under plan {plan:?} seed {seed}: {d}");
        }
        // Determinism: the same seed reproduces the run bit for bit,
        // recovery machinery included.
        let m2 = run_experiment(cfg());
        prop_assert_eq!(&m.commit_logs, &m2.commit_logs, "commit logs must be bit-identical");
        prop_assert_eq!(&m.rejoins, &m2.rejoins, "rejoin records must be bit-identical");
        prop_assert_eq!(m.recovery_work, m2.recovery_work);
        prop_assert_eq!(m.committed(), m2.committed());
        prop_assert_eq!(m.crashed_sites, m2.crashed_sites);
    }
}

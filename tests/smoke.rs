//! CI smoke test: a small 3-replica experiment run twice with the same RNG
//! seed must produce *identical* metrics — not just the same commit order,
//! but the same latency samples, resource usage and network traffic. This
//! guards the simulation's reproducibility promise (the paper's methodology
//! depends on re-runnable experiments) against nondeterminism creeping in
//! through hash-map iteration, uninitialized state or wall-clock leakage.

use dbsm_testbed::core::{
    run_experiment, AnnBatchPolicy, CertBackendKind, ExperimentConfig, RunMetrics,
};

fn small_run_with(seed: u64, backend: CertBackendKind) -> RunMetrics {
    run_experiment(
        ExperimentConfig::replicated(3, 20)
            .with_target(60)
            .with_seed(seed)
            .with_cert_backend(backend),
    )
}

// The Linear pin is deliberate: the paper-faithful scan stays exercised
// even though the experiment default flipped to Indexed.
fn small_run(seed: u64) -> RunMetrics {
    small_run_with(seed, CertBackendKind::Linear)
}

/// Every externally observable metric of two same-seed runs must match.
fn assert_identical(a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.committed(), b.committed(), "committed count");
    assert_eq!(a.aborted(), b.aborted(), "aborted count");
    assert_eq!(a.elapsed, b.elapsed, "virtual elapsed time");
    assert_eq!(a.network_tx_bytes, b.network_tx_bytes, "network traffic");
    assert_eq!(a.commit_logs, b.commit_logs, "per-site commit sequences");
    assert_eq!(a.crashed_sites, b.crashed_sites, "crash record");
    assert_eq!(a.per_class.len(), b.per_class.len());
    for (ca, cb) in a.per_class.iter().zip(&b.per_class) {
        assert_eq!(ca.submitted, cb.submitted, "per-class submitted");
        assert_eq!(ca.committed, cb.committed, "per-class committed");
        assert_eq!(ca.aborted_user, cb.aborted_user, "per-class user aborts");
        assert_eq!(ca.aborted_ww, cb.aborted_ww, "per-class ww aborts");
        assert_eq!(ca.aborted_remote, cb.aborted_remote, "per-class remote aborts");
        assert_eq!(ca.aborted_cert, cb.aborted_cert, "per-class cert aborts");
        assert_eq!(
            ca.latencies_ms.values(),
            cb.latencies_ms.values(),
            "per-class latency samples, in recording order"
        );
    }
    assert_eq!(
        a.cert_latencies_ms.values(),
        b.cert_latencies_ms.values(),
        "certification latency samples, in recording order"
    );
    assert_eq!(a.cert_work, b.cert_work, "certification work ledger");
    assert_eq!(a.ann_work, b.ann_work, "announcement work ledger");
    // Same-seed runs must be exactly deterministic: compare bit patterns,
    // not within a tolerance — a tolerance would let tiny nondeterminism
    // (e.g. float summation order) slip through.
    for (ua, ub) in a.site_usage.iter().zip(&b.site_usage) {
        assert_eq!(ua.cpu_total.to_bits(), ub.cpu_total.to_bits(), "cpu_total");
        assert_eq!(ua.cpu_real.to_bits(), ub.cpu_real.to_bits(), "cpu_real");
        assert_eq!(ua.disk.to_bits(), ub.disk.to_bits(), "disk");
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = small_run(1234);
    let b = small_run(1234);
    assert!(a.committed() > 0, "smoke run commits work");
    assert_identical(&a, &b);
}

#[test]
fn same_seed_runs_are_bit_identical_with_indexed_backend() {
    // The reproducibility promise holds for every certification backend:
    // the indexed write history must be just as deterministic as the linear
    // scan, and its three replicas must commit the identical sequence.
    let a = small_run_with(1234, CertBackendKind::Indexed);
    let b = small_run_with(1234, CertBackendKind::Indexed);
    assert!(a.committed() > 0, "smoke run commits work");
    assert_identical(&a, &b);
    dbsm_testbed::fault::check_logs(&a.commit_logs, &[false; 3]).expect("identical sequences");
    // The backend's work ledger is the indexed one: probes, not scans.
    assert!(a.cert_work.probes > 0, "indexed backend reports probe work");
    assert_eq!(a.cert_work.comparisons, 0, "indexed backend performs no merge comparisons");
}

#[test]
fn default_backend_is_indexed_and_bit_reproducible() {
    // The default certification backend flipped from Linear to Indexed; a
    // config that never names a backend must get the index and stay exactly
    // as deterministic as before.
    let default_cfg = || ExperimentConfig::replicated(3, 20).with_target(60).with_seed(1234);
    assert_eq!(default_cfg().cert_backend, CertBackendKind::Indexed);
    let a = run_experiment(default_cfg());
    let b = run_experiment(default_cfg());
    assert!(a.committed() > 0, "smoke run commits work");
    assert_identical(&a, &b);
    assert!(a.cert_work.probes > 0, "the default run certifies through the index");
    assert_eq!(a.cert_work.comparisons, 0, "no linear scans under the default");
}

#[test]
fn sharded_backend_is_deterministic_with_a_critical_path_ledger() {
    // The sharded certifier must be exactly as deterministic as the
    // single-threaded backends (its shard map is a pure function), all
    // replicas must commit the identical sequence, and its work ledger must
    // actually split total from critical-path probes.
    let a = small_run_with(1234, CertBackendKind::Sharded { shards: 4 });
    let b = small_run_with(1234, CertBackendKind::Sharded { shards: 4 });
    assert!(a.committed() > 0, "smoke run commits work");
    assert_identical(&a, &b);
    dbsm_testbed::fault::check_logs(&a.commit_logs, &[false; 3]).expect("identical sequences");
    assert!(a.cert_work.probes > 0, "sharded backend reports probe work");
    assert!(a.cert_work.critical_probes > 0, "critical path recorded");
    assert!(a.cert_work.critical_probes <= a.cert_work.probes, "critical <= total");
    assert!(a.cert_work.shard_touches > 0, "shard fan-out recorded");
    assert!(a.cert_work.parallel_speedup() >= 1.0);
    assert_eq!(a.cert_work.comparisons, 0, "sharded backend performs no merge comparisons");
}

#[test]
fn both_backends_run_the_workload_safely() {
    // End-to-end cross-backend sanity: the two backends are priced
    // differently (comparisons vs probes), so event timing — and hence the
    // interleaving each sequencer happens to order — may legitimately
    // differ between the two runs, and their committed streams are not
    // comparable transaction-by-transaction. Decision-level bit-identity on
    // the *same* totally ordered stream is enforced elsewhere: the
    // `cert_backends_produce_identical_outcome_streams` proptest and the
    // dbsm_cert equivalence tests. What this test pins down is that each
    // backend drives the full replicated experiment safely (all sites agree
    // within a run) and that the work ledger reflects the backend that ran.
    let lin = small_run_with(77, CertBackendKind::Linear);
    let idx = small_run_with(77, CertBackendKind::Indexed);
    dbsm_testbed::fault::check_logs(&lin.commit_logs, &[false; 3]).expect("linear safety");
    dbsm_testbed::fault::check_logs(&idx.commit_logs, &[false; 3]).expect("indexed safety");
    assert!(lin.committed() > 0 && idx.committed() > 0);
    assert!(lin.cert_work.certifications > 0 && lin.cert_work.probes == 0);
    assert!(idx.cert_work.probes > 0 && idx.cert_work.comparisons == 0);
}

#[test]
fn adaptive_ann_batching_is_reproducible_with_a_live_ledger() {
    // The adaptive announcement policy must be exactly as deterministic as
    // the rest of the stack — its backlog-sized flush windows and MTU-slack
    // piggybacking depend only on simulated state — and its work ledger must
    // actually record announcement traffic. Checked across two seeds so the
    // ledger is pinned bit-reproducibly at two distinct operating points.
    for seed in [1234u64, 4321] {
        let run = || {
            run_experiment(
                ExperimentConfig::replicated(3, 20)
                    .with_target(60)
                    .with_seed(seed)
                    .with_ann_policy(AnnBatchPolicy::adaptive_lan()),
            )
        };
        let a = run();
        let b = run();
        assert!(a.committed() > 0, "seed {seed}: smoke run commits work");
        assert_identical(&a, &b);
        dbsm_testbed::fault::check_logs(&a.commit_logs, &[false; 3]).expect("identical sequences");
        assert!(a.ann_work.announcements > 0, "seed {seed}: ledger records announcements");
        assert_eq!(
            a.ann_work.assigns_total(),
            b.ann_work.assigns_total(),
            "seed {seed}: assignment totals reproduce"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = small_run(1234);
    let b = small_run(4321);
    // With different seeds the runs must not be identical — otherwise the
    // seed is not actually wired through the stochastic components.
    assert_ne!(a.commit_logs, b.commit_logs, "seed must steer the workload");
}

//! CI smoke test: a small 3-replica experiment run twice with the same RNG
//! seed must produce *identical* metrics — not just the same commit order,
//! but the same latency samples, resource usage and network traffic. This
//! guards the simulation's reproducibility promise (the paper's methodology
//! depends on re-runnable experiments) against nondeterminism creeping in
//! through hash-map iteration, uninitialized state or wall-clock leakage.

use dbsm_testbed::core::{run_experiment, ExperimentConfig, RunMetrics};

fn small_run(seed: u64) -> RunMetrics {
    run_experiment(ExperimentConfig::replicated(3, 20).with_target(60).with_seed(seed))
}

/// Every externally observable metric of two same-seed runs must match.
fn assert_identical(a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.committed(), b.committed(), "committed count");
    assert_eq!(a.aborted(), b.aborted(), "aborted count");
    assert_eq!(a.elapsed, b.elapsed, "virtual elapsed time");
    assert_eq!(a.network_tx_bytes, b.network_tx_bytes, "network traffic");
    assert_eq!(a.commit_logs, b.commit_logs, "per-site commit sequences");
    assert_eq!(a.crashed_sites, b.crashed_sites, "crash record");
    assert_eq!(a.per_class.len(), b.per_class.len());
    for (ca, cb) in a.per_class.iter().zip(&b.per_class) {
        assert_eq!(ca.submitted, cb.submitted, "per-class submitted");
        assert_eq!(ca.committed, cb.committed, "per-class committed");
        assert_eq!(ca.aborted_user, cb.aborted_user, "per-class user aborts");
        assert_eq!(ca.aborted_ww, cb.aborted_ww, "per-class ww aborts");
        assert_eq!(ca.aborted_remote, cb.aborted_remote, "per-class remote aborts");
        assert_eq!(ca.aborted_cert, cb.aborted_cert, "per-class cert aborts");
        assert_eq!(
            ca.latencies_ms.values(),
            cb.latencies_ms.values(),
            "per-class latency samples, in recording order"
        );
    }
    assert_eq!(
        a.cert_latencies_ms.values(),
        b.cert_latencies_ms.values(),
        "certification latency samples, in recording order"
    );
    // Same-seed runs must be exactly deterministic: compare bit patterns,
    // not within a tolerance — a tolerance would let tiny nondeterminism
    // (e.g. float summation order) slip through.
    for (ua, ub) in a.site_usage.iter().zip(&b.site_usage) {
        assert_eq!(ua.cpu_total.to_bits(), ub.cpu_total.to_bits(), "cpu_total");
        assert_eq!(ua.cpu_real.to_bits(), ub.cpu_real.to_bits(), "cpu_real");
        assert_eq!(ua.disk.to_bits(), ub.disk.to_bits(), "disk");
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = small_run(1234);
    let b = small_run(1234);
    assert!(a.committed() > 0, "smoke run commits work");
    assert_identical(&a, &b);
}

#[test]
fn different_seeds_diverge() {
    let a = small_run(1234);
    let b = small_run(4321);
    // With different seeds the runs must not be identical — otherwise the
    // seed is not actually wired through the stochastic components.
    assert_ne!(a.commit_logs, b.commit_logs, "seed must steer the workload");
}

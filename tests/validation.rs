//! Tests of the §4.2 validation harness: the simulated flooding/RTT curves
//! must match the analytic expectations of the configured models, and the
//! RealRig comparison must produce comparable distributions.

use dbsm_testbed::core::validate::{flood_sim, real_rig_run, rtt_sim, sim_rig_run, RigConfig};
use dbsm_testbed::gcs::OverheadModel;
use std::time::Duration;

#[test]
fn flood_sim_write_rate_is_cpu_bound() {
    let overhead = OverheadModel::pentium3_1ghz();
    let r = flood_sim(4000, Duration::from_millis(100), overhead);
    // Analytic: one message costs 18us + 9ns/B * 4000 = 54us -> ~18.5k msg/s
    // -> ~593 Mbit/s written.
    assert!((r.written_mbit - 590.0).abs() < 60.0, "written {:.0} Mbit/s", r.written_mbit);
    // The wire caps reception at 100 Mbit/s.
    assert!(r.received_mbit < 100.0, "received {:.0}", r.received_mbit);
    assert!(r.received_mbit > 60.0, "received {:.0}", r.received_mbit);
}

#[test]
fn flood_sim_bandwidth_grows_with_message_size() {
    let overhead = OverheadModel::pentium3_1ghz();
    let small = flood_sim(256, Duration::from_millis(50), overhead);
    let large = flood_sim(4000, Duration::from_millis(50), overhead);
    // Fig. 3a's shape: amortizing the fixed overhead raises bandwidth.
    assert!(large.written_mbit > small.written_mbit * 2.0);
}

#[test]
fn rtt_sim_matches_analytic_model() {
    let overhead = OverheadModel::pentium3_1ghz();
    let rtt = rtt_sim(1000, 20, overhead);
    // Two sends (27us), two receives (30us), two serializations of
    // 1042B (83us) and two propagations (50us) ~= 380us.
    let us = rtt.as_secs_f64() * 1e6;
    assert!((us - 380.0).abs() < 80.0, "rtt {us:.0}us");
}

#[test]
fn rtt_sim_grows_with_size() {
    let overhead = OverheadModel::pentium3_1ghz();
    let small = rtt_sim(64, 10, overhead);
    let large = rtt_sim(4000, 10, overhead);
    assert!(large > small);
}

#[test]
fn rig_and_sim_produce_comparable_latency_distributions() {
    // A miniature Fig. 4: the simulated centralized server against the
    // genuinely concurrent executor, same workload and scaled parameters.
    let cfg = RigConfig { clients: 8, txns: 120, cores: 2, ..RigConfig::default() };
    let mut real = real_rig_run(cfg);
    let mut sim = sim_rig_run(cfg);
    assert!(real.update_ms.len() > 20, "rig update samples {}", real.update_ms.len());
    assert!(sim.update_ms.len() > 20, "sim update samples {}", sim.update_ms.len());
    // Medians within a factor of three: the Q-Q plot hugs the diagonal at
    // that granularity (tighter bounds would make the test flaky on loaded
    // CI machines).
    let (rm, sm) = (
        real.update_ms.percentile(50.0).expect("samples"),
        sim.update_ms.percentile(50.0).expect("samples"),
    );
    let ratio = if rm > sm { rm / sm } else { sm / rm };
    assert!(ratio < 3.0, "median ratio {ratio:.2} (real {rm:.2}ms vs sim {sm:.2}ms)");
}

//! Property-based tests of the group-communication stack: total order and
//! reliability must hold for arbitrary loss patterns and send schedules —
//! the protocol-level core of the paper's dependability claims.

use bytes::Bytes;
use dbsm_testbed::gcs::{testkit::TestNet, GcsConfig, NodeId};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn total_order_and_reliability_under_arbitrary_loss(
        seed in 0u64..1000,
        loss_num in 0u32..25,       // loss percentage 0..25%
        msgs in 3usize..25,
        n_nodes in 2usize..5,
    ) {
        let mut net = TestNet::new(GcsConfig::lan(n_nodes));
        // Deterministic pseudo-random drop pattern derived from `seed`.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        net.set_drop_fn(move |_, _, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) < u64::from(loss_num)
        });
        for i in 0..msgs {
            net.broadcast(NodeId((i % n_nodes) as u16), Bytes::from(i.to_le_bytes().to_vec()));
            net.run_for(Duration::from_millis(3));
        }
        net.run_for(Duration::from_secs(20));
        let reference = net.deliveries(NodeId(0));
        prop_assert_eq!(reference.len(), msgs, "every message delivered");
        for n in 1..n_nodes {
            prop_assert_eq!(
                net.deliveries(NodeId(n as u16)).len(),
                reference.len(),
                "node {} delivered all", n
            );
            prop_assert_eq!(&net.deliveries(NodeId(n as u16)), &reference,
                "node {} agrees on order", n);
        }
    }

    #[test]
    fn crash_at_any_point_keeps_survivors_consistent(
        crash_after_ms in 1u64..200,
        msgs in 4usize..20,
    ) {
        let mut net = TestNet::new(GcsConfig::lan(3));
        for i in 0..msgs {
            net.broadcast(NodeId((i % 3) as u16), Bytes::from(i.to_le_bytes().to_vec()));
            net.run_for(Duration::from_millis(4));
        }
        net.run_until(crash_after_ms * 1_000_000);
        net.crash(NodeId(2));
        net.run_for(Duration::from_secs(25));
        let d0 = net.deliveries(NodeId(0));
        let d1 = net.deliveries(NodeId(1));
        prop_assert_eq!(&d0, &d1, "survivors agree");
        // The crashed node's deliveries are a prefix of the survivors'.
        let d2 = net.deliveries(NodeId(2));
        prop_assert!(d2.len() <= d0.len());
        prop_assert_eq!(&d0[..d2.len()], &d2[..], "crashed node holds a prefix");
        // Liveness after reconfiguration.
        net.broadcast(NodeId(0), Bytes::from_static(b"post-crash"));
        net.run_for(Duration::from_secs(5));
        prop_assert_eq!(net.deliveries(NodeId(0)).len(), net.deliveries(NodeId(1)).len());
        prop_assert!(net.deliveries(NodeId(0)).len() > d0.len(), "group still live");
    }

    #[test]
    fn partition_at_any_point_keeps_primary_component_consistent(
        split_after_ms in 1u64..200,
        msgs in 4usize..20,
    ) {
        // Partition {0,1} | {2} at an arbitrary instant: the majority side
        // must reconfigure and stay consistent, the minority node must halt
        // (never forming a rump view), and its deliveries must be a prefix
        // of the survivors'.
        let mut net = TestNet::new(GcsConfig::lan(3));
        for i in 0..msgs {
            net.broadcast(NodeId((i % 3) as u16), Bytes::from(i.to_le_bytes().to_vec()));
            net.run_for(Duration::from_millis(4));
        }
        net.run_until(split_after_ms * 1_000_000);
        net.set_drop_fn(|from, to, _| (to == NodeId(2)) != (from == NodeId(2)));
        net.run_for(Duration::from_secs(25));
        let d0 = net.deliveries(NodeId(0));
        let d1 = net.deliveries(NodeId(1));
        prop_assert_eq!(&d0, &d1, "primary component agrees");
        let d2 = net.deliveries(NodeId(2));
        prop_assert!(d2.len() <= d0.len());
        prop_assert_eq!(&d0[..d2.len()], &d2[..], "minority node holds a prefix");
        prop_assert!(net.nodes[2].borrow().is_halted(), "minority node halted");
        prop_assert_eq!(net.nodes[0].borrow().view().members.len(), 2);
        // Heal: the halted node stays down (no rejoin protocol), the
        // primary component stays live.
        net.set_drop_fn(|_, _, _| false);
        net.broadcast(NodeId(0), Bytes::from_static(b"post-merge"));
        net.run_for(Duration::from_secs(5));
        prop_assert_eq!(net.deliveries(NodeId(0)).len(), net.deliveries(NodeId(1)).len());
        prop_assert!(net.deliveries(NodeId(0)).len() > d0.len(), "group still live after heal");
        prop_assert_eq!(net.deliveries(NodeId(2)).len(), d2.len(), "halted node stays halted");
    }

    #[test]
    fn fragmentation_roundtrips_any_size(size in 0usize..8000) {
        let mut net = TestNet::new(GcsConfig::lan(2));
        let payload = Bytes::from(vec![0xC3u8; size]);
        net.broadcast(NodeId(0), payload.clone());
        net.run_for(Duration::from_secs(3));
        let d = net.deliveries(NodeId(1));
        prop_assert_eq!(d.len(), 1);
        prop_assert_eq!(d[0].1.len(), size, "payload intact after fragmentation");
        prop_assert_eq!(&d[0].1, &payload);
    }
}

//! End-to-end integration tests of the assembled testbed: the replicated
//! database model under TPC-C load, with and without faults, checked for
//! the paper's safety condition and basic performance sanity.

use dbsm_testbed::core::{run_experiment, ExperimentConfig};
use dbsm_testbed::fault::{check_logs, FaultPlan};
use dbsm_testbed::sim::SimTime;
use dbsm_testbed::tpcc::TxnClass;
use std::time::Duration;

fn crashed_flags(m: &dbsm_testbed::core::RunMetrics, sites: usize) -> Vec<bool> {
    (0..sites as u16).map(|s| m.crashed_sites.contains(&s)).collect()
}

#[test]
fn centralized_run_commits_and_measures() {
    let m = run_experiment(ExperimentConfig::centralized(1, 40).with_target(400));
    assert!(m.committed() > 300, "committed {}", m.committed());
    assert!(m.tpm() > 0.0);
    assert!(m.mean_latency_ms() > 0.0);
    assert!(m.elapsed > SimTime::ZERO);
    // The mix hit every major class.
    assert!(m.class(TxnClass::NewOrder).submitted > 0);
    assert!(m.class(TxnClass::PaymentLong).submitted > 0);
}

#[test]
fn replicated_sites_commit_identical_sequences() {
    let m = run_experiment(ExperimentConfig::replicated(3, 45).with_target(400));
    assert!(m.committed() > 300);
    check_logs(&m.commit_logs, &[false; 3]).expect("identical sequences");
    // Update transactions certify: the logs must be non-trivial.
    assert!(m.commit_logs[0].len() > 100, "log {}", m.commit_logs[0].len());
    assert!(m.cert_latencies_ms.len() > 100);
}

#[test]
fn indexed_backend_is_safe_and_performant_under_load() {
    use dbsm_testbed::core::CertBackendKind;
    // The indexed certifier must uphold the DBSM safety condition across
    // replicas under real TPC-C load, and — charged honestly through
    // per_probe_ns — not fall behind the linear backend's throughput.
    let idx = run_experiment(
        ExperimentConfig::replicated(3, 150)
            .with_target(600)
            .with_cert_backend(CertBackendKind::Indexed),
    );
    check_logs(&idx.commit_logs, &[false; 3]).expect("identical sequences (indexed)");
    assert!(idx.committed() > 450, "committed {}", idx.committed());
    assert!(idx.cert_work.probes > 0);
    // Explicitly Linear: the experiment default is Indexed now, and this
    // comparison needs the paper-faithful scan on the other side.
    let lin = run_experiment(
        ExperimentConfig::replicated(3, 150)
            .with_target(600)
            .with_cert_backend(CertBackendKind::Linear),
    );
    let ratio = idx.tpm() / lin.tpm();
    assert!(
        ratio > 0.9,
        "indexed tpm {} should not trail linear tpm {} (ratio {ratio:.2})",
        idx.tpm(),
        lin.tpm()
    );
    // The load-dependent scan work disappears entirely under the index.
    assert!(lin.cert_work.history_scanned > 0);
    assert_eq!(idx.cert_work.history_scanned, 0);
}

#[test]
fn sharded_backend_is_safe_and_shrinks_the_critical_path_under_load() {
    use dbsm_testbed::core::CertBackendKind;
    // The sharded certifier under real TPC-C load: safety across replicas,
    // throughput on par with the indexed backend (its decisions are
    // identical; its pricing is max-over-shards + merge, never worse than
    // the serial sum by more than the merge term), and a work ledger whose
    // critical path is genuinely below the serial total — the parallelism
    // the home-warehouse shard key exists to expose.
    let sh = run_experiment(
        ExperimentConfig::replicated(3, 150)
            .with_target(600)
            .with_cert_backend(CertBackendKind::Sharded { shards: 8 }),
    );
    check_logs(&sh.commit_logs, &[false; 3]).expect("identical sequences (sharded)");
    assert!(sh.committed() > 450, "committed {}", sh.committed());
    assert!(sh.cert_work.probes > 0 && sh.cert_work.comparisons == 0);
    assert!(
        sh.cert_work.critical_probes < sh.cert_work.probes,
        "critical path {} must sit below the serial total {}",
        sh.cert_work.critical_probes,
        sh.cert_work.probes
    );
    assert!(
        sh.cert_work.parallel_speedup() > 1.2,
        "home-warehouse sharding should parallelize TPC-C probes (speedup {:.2})",
        sh.cert_work.parallel_speedup()
    );
    let idx = run_experiment(
        ExperimentConfig::replicated(3, 150)
            .with_target(600)
            .with_cert_backend(CertBackendKind::Indexed),
    );
    let ratio = sh.tpm() / idx.tpm();
    assert!(
        ratio > 0.9,
        "sharded tpm {} should not trail indexed tpm {} (ratio {ratio:.2})",
        sh.tpm(),
        idx.tpm()
    );
}

#[test]
fn sharded_backend_safety_holds_under_faults() {
    use dbsm_testbed::core::CertBackendKind;
    // Loss and a mid-run crash exercise retransmission, view change and the
    // gc/low-water machinery on the sharded path — per-shard eviction must
    // stay in lockstep with the history under both.
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(400)
            .with_faults(FaultPlan::random_loss(0.05))
            .with_cert_backend(CertBackendKind::Sharded { shards: 4 }),
    );
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under loss (sharded)");
    assert!(m.committed() > 300);
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(600)
            .with_faults(FaultPlan::crash(2, SimTime::from_secs(15)))
            .with_cert_backend(CertBackendKind::Sharded { shards: 4 }),
    );
    assert_eq!(m.crashed_sites, vec![2]);
    check_logs(&m.commit_logs, &[false, false, true]).expect("crashed site holds a prefix");
}

#[test]
fn indexed_backend_safety_holds_under_faults() {
    use dbsm_testbed::core::CertBackendKind;
    // Loss and a mid-run crash exercise retransmission, view change and the
    // gc/low-water machinery on the indexed path.
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(400)
            .with_faults(FaultPlan::random_loss(0.05))
            .with_cert_backend(CertBackendKind::Indexed),
    );
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under loss (indexed)");
    assert!(m.committed() > 300);
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(600)
            .with_faults(FaultPlan::crash(2, SimTime::from_secs(15)))
            .with_cert_backend(CertBackendKind::Indexed),
    );
    assert_eq!(m.crashed_sites, vec![2]);
    check_logs(&m.commit_logs, &[false, false, true]).expect("crashed site holds a prefix");
}

#[test]
fn pipelined_commit_path_is_safe_and_removes_the_delivery_stall() {
    use dbsm_testbed::core::{CertBackendKind, CommitPath};
    // The overlap tentpole end-to-end: speculative certification on
    // tentative delivery must preserve the DBSM safety condition (identical
    // commit sequences across replicas), move the probe work onto the shard
    // servers (queue/service/merge ledger), and strip the data-dependent
    // conflict check out of the delivery loop (stall ≈ 0 vs synchronous).
    let mk = |path| {
        run_experiment(
            ExperimentConfig::replicated(3, 150)
                .with_target(600)
                .with_cert_backend(CertBackendKind::Sharded { shards: 8 })
                .with_commit_path(path),
        )
    };
    let sync = mk(CommitPath::Synchronous);
    let pipe = mk(CommitPath::Pipelined);
    check_logs(&pipe.commit_logs, &[false; 3]).expect("identical sequences (pipelined)");
    assert!(pipe.committed() > 450, "committed {}", pipe.committed());
    // Every confirmation resolved against a speculation or certified fresh.
    assert!(pipe.cert_work.spec_total() > 0, "speculations confirmed: {:?}", pipe.cert_work);
    assert_eq!(sync.cert_work.spec_total(), 0, "synchronous runs never speculate");
    // The probe work moved to the shard servers...
    assert!(pipe.cert_work.service_ns > 0, "shard-server service recorded");
    assert_eq!(sync.cert_work.service_ns, 0);
    // ...and the delivery loop stopped paying for it: what remains is the
    // occasional delta revalidation, a small fraction of the full checks.
    assert!(
        pipe.cert_work.stall_ns * 2 < sync.cert_work.stall_ns,
        "pipelined stall {}ns should sit far below synchronous {}ns",
        pipe.cert_work.stall_ns,
        sync.cert_work.stall_ns
    );
    // Throughput must not regress for the overlap.
    let ratio = pipe.tpm() / sync.tpm();
    assert!(
        ratio > 0.9,
        "pipelined tpm {} should not trail synchronous tpm {} (ratio {ratio:.2})",
        pipe.tpm(),
        sync.tpm()
    );
}

#[test]
fn pipelined_safety_holds_under_faults() {
    use dbsm_testbed::core::{CertBackendKind, CommitPath};
    // Loss reorders tentative vs total-order delivery, exercising the
    // revalidation and rollback confirmation paths; a crash exercises the
    // gc/low-water machinery with speculations in flight.
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(400)
            .with_faults(FaultPlan::random_loss(0.05))
            .with_cert_backend(CertBackendKind::Sharded { shards: 4 })
            .with_commit_path(CommitPath::Pipelined),
    );
    check_logs(&m.commit_logs, &[false; 3]).expect("pipelined safety under loss");
    assert!(m.committed() > 300);
    assert!(m.cert_work.spec_total() > 0);
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(600)
            .with_faults(FaultPlan::crash(2, SimTime::from_secs(15)))
            .with_cert_backend(CertBackendKind::Indexed)
            .with_commit_path(CommitPath::Pipelined),
    );
    assert_eq!(m.crashed_sites, vec![2]);
    check_logs(&m.commit_logs, &[false, false, true]).expect("crashed site holds a prefix");
}

#[test]
fn partial_replication_is_safe_and_shrinks_per_site_certification() {
    // The partial-replication tentpole end-to-end: span-restricted
    // certification with a vote round must uphold the DBSM safety
    // condition — identical commit sequences at every site, because the
    // merged span verdicts are exactly the full-replication verdict — while
    // each site examines only ~k/N of the read/write-set entries.
    let full = run_experiment(ExperimentConfig::replicated(6, 120).with_target(500));
    let part = run_experiment(
        ExperimentConfig::replicated(6, 120).with_target(500).with_replication_factor(2),
    );
    check_logs(&part.commit_logs, &[false; 6]).expect("identical sequences (partial)");
    assert!(part.committed() > 400, "committed {}", part.committed());
    // TPC-C's remote-warehouse touches (New-Order remote stock, Payment
    // remote customer) genuinely cross spans and pay vote rounds; every
    // cross-span transaction collects at least one remote vote.
    assert!(part.cert_work.cross_span_txns > 0, "cross-span txns: {:?}", part.cert_work);
    assert!(part.cert_work.vote_rounds >= part.cert_work.cross_span_txns);
    // Span-restricted certification filters most of the tuple space: at
    // k/N = 2/6 the local fraction sits far below full replication's 1.0.
    let frac = part.cert_work.span_fraction();
    assert!(frac < 0.75, "span fraction {frac} should reflect k/N = 1/3");
    assert!(frac > 0.05, "a site still certifies its own span: {frac}");
    assert_eq!(full.cert_work.span_total, 0, "full replication records no span filter");
    assert_eq!(full.cert_work.vote_rounds, 0);
    // The abort decisions are the same decisions: a cross-span conflict
    // aborts identically on every voting site, so abort rates agree to
    // within load noise.
    assert!(part.committed() > 0 && full.committed() > 0);
}

#[test]
fn partial_replication_is_deterministic_and_fault_checked() {
    // Same seed, same placement -> bit-identical run. A fault plan that
    // strands a warehouse with zero live replicas is accepted under the
    // relaxed default (re-placement re-homes the span onto a survivor) but
    // still rejected under strict coverage, and a plan downing every site
    // is rejected either way (satellite: FaultPlan x PlacementMap
    // cross-validation).
    use dbsm_testbed::core::PlacementMap;
    let mk = || {
        ExperimentConfig::replicated(6, 120)
            .with_target(300)
            .with_replication_factor(2)
            .with_seed(9)
    };
    let a = run_experiment(mk());
    let b = run_experiment(mk());
    assert_eq!(a.commit_logs, b.commit_logs);
    assert_eq!(a.cert_work.vote_rounds, b.cert_work.vote_rounds);
    let stranding = || {
        FaultPlan::partition(
            vec![vec![0, 1, 2, 3], vec![4, 5]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        )
    };
    assert!(mk().with_faults(stranding()).validate().is_ok(), "relaxed default re-homes");
    let strict = PlacementMap::round_robin(6, 2).with_strict_coverage();
    assert!(mk().with_placement(strict).with_faults(stranding()).validate().is_err());
    let total_outage = (0..6).fold(FaultPlan::none(), |p, s| {
        p.with(dbsm_testbed::fault::FaultSpec::Crash { site: s, at: SimTime::from_secs(1) })
    });
    assert!(mk().with_faults(total_outage).validate().is_err(), "nobody left to adopt");
}

#[test]
fn replacement_rehomes_stranded_spans_and_degrades_gracefully() {
    // The re-placement tentpole end-to-end. At rf 2 over 6 sites a single
    // crash strands nothing — every span keeps a live replica and clients
    // re-route to it — so throughput degrades gracefully instead of
    // collapsing. Crashing an adjacent pair removes both replicas of the
    // spans homed on the pair: the survivors elect an adopter by
    // rendezvous hash, ship span state, re-collect in-flight vote rounds,
    // and the run completes with the safety condition intact.
    use dbsm_testbed::core::report::summary_line;
    let mk = |faults: FaultPlan| {
        ExperimentConfig::replicated(6, 120)
            .with_target(600)
            .with_replication_factor(2)
            .with_seed(11)
            .with_faults(faults)
    };
    let base = run_experiment(mk(FaultPlan::none()));
    assert_eq!(base.replacement_work, Default::default(), "no churn, no re-placement");

    let one = run_experiment(mk(FaultPlan::crash(5, SimTime::from_secs(10))));
    assert_eq!(one.replacement_work.rehomed_spans, 0, "rf 2 survives one crash in place");
    let ratio = one.tpm() / base.tpm();
    assert!(
        ratio >= 0.6,
        "one crash must degrade gracefully: tpm {} vs baseline {} (ratio {ratio:.2})",
        one.tpm(),
        base.tpm()
    );
    check_logs(&one.commit_logs, &crashed_flags(&one, 6)).expect("safety under one crash");

    let pair = || {
        FaultPlan::crash(0, SimTime::from_secs(10))
            .with(dbsm_testbed::fault::FaultSpec::Crash { site: 1, at: SimTime::from_secs(12) })
    };
    let two = run_experiment(mk(pair()));
    assert!(two.replacement_work.replacements >= 1, "{:?}", two.replacement_work);
    assert!(two.replacement_work.rehomed_spans >= 1, "{:?}", two.replacement_work);
    assert!(two.replacement_work.transfer_bytes > 0);
    assert!(two.replacement_work.time_to_serving_ns_total > 0);
    check_logs(&two.commit_logs, &crashed_flags(&two, 6)).expect("safety across re-homing");
    assert!(two.committed() > 300, "committed {}", two.committed());
    // Re-placed runs stay bit-identical for a seed.
    let again = run_experiment(mk(pair()));
    assert_eq!(two.commit_logs, again.commit_logs);
    assert_eq!(two.replacement_work, again.replacement_work);
    println!("replacement smoke: {}", summary_line("rf2-pair-crash", &two));
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let a = run_experiment(ExperimentConfig::replicated(3, 30).with_target(200).with_seed(7));
    let b = run_experiment(ExperimentConfig::replicated(3, 30).with_target(200).with_seed(7));
    assert_eq!(a.commit_logs, b.commit_logs);
    assert_eq!(a.committed(), b.committed());
    assert_eq!(a.elapsed, b.elapsed);
    let c = run_experiment(ExperimentConfig::replicated(3, 30).with_target(200).with_seed(8));
    assert_ne!(a.commit_logs, c.commit_logs, "different seed, different run");
}

#[test]
fn safety_holds_under_random_loss() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(300)
            .with_faults(FaultPlan::random_loss(0.05)),
    );
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under random loss");
    assert!(m.committed() > 200);
}

#[test]
fn safety_holds_under_bursty_loss() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(300)
            .with_faults(FaultPlan::bursty_loss(0.05, 5)),
    );
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under bursty loss");
}

#[test]
fn safety_holds_under_clock_drift() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(300)
            .with_faults(FaultPlan::clock_drift(1, 1.1)),
    );
    let crashed = crashed_flags(&m, 3);
    check_logs(&m.commit_logs, &crashed).expect("safety under clock drift");
}

#[test]
fn safety_holds_under_scheduling_latency() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(300)
            .with_faults(FaultPlan::sched_latency(Duration::from_millis(2))),
    );
    let crashed = crashed_flags(&m, 3);
    check_logs(&m.commit_logs, &crashed).expect("safety under scheduling latency");
}

#[test]
fn crash_leaves_survivors_consistent_and_live() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(600)
            .with_faults(FaultPlan::crash(2, SimTime::from_secs(15))),
    );
    assert_eq!(m.crashed_sites, vec![2]);
    check_logs(&m.commit_logs, &[false, false, true]).expect("crashed site holds a prefix");
    // Survivors kept committing after the crash: their logs are longer than
    // the dead site's.
    assert!(m.commit_logs[0].len() > m.commit_logs[2].len());
}

#[test]
fn partition_then_merge_drives_real_view_changes_and_stays_safe() {
    // The tentpole scenario: a partition longer than the failure-detector
    // timeout splits {0,1} from {2}. The primary component excludes site 2
    // through a real flush/install round and keeps committing; site 2 halts
    // as a non-primary survivor (counted as crashed); the heal merges the
    // network back without resurrecting it. Safety must hold throughout.
    let plan = FaultPlan::partition(
        vec![vec![0, 1], vec![2]],
        SimTime::from_secs(10),
        SimTime::from_secs(12),
    );
    let m = run_experiment(ExperimentConfig::replicated(3, 45).with_target(400).with_faults(plan));
    assert_eq!(m.crashed_sites, vec![2], "the minority segment halted");
    check_logs(&m.commit_logs, &[false, false, true]).expect("safety across the partition");
    assert!(m.committed() > 300, "primary component kept committing: {}", m.committed());
    assert!(
        m.commit_logs[0].len() > m.commit_logs[2].len(),
        "survivors moved past the halted site"
    );
    assert!(
        m.fault_work.view_installs >= 2,
        "both survivors installed the post-partition view: {:?}",
        m.fault_work
    );
    assert!(m.fault_work.partition_drops > 0, "traffic died at the partition boundary");
}

#[test]
fn short_partition_merges_back_without_membership_change() {
    // A partition shorter than the failure timeout: nobody is suspected, the
    // merge re-joins the segments, and NAK recovery patches the gap — no
    // view change, no casualties, identical logs.
    let plan = FaultPlan::partition(
        vec![vec![0, 1], vec![2]],
        SimTime::from_secs(10),
        SimTime::from_millis(10_300),
    );
    let m = run_experiment(ExperimentConfig::replicated(3, 45).with_target(300).with_faults(plan));
    assert!(m.crashed_sites.is_empty(), "no site halted: {:?}", m.crashed_sites);
    check_logs(&m.commit_logs, &[false; 3]).expect("safety across the short split");
    assert_eq!(m.fault_work.view_installs, 0, "merge happened below the membership radar");
    assert!(m.committed() > 200);
}

#[test]
fn duplicate_delivery_is_absorbed_without_burning_sequence_numbers() {
    let m = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(300)
            .with_faults(FaultPlan::duplicate_delivery(0.25, 3)),
    );
    assert!(m.fault_work.dup_injected > 0, "the fault actually fired: {:?}", m.fault_work);
    assert!(m.fault_work.dup_discarded > 0, "the GCS dedup path absorbed copies");
    // Identical logs at every site prove no duplicate stole a global
    // sequence number or delivered twice.
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under duplicate delivery");
    assert!(m.committed() > 200);
}

#[test]
fn correlated_bursts_are_safe_and_recovered() {
    let m =
        run_experiment(ExperimentConfig::replicated(3, 45).with_target(300).with_faults(
            FaultPlan::correlated_burst(vec![0, 1, 2], Duration::from_millis(10), 0.15),
        ));
    check_logs(&m.commit_logs, &[false; 3]).expect("safety under correlated bursts");
    assert!(m.committed() > 200, "committed {}", m.committed());
}

#[test]
fn random_loss_inflates_the_latency_tail() {
    let base = run_experiment(ExperimentConfig::replicated(3, 45).with_target(400));
    let lossy = run_experiment(
        ExperimentConfig::replicated(3, 45)
            .with_target(400)
            .with_faults(FaultPlan::random_loss(0.05)),
    );
    let mut b = base.pooled_latencies_ms();
    let mut l = lossy.pooled_latencies_ms();
    let (b99, l99) = (b.percentile(99.0).expect("samples"), l.percentile(99.0).expect("samples"));
    assert!(l99 > b99, "p99 {l99} vs fault-free {b99}");
}

#[test]
fn payment_aborts_dominate_the_breakdown() {
    // Table 1's structure: payment's warehouse hot-spot makes it the most
    // abort-prone class, far above neworder. The effect needs saturation
    // (lock hold times inflate with queueing), as in the paper's Table 1
    // operating points.
    let m = run_experiment(ExperimentConfig::centralized(1, 700).with_target(2500));
    let payment =
        m.class(TxnClass::PaymentLong).abort_rate() + m.class(TxnClass::PaymentShort).abort_rate();
    let neworder = m.class(TxnClass::NewOrder).abort_rate();
    assert!(payment > neworder, "payment {payment:.2}% should exceed neworder {neworder:.2}%");
    // Stock-level is relaxed: never aborts.
    assert_eq!(m.class(TxnClass::StockLevel).abort_rate(), 0.0);
}

#[test]
fn replication_tracks_matching_cpu_centralized_throughput() {
    // Fig. 5a's headline: 3 sites x 1 CPU ≈ 1 site x 3 CPU.
    let clients = 150;
    let three_cpu = run_experiment(ExperimentConfig::centralized(3, clients).with_target(600));
    let three_sites = run_experiment(ExperimentConfig::replicated(3, clients).with_target(600));
    let ratio = three_sites.tpm() / three_cpu.tpm();
    assert!(
        ratio > 0.75 && ratio < 1.25,
        "replicated/centralized tpm ratio {ratio:.2} (tpm {} vs {})",
        three_sites.tpm(),
        three_cpu.tpm()
    );
}

#[test]
fn network_traffic_scales_with_sites() {
    let three = run_experiment(ExperimentConfig::replicated(3, 45).with_target(300));
    let six = run_experiment(ExperimentConfig::replicated(6, 48).with_target(300));
    assert!(six.network_tx_bytes > three.network_tx_bytes);
    assert!(three.network_kbps() > 0.0);
}

#[test]
fn more_cpus_raise_the_saturation_point() {
    // At a load that saturates one CPU, three CPUs commit more per minute.
    let clients = 900;
    let one = run_experiment(ExperimentConfig::centralized(1, clients).with_target(1200));
    let three = run_experiment(ExperimentConfig::centralized(3, clients).with_target(1200));
    assert!(three.tpm() > one.tpm() * 1.2, "3 CPU {} vs 1 CPU {}", three.tpm(), one.tpm());
}

#[test]
fn disk_usage_grows_with_load() {
    let light = run_experiment(ExperimentConfig::centralized(6, 30).with_target(300));
    let heavy = run_experiment(ExperimentConfig::centralized(6, 300).with_target(900));
    assert!(heavy.mean_disk_usage() > light.mean_disk_usage());
}

#[test]
fn protocol_cpu_stays_in_the_papers_band() {
    // Fig. 7c: protocol (real-job) CPU is a small share, ~1-2%.
    let m = run_experiment(ExperimentConfig::replicated(3, 90).with_target(500));
    let (_total, real) = m.mean_cpu_usage();
    assert!(real > 0.0, "protocol CPU must be visible");
    assert!(real < 0.15, "protocol CPU {real:.3} unexpectedly high");
}

#[test]
fn crashed_then_restarted_site_rejoins_and_commits() {
    use dbsm_testbed::fault::check_logs_rejoined_multi;
    // Site 2 crashes at 15 s and restarts at 30 s: its fresh incarnation
    // must announce itself, catch up via snapshot + delta-log state
    // transfer, re-enter the view and resume committing.
    // 24 clients at 1 s think complete ~24 txns/s, so the 1000-txn target
    // keeps the run alive well past the 20 s restart.
    let mut cfg = ExperimentConfig::replicated(3, 24)
        .with_target(1000)
        .with_faults(FaultPlan::crash_restart(2, SimTime::from_secs(10), SimTime::from_secs(20)));
    cfg.think_mean = Duration::from_secs(1);
    cfg.max_sim = Duration::from_secs(300);
    let m = run_experiment(cfg);
    assert!(m.committed() > 700, "committed {}", m.committed());
    // Exactly one rejoin, served by exactly one snapshot, priced in bytes.
    assert_eq!(m.recovery_work.rejoins, 1, "rejoins {:?}", m.rejoins);
    assert_eq!(m.recovery_work.snapshots_served, 1);
    assert!(m.recovery_work.snapshot_bytes > 0);
    assert!(m.recovery_work.mean_ttu_ms() > 0.0);
    let r = m.rejoins[0];
    assert_eq!(r.site, 2);
    assert!(r.kept <= r.cut, "kept {} cut {}", r.kept, r.cut);
    assert_eq!(
        m.recovery_work.replayed_entries,
        (r.cut - r.kept) as u64,
        "delta log covers exactly the missed entries"
    );
    // The rejoined site committed new transactions past the transfer cut.
    assert!(!m.crashed_sites.contains(&2), "site 2 is live again");
    assert!(
        m.commit_logs[2].len() > r.kept,
        "post-rejoin commits: log {} kept {}",
        m.commit_logs[2].len(),
        r.kept
    );
    // And the full chain rule holds: pre-crash prefix, transferred gap,
    // post-rejoin continuation from the cut.
    let crashed = crashed_flags(&m, 3);
    check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts())
        .expect("rejoined log chains through the cut");
    // CI's recovery smoke step greps this line into the step summary.
    println!(
        "recovery smoke: site 2 rejoined via {} KB transfer, replayed {} entries, \
         time-to-useful {:.0} ms",
        m.recovery_work.total_bytes() / 1024,
        m.recovery_work.replayed_entries,
        m.recovery_work.mean_ttu_ms()
    );
}

#[test]
fn kill_and_replace_completes_with_chain_checked_logs() {
    use dbsm_testbed::fault::check_logs_rejoined_multi;
    // Rolling kill-and-replace: each of the three sites is killed in turn
    // and restarts after a short downtime, staggered so a majority always
    // survives. Every site must come back through the rejoin path.
    // Kills at 8/23/38 s, each site back 5 s later; the 1500-txn target
    // keeps traffic flowing past the last rejoin.
    let mut cfg = ExperimentConfig::replicated(3, 24).with_target(1500).with_faults(
        FaultPlan::kill_and_replace(
            3,
            SimTime::from_secs(8),
            Duration::from_secs(15),
            Duration::from_secs(5),
        ),
    );
    cfg.think_mean = Duration::from_secs(1);
    cfg.max_sim = Duration::from_secs(300);
    let m = run_experiment(cfg);
    assert!(m.committed() > 1000, "committed {}", m.committed());
    assert_eq!(m.recovery_work.rejoins, 3, "all sites rejoined: {:?}", m.rejoins);
    assert_eq!(m.recovery_work.snapshots_served, 3);
    assert!(m.crashed_sites.is_empty(), "no site left behind: {:?}", m.crashed_sites);
    let crashed = crashed_flags(&m, 3);
    check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts())
        .expect("every replaced site chains through its cut");
}

#[test]
fn voter_crash_mid_vote_round_is_safe_and_survivors_recollect() {
    use dbsm_testbed::fault::check_logs_rejoined_multi;
    // A span owner dies with vote rounds in flight: the in-flight
    // transactions it voted on (or should have) must still decide at the
    // survivors — every span it owned has a second replica under rf 2, so
    // the surviving owners' votes still form a covering quorum — and the
    // DBSM safety condition must hold with the dead site holding a prefix.
    let m = run_experiment(
        ExperimentConfig::replicated(6, 120)
            .with_target(600)
            .with_replication_factor(2)
            .with_faults(FaultPlan::crash(5, SimTime::from_secs(10))),
    );
    assert_eq!(m.crashed_sites, vec![5], "the voter died: {:?}", m.crashed_sites);
    assert!(m.committed() > 400, "survivors kept committing: {}", m.committed());
    assert!(
        m.commit_logs[0].len() > m.commit_logs[5].len(),
        "survivors decided vote rounds past the dead voter"
    );
    // Wire votes actually flowed, before and after the crash.
    assert!(m.vote_wire.sent > 0, "wire votes cast: {:?}", m.vote_wire);
    assert!(m.vote_wire.decided > 0, "origins collected covering quorums");
    let crashed = crashed_flags(&m, 6);
    check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts())
        .expect("crashed voter holds a prefix, survivors agree");
}

#[test]
fn partition_heal_during_vote_rounds_recovers_the_lost_votes() {
    // A 300 ms split — below the failure-detector timeout — isolates span
    // owner 5 with vote rounds in flight: votes multicast across the
    // boundary die at the partition, cross-span transactions needing site
    // 5's verdict stall, and after the heal the piggybacked resend path
    // must recover every lost vote with no membership change. All six
    // logs end identical.
    let plan = FaultPlan::partition(
        vec![vec![0, 1, 2, 3, 4], vec![5]],
        SimTime::from_secs(10),
        SimTime::from_millis(10_300),
    );
    let m = run_experiment(
        ExperimentConfig::replicated(6, 120)
            .with_target(600)
            .with_replication_factor(2)
            .with_faults(plan),
    );
    assert!(m.crashed_sites.is_empty(), "nobody halted: {:?}", m.crashed_sites);
    assert_eq!(m.fault_work.view_installs, 0, "heal happened below the membership radar");
    assert!(m.fault_work.partition_drops > 0, "traffic (votes included) died at the boundary");
    assert!(m.vote_wire.sent > 0 && m.vote_wire.decided > 0, "{:?}", m.vote_wire);
    check_logs(&m.commit_logs, &[false; 6]).expect("identical sequences across the heal");
    assert!(m.committed() > 400, "committed {}", m.committed());
}

#[test]
fn rejoined_voter_resumes_voting_past_its_cut() {
    use dbsm_testbed::fault::check_logs_rejoined_multi;
    // Crash-restart a span owner under rf 2: while it is down the
    // survivors decide vote rounds without it; after snapshot + delta-log
    // transfer and `finish_rejoin` the fresh incarnation must resume
    // casting wire votes — its per-site sent counter belongs to the new
    // Gcs instance, so a nonzero count is post-rejoin voting by
    // construction — and its log must chain through the transfer cut.
    let mut cfg = ExperimentConfig::replicated(6, 60)
        .with_target(1500)
        .with_replication_factor(2)
        .with_faults(FaultPlan::crash_restart(5, SimTime::from_secs(8), SimTime::from_secs(16)));
    cfg.think_mean = Duration::from_secs(1);
    cfg.max_sim = Duration::from_secs(300);
    let m = run_experiment(cfg);
    assert_eq!(m.recovery_work.rejoins, 1, "rejoins {:?}", m.rejoins);
    assert!(!m.crashed_sites.contains(&5), "site 5 is live again");
    let r = m.rejoins[0];
    assert_eq!(r.site, 5);
    assert!(
        m.commit_logs[5].len() > r.kept,
        "post-rejoin commits: log {} kept {}",
        m.commit_logs[5].len(),
        r.kept
    );
    // The fresh incarnation's own vote counter: votes cast after rejoin.
    assert_eq!(m.vote_wire.per_site_sent.len(), 6, "all six bridges reported");
    assert!(
        m.vote_wire.per_site_sent[5] > 0,
        "rejoined voter cast wire votes past its cut: {:?}",
        m.vote_wire.per_site_sent
    );
    let crashed = crashed_flags(&m, 6);
    check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts())
        .expect("rejoined voter chains through its cut");
}

#[test]
fn partial_placement_rejoin_transfers_only_the_sites_spans() {
    use dbsm_testbed::fault::check_logs_rejoined_multi;
    // Under a 2-of-6 placement the rejoiner re-requests only its spans'
    // rows: the snapshot is priced per owned warehouse, a fraction of the
    // full-replication transfer.
    let restart = FaultPlan::crash_restart(5, SimTime::from_secs(8), SimTime::from_secs(16));
    let mut cfg = ExperimentConfig::replicated(6, 60)
        .with_target(1500)
        .with_replication_factor(2)
        .with_faults(restart.clone());
    cfg.think_mean = Duration::from_secs(1);
    cfg.max_sim = Duration::from_secs(300);
    let m = run_experiment(cfg);
    assert_eq!(m.recovery_work.rejoins, 1, "rejoins {:?}", m.rejoins);
    let crashed = crashed_flags(&m, 6);
    check_logs_rejoined_multi(&m.commit_logs, &crashed, &m.rejoin_cuts())
        .expect("partial-placement rejoin chains through the cut");
    // Full replication ships all warehouses; the 2-of-6 span ships ~1/3.
    let mut full = ExperimentConfig::replicated(6, 60).with_target(1500).with_faults(restart);
    full.think_mean = Duration::from_secs(1);
    full.max_sim = Duration::from_secs(300);
    let f = run_experiment(full);
    assert_eq!(f.recovery_work.rejoins, 1);
    assert!(
        m.recovery_work.snapshot_bytes * 2 < f.recovery_work.snapshot_bytes,
        "span-restricted snapshot {} vs full {}",
        m.recovery_work.snapshot_bytes,
        f.recovery_work.snapshot_bytes
    );
}

//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use bytes::Bytes;
use dbsm_testbed::cert::{
    marshal, unmarshal, CertRequest, Certifier, IndexedCertifier, RwSet, ShardKeyFn,
    ShardedCertifier, SiteId, SpecResolution, TableId, TupleId,
};
use dbsm_testbed::gcs::{testkit::TestNet, AnnBatchPolicy, GcsConfig, NodeId, NodeSet};
use dbsm_testbed::sim::stats::Samples;
use proptest::prelude::*;
use std::time::Duration;

fn arb_tuple_id() -> impl Strategy<Value = TupleId> {
    (0u16..8, 1u64..10_000).prop_map(|(t, r)| TupleId::new(TableId(t), r))
}

fn arb_rwset(max: usize) -> impl Strategy<Value = RwSet> {
    prop::collection::vec(arb_tuple_id(), 0..max).prop_map(RwSet::from_unsorted)
}

/// Like [`arb_tuple_id`], but ~1 in 8 entries is a table-level wildcard —
/// used where the wildcard handling itself is under test.
fn arb_tuple_id_or_wildcard() -> impl Strategy<Value = TupleId> {
    (0u16..8, 1u64..10_000, 0u8..8).prop_map(|(t, r, roll)| {
        if roll == 0 {
            TupleId::table_level(TableId(t))
        } else {
            TupleId::new(TableId(t), r)
        }
    })
}

fn arb_rwset_with_wildcards(max: usize) -> impl Strategy<Value = RwSet> {
    prop::collection::vec(arb_tuple_id_or_wildcard(), 0..max).prop_map(RwSet::from_unsorted)
}

fn fnv(h: u64, b: u64) -> u64 {
    (h ^ b).wrapping_mul(0x100_0000_01b3)
}

/// SplitMix64 finalizer: a bare FNV multiply does not avalanche low-bit
/// differences (like an attempt counter) into the high bits we sample.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `traffic` through a 3-node group under `policy` with deterministic
/// content-keyed loss, returning each node's totally ordered
/// `(origin, global_seq, payload)` delivery stream.
///
/// Loss is keyed on `(from, to, packet bytes, attempt#)` rather than a
/// packet counter, so packets that are identical across policy runs (all
/// application traffic, NAKs and retransmissions of it) meet the identical
/// fate — which is what makes delivery streams comparable across policies
/// while announcement traffic differs freely.
fn policy_deliveries(
    policy: AnnBatchPolicy,
    traffic: &[(u16, u32)],
    loss_pct: u8,
    seed: u64,
) -> Vec<Vec<(u16, u64, Vec<u8>)>> {
    let mut cfg = GcsConfig::lan(3);
    cfg.ann_policy = policy;
    // The run is far shorter than this timeout, so loss can never trigger a
    // view change: delivery order is purely the sequencer's assignment order.
    cfg.failure_timeout = Duration::from_secs(60);
    let mut net = TestNet::new(cfg);
    let mut attempts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    net.set_drop_fn(move |from, to, bytes| {
        let mut h = fnv(0xcbf2_9ce4_8422_2325 ^ seed, u64::from(from.0));
        h = fnv(h, u64::from(to.0));
        for &byte in bytes.iter() {
            h = fnv(h, u64::from(byte));
        }
        let n = attempts.entry(h).or_insert(0);
        *n += 1;
        mix64(fnv(h, *n)) & 0x7f < u64::from(loss_pct)
    });
    for (i, (sender, delay_us)) in traffic.iter().enumerate() {
        net.run_for(Duration::from_micros(u64::from(*delay_us)));
        net.broadcast(NodeId(sender % 3), Bytes::from(format!("m{i}").into_bytes()));
    }
    // Settle: plenty of NAK/heartbeat rounds to recover every loss.
    net.run_for(Duration::from_secs(3));
    (0..3u16)
        .map(|n| {
            net.deliveries_seq(NodeId(n))
                .into_iter()
                .map(|(o, g, p)| (o.0, g, p.to_vec()))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn ann_policies_produce_identical_delivery_order(
        traffic in prop::collection::vec((0u16..3, 0u32..1_500), 1..20),
        loss_pct in 0u8..25,
        seed in any::<u64>(),
    ) {
        // The tentpole equivalence property: the announcement batching
        // policy trades latency for announcement traffic but must never
        // change *what* is delivered or *in which order*. All three
        // policies, fed the same application traffic under the same
        // (content-keyed) loss, deliver the identical
        // (origin, global_seq, payload) stream at every node.
        let policies = [
            AnnBatchPolicy::Immediate,
            AnnBatchPolicy::Fixed(Duration::from_millis(2)),
            AnnBatchPolicy::adaptive_lan(),
        ];
        let mut reference: Option<Vec<(u16, u64, Vec<u8>)>> = None;
        for policy in policies {
            let per_node = policy_deliveries(policy, &traffic, loss_pct, seed);
            for (n, stream) in per_node.iter().enumerate() {
                prop_assert_eq!(
                    stream.len(), traffic.len(),
                    "{:?}: node {} delivered {} of {}", policy, n, stream.len(), traffic.len()
                );
                prop_assert_eq!(stream, &per_node[0], "{:?}: node {} disagrees", policy, n);
            }
            match &reference {
                None => reference = Some(per_node.into_iter().next().expect("3 nodes")),
                Some(r) => prop_assert_eq!(
                    r, &per_node[0],
                    "{:?} diverged from Immediate", policy
                ),
            }
        }
    }
}

proptest! {
    #[test]
    fn tuple_id_roundtrips_raw(t in 0u16..u16::MAX, r in 1u64..(1u64 << 48)) {
        let id = TupleId::new(TableId(t), r);
        let back = TupleId::from_raw(id.as_raw());
        prop_assert_eq!(back, id);
        prop_assert_eq!(back.table(), TableId(t));
        prop_assert_eq!(back.row(), r);
    }

    #[test]
    fn rwset_is_sorted_and_unique(ids in prop::collection::vec(arb_tuple_id(), 0..64)) {
        let set = RwSet::from_unsorted(ids.clone());
        prop_assert!(set.ids().windows(2).all(|w| w[0] < w[1]));
        for id in &ids {
            prop_assert!(set.contains(*id));
        }
    }

    #[test]
    fn intersection_is_symmetric_and_matches_naive(a in arb_rwset(32), b in arb_rwset(32)) {
        let fast = a.intersects(&b);
        prop_assert_eq!(fast, b.intersects(&a), "symmetry");
        let naive = a.ids().iter().any(|x| b.ids().iter().any(|y| x.covers(*y) || y.covers(*x)));
        prop_assert_eq!(fast, naive, "matches the quadratic oracle");
    }

    #[test]
    fn union_contains_both(a in arb_rwset(24), b in arb_rwset(24)) {
        let mut u = a.clone();
        u.union_with(&b);
        for id in a.ids().iter().chain(b.ids()) {
            prop_assert!(u.contains(*id));
        }
        prop_assert!(u.ids().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn upgrade_preserves_conflicts(raw in prop::collection::vec(arb_tuple_id(), 1..128),
                                   threshold in 1usize..16) {
        let set = RwSet::from_unsorted(raw);
        let mut upgraded = set.clone();
        upgraded.upgrade_large_tables(threshold);
        // Upgrading can only widen, never lose, conflicts.
        for id in set.ids() {
            prop_assert!(upgraded.contains(*id), "lost {id}");
        }
        prop_assert!(upgraded.len() <= set.len());
    }

    #[test]
    fn marshal_roundtrips(site in 0u16..64, txn in 0u64..1_000_000, start in 0u64..1_000_000,
                          reads in arb_rwset(48), writes in arb_rwset(24),
                          wb in 0u32..4096) {
        let req = CertRequest {
            site: SiteId(site), txn, start_seq: start,
            read_set: reads, write_set: writes, write_bytes: wb,
        };
        let back = unmarshal(marshal(&req)).expect("roundtrip");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn truncated_marshals_never_panic(reads in arb_rwset(16), cut in 0usize..64) {
        let req = CertRequest {
            site: SiteId(1), txn: 1, start_seq: 0,
            read_set: reads, write_set: RwSet::new(), write_bytes: 8,
        };
        let wire = marshal(&req);
        let cut = cut.min(wire.len());
        // Must return an error or a valid request, never panic.
        let _ = unmarshal(wire.slice(0..cut));
    }

    #[test]
    fn certifiers_agree_on_any_request_stream(
        stream in prop::collection::vec(
            (0u16..3, arb_rwset(8), arb_rwset(4), 0u64..4), 1..64)
    ) {
        // Two replicas fed the same totally ordered stream reach identical
        // decisions and identical last-committed counters.
        let mut a = Certifier::new();
        let mut b = Certifier::new();
        for (i, (site, reads, writes, back)) in stream.iter().enumerate() {
            let start = a.last_committed().saturating_sub(*back);
            let req = CertRequest {
                site: SiteId(*site), txn: i as u64, start_seq: start,
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            };
            let ra = a.certify(&req).expect("window");
            let rb = b.certify(&req).expect("window");
            prop_assert_eq!(ra.0, rb.0);
        }
        prop_assert_eq!(a.last_committed(), b.last_committed());
    }

    #[test]
    fn cert_backends_produce_identical_outcome_streams(
        stream in prop::collection::vec(
            (0u16..3, arb_rwset_with_wildcards(8), arb_rwset_with_wildcards(4), 0u64..6, 0u8..8),
            1..96)
    ) {
        // The tentpole equivalence property: the linear scan and the indexed
        // write history, fed the same totally ordered request stream with
        // garbage collections interleaved at arbitrary points, emit
        // bit-identical outcome streams — same commit sequence numbers, same
        // abort decisions, same conflict_seq on every abort, and the same
        // HistoryTruncated rejections.
        let mut linear = Certifier::new();
        let mut indexed = IndexedCertifier::new();
        for (i, (site, reads, writes, back, gc_roll)) in stream.iter().enumerate() {
            let start = linear.last_committed().saturating_sub(*back);
            let req = CertRequest {
                site: SiteId(*site), txn: i as u64, start_seq: start,
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            };
            let ol = linear.certify(&req).map(|(o, _)| o);
            let oi = indexed.certify(&req).map(|(o, _)| o);
            prop_assert_eq!(ol, oi, "request {} diverged", i);
            // Read-only validation must agree at the same snapshot too.
            let (rl, _) = linear.certify_read_only(reads, start);
            let (ri, _) = indexed.certify_read_only(reads, start);
            prop_assert_eq!(rl, ri, "read-only validation {} diverged", i);
            // Random gc interleaving driven by the stream itself: collect up
            // to the whole history (gc_roll spreads the stable point from
            // aggressive to no-op).
            if *gc_roll == 0 {
                let stable = linear.last_committed().saturating_sub(*back);
                linear.gc(stable);
                indexed.gc(stable);
            }
        }
        prop_assert_eq!(linear.last_committed(), indexed.last_committed());
        prop_assert_eq!(linear.history_len(), indexed.history_len());
        prop_assert_eq!(linear.low_water(), indexed.low_water());
    }

    #[test]
    fn sharded_matches_linear_outcome_streams(
        stream in prop::collection::vec(
            (0u16..3, arb_rwset_with_wildcards(8), arb_rwset_with_wildcards(4), 0u64..6, 0u8..8),
            1..96),
        shards in 1usize..17,
        key_kind in 0u8..4,
    ) {
        // The sharding tentpole's equivalence property: for EVERY shard
        // count and EVERY key function — row-uniform, table-grouped,
        // all-in-one-shard, all-spill — the sharded certifier's outcome
        // stream is bit-identical to the linear scan's: same commit
        // sequence numbers, same abort decisions, same conflict_seq on
        // every abort, same HistoryTruncated rejections under interleaved
        // gc, and the same read-only validation verdicts. The shard map may
        // only move index entries around, never change a decision.
        fn key_row(id: TupleId) -> Option<u64> { Some(id.row()) }
        fn key_table(id: TupleId) -> Option<u64> { Some(u64::from(id.table().0)) }
        fn key_const(_id: TupleId) -> Option<u64> { Some(7) }
        fn key_none(_id: TupleId) -> Option<u64> { None }
        let key: ShardKeyFn = match key_kind {
            0 => key_row,
            1 => key_table,
            2 => key_const,
            _ => key_none,
        };
        let mut linear = Certifier::new();
        let mut sharded = ShardedCertifier::with_key(shards, key);
        for (i, (site, reads, writes, back, gc_roll)) in stream.iter().enumerate() {
            let start = linear.last_committed().saturating_sub(*back);
            let req = CertRequest {
                site: SiteId(*site), txn: i as u64, start_seq: start,
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            };
            let ol = linear.certify(&req).map(|(o, _)| o);
            let os = sharded.certify(&req).map(|(o, w)| {
                // The work ledger's internal consistency rides along: the
                // critical path can never exceed the total, and fan-out
                // implies probes.
                assert!(w.critical_probes <= w.probes, "critical > total at {i}");
                assert!((w.shards_touched == 0) == (w.probes == 0), "fan-out/probe mismatch");
                o
            });
            prop_assert_eq!(ol, os, "request {} diverged ({} shards, key {})",
                i, shards, key_kind);
            let (rl, _) = linear.certify_read_only(reads, start);
            let (rs, _) = sharded.certify_read_only(reads, start);
            prop_assert_eq!(rl, rs, "read-only validation {} diverged", i);
            if *gc_roll == 0 {
                let stable = linear.last_committed().saturating_sub(*back);
                linear.gc(stable);
                sharded.gc(stable);
            }
        }
        prop_assert_eq!(linear.last_committed(), sharded.last_committed());
        prop_assert_eq!(linear.history_len(), sharded.history_len());
        prop_assert_eq!(linear.low_water(), sharded.low_water());
    }

    #[test]
    fn pipelined_matches_synchronous_outcome_streams(
        stream in prop::collection::vec(
            (0u16..3, arb_rwset_with_wildcards(8), arb_rwset_with_wildcards(4), 0u64..6,
             0u8..4, 0u8..8),
            1..96),
        shards in 1usize..13,
    ) {
        // The pipelining tentpole's equivalence property: a certifier fed
        // speculative probes at arbitrary tentative-delivery interleavings
        // (each request's `lead` lets tentative delivery run 0-3 requests
        // ahead of the total order; lead 0 models a request whose tentative
        // delivery never arrived) and then confirmed in total order emits
        // an outcome stream bit-identical to a synchronous certifier of the
        // same backend AND to the linear-scan oracle — same commit sequence
        // numbers, same abort decisions, same conflict_seq on every abort,
        // same HistoryTruncated rejections under interleaved gc, and the
        // same final history. Reordering (speculation overtaken by
        // conflicting commits) must surface as a rollback, never as a
        // decision change.
        fn mk(i: usize, item: &(u16, RwSet, RwSet, u64, u8, u8), last: u64) -> CertRequest {
            let (site, reads, writes, back, _, _) = item;
            CertRequest {
                site: SiteId(*site), txn: i as u64, start_seq: last.saturating_sub(*back),
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            }
        }
        let mut linear = Certifier::new();
        let mut sync = ShardedCertifier::new(shards);
        let mut pipe = ShardedCertifier::new(shards);
        let n = stream.len();
        let mut reqs: Vec<Option<CertRequest>> = vec![None; n];
        let mut speculated = vec![false; n];
        for i in 0..n {
            // Tentative delivery runs ahead: speculate requests i..i+lead
            // before request i is confirmed in total order.
            let lead = stream[i].4 as usize;
            for j in i..(i + lead).min(n) {
                if reqs[j].is_none() {
                    reqs[j] = Some(mk(j, &stream[j], linear.last_committed()));
                }
                if !speculated[j] {
                    let probe = pipe.speculate(reqs[j].as_ref().expect("just made"));
                    prop_assert!(probe.work.critical_probes <= probe.work.probes);
                    speculated[j] = true;
                }
            }
            let req = reqs[i].take().unwrap_or_else(|| mk(i, &stream[i], linear.last_committed()));
            let ol = linear.certify(&req).map(|(o, _)| o);
            let os = sync.certify(&req).map(|(o, _)| o);
            let mut resolution = None;
            let op = pipe.confirm(&req).map(|(o, _, res)| { resolution = Some(res); o });
            prop_assert_eq!(&ol, &os, "sync sharded diverged from linear at {}", i);
            prop_assert_eq!(&ol, &op, "pipelined diverged from linear at {} (res {:?})",
                i, resolution);
            if let Some(res) = resolution {
                // A speculation either survives to its confirm or its
                // confirm reports truncation (speculate skips recording
                // below the low-water mark, gc prunes strictly below it,
                // and the mark never falls): a confirm that returned Ok
                // resolves Miss exactly for the never-speculated requests.
                prop_assert_eq!(res == SpecResolution::Miss, !speculated[i],
                    "speculation bookkeeping diverged at {}", i);
            }
            let gc_roll = stream[i].5;
            if gc_roll == 0 {
                let stable = linear.last_committed().saturating_sub(stream[i].3);
                linear.gc(stable);
                sync.gc(stable);
                pipe.gc(stable);
            }
        }
        // Final logs agree: same commit counter, same retained history.
        prop_assert_eq!(linear.last_committed(), pipe.last_committed());
        prop_assert_eq!(sync.last_committed(), pipe.last_committed());
        prop_assert_eq!(sync.history_len(), pipe.history_len());
        prop_assert_eq!(sync.low_water(), pipe.low_water());
        prop_assert_eq!(pipe.speculations(), 0, "all speculations consumed or pruned");
    }

    #[test]
    fn partial_matches_full_replication_outcome_streams(
        stream in prop::collection::vec(
            (0u16..5, arb_rwset_with_wildcards(8), arb_rwset_with_wildcards(4), 0u64..6, 0u8..8),
            1..96),
        sites in 2usize..6,
        factor in 1usize..6,
    ) {
        // The partial-replication tentpole's equivalence property: for
        // EVERY site count, EVERY replication factor k in 1..=N and
        // arbitrary gc interleavings, the per-span votes of the sites —
        // each indexing only its PlacementMap-assigned spans — merge
        // (earliest-conflict rule) to a verdict bit-identical to a
        // full-replication IndexedCertifier fed the same totally ordered
        // stream: same commit sequence numbers, same abort decisions, same
        // conflict_seq on every abort, same HistoryTruncated rejections.
        // Table 0 rows and wildcards have no span (global, replicated
        // everywhere); other rows span by `row % 8`.
        use dbsm_testbed::cert::{merge_votes, SpanCertifier};
        use dbsm_testbed::core::PlacementMap;
        fn span8(id: TupleId) -> Option<u64> {
            if id.table().0 == 0 || id.is_table_level() {
                None
            } else {
                Some(id.row() % 8)
            }
        }
        let k = factor.min(sites);
        let p = PlacementMap::round_robin(sites, k);
        let mut full = IndexedCertifier::new();
        let mut spans: Vec<SpanCertifier> = (0..sites)
            .map(|s| SpanCertifier::with_span(span8, p.spans_of(s, 8)))
            .collect();
        for (i, (site, reads, writes, back, gc_roll)) in stream.iter().enumerate() {
            let start = full.last_committed().saturating_sub(*back);
            let req = CertRequest {
                site: SiteId(*site), txn: i as u64, start_seq: start,
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            };
            let of = full.certify(&req).map(|(o, _)| o);
            // Every site votes on its span; merging ALL votes is merging a
            // covering set (every span has at least one owner, span-less
            // ids are indexed everywhere), so the merge must equal the
            // full verdict exactly.
            let votes: Vec<_> = spans.iter().map(|s| s.vote(&req)).collect();
            match &of {
                Err(trunc) => {
                    // gc ran in lockstep: every site rejects identically.
                    for (s, v) in votes.iter().enumerate() {
                        prop_assert_eq!(v.as_ref().err(), Some(trunc),
                            "site {} truncation diverged at {}", s, i);
                    }
                    continue;
                }
                Ok(outcome) => {
                    let merged = merge_votes(
                        votes.into_iter().map(|v| v.expect("full certify succeeded").0),
                    );
                    match outcome {
                        dbsm_testbed::cert::Outcome::Commit(_) => {
                            prop_assert_eq!(merged, None, "spurious conflict at {}", i);
                        }
                        dbsm_testbed::cert::Outcome::Abort { conflict_seq } => {
                            prop_assert_eq!(merged, Some(*conflict_seq),
                                "conflict_seq diverged at {}", i);
                        }
                    }
                    for s in spans.iter_mut() {
                        s.apply(&req, *outcome);
                    }
                }
            }
            if *gc_roll == 0 {
                let stable = full.last_committed().saturating_sub(*back);
                full.gc(stable);
                for s in spans.iter_mut() {
                    s.gc(stable);
                }
            }
        }
        for (s, span) in spans.iter().enumerate() {
            prop_assert_eq!(span.last_committed(), full.last_committed(),
                "site {} sequence counter diverged", s);
        }
    }

}

proptest! {
    // Each case simulates a full GCS group under loss: 12 cases keeps the
    // suite fast while still sweeping sites x factor x loss x commit path.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn wire_votes_match_vote_box_outcome_streams(
        stream in prop::collection::vec(
            (0u16..5, arb_rwset_with_wildcards(6), arb_rwset_with_wildcards(4), 0u64..4),
            1..24),
        sites in 2usize..6,
        factor in 1usize..4,
        loss_pct in 0u8..21,
        pipelined in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // The decentralized-vote tentpole's equivalence property: for EVERY
        // site count, replication factor, loss rate up to 20% and BOTH
        // commit paths, the span votes each site multicasts over the real
        // wire protocol ([`Gcs::cast_vote`]) arrive at every node exactly
        // once per voter — surviving loss through piggybacked resends — and
        // the covering quorum each node collects merges
        // (earliest-conflict rule) to a verdict bit-identical to the PR 7
        // cluster-level vote box AND to a full-replication
        // IndexedCertifier: same commit/abort decisions, same conflict_seq
        // on every abort. The pipelined path pre-computes each vote from a
        // speculative probe (`speculate` + `confirm_vote`); the synchronous
        // path votes inline (`vote`); both must emit the same verdicts.
        use dbsm_testbed::cert::{merge_votes, Outcome, SpanCertifier};
        use dbsm_testbed::core::PlacementMap;
        use dbsm_testbed::gcs::Upcall;
        fn span8(id: TupleId) -> Option<u64> {
            if id.table().0 == 0 || id.is_table_level() {
                None
            } else {
                Some(id.row() % 8)
            }
        }
        let k = factor.min(sites);
        let p = PlacementMap::round_robin(sites, k);
        let mut full = IndexedCertifier::new();
        let mut spans: Vec<SpanCertifier> = (0..sites)
            .map(|s| SpanCertifier::with_span(span8, p.spans_of(s, 8)))
            .collect();
        // A real GCS group carries the votes, with deterministic
        // content-keyed loss (resends of a lost vote meet a fresh fate).
        let mut cfg = GcsConfig::lan(sites);
        cfg.failure_timeout = Duration::from_secs(60);
        let mut net = TestNet::new(cfg);
        let mut attempts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        net.set_drop_fn(move |from, to, bytes| {
            let mut h = fnv(0xcbf2_9ce4_8422_2325 ^ seed, u64::from(from.0));
            h = fnv(h, u64::from(to.0));
            for &byte in bytes.iter() {
                h = fnv(h, u64::from(byte));
            }
            let n = attempts.entry(h).or_insert(0);
            *n += 1;
            mix64(fnv(h, *n)) & 0x7f < u64::from(loss_pct)
        });
        // (origin, txn, full outcome, each site's span vote).
        let mut expected: Vec<(u16, u64, Outcome, Vec<Option<u64>>)> = Vec::new();
        for (i, (site, reads, writes, back)) in stream.iter().enumerate() {
            let origin = site % (sites as u16);
            let start = full.last_committed().saturating_sub(*back);
            let req = CertRequest {
                site: SiteId(origin), txn: i as u64, start_seq: start,
                read_set: reads.clone(), write_set: writes.clone(), write_bytes: 0,
            };
            // No gc in this stream, so certification never truncates.
            let (of, _) = full.certify(&req).expect("window");
            let votes: Vec<Option<u64>> = spans
                .iter_mut()
                .map(|s| {
                    if pipelined {
                        let _probe = s.speculate(&req);
                        s.confirm_vote(&req).expect("window").0
                    } else {
                        s.vote(&req).expect("window").0
                    }
                })
                .collect();
            // PR 7 cluster-level vote box: merging all votes (a superset of
            // any covering set) must reproduce the full verdict.
            let merged = merge_votes(votes.iter().copied());
            match of {
                Outcome::Commit(_) => prop_assert_eq!(merged, None, "spurious conflict at {}", i),
                Outcome::Abort { conflict_seq } => {
                    prop_assert_eq!(merged, Some(conflict_seq), "conflict_seq diverged at {}", i)
                }
            }
            // Every site multicasts its verdict over the wire.
            for (s, conflict) in votes.iter().enumerate() {
                net.cast_vote(NodeId(s as u16), origin, i as u64, *conflict);
            }
            net.run_for(Duration::from_millis(2));
            for s in spans.iter_mut() {
                s.apply(&req, of);
            }
            expected.push((origin, i as u64, of, votes));
        }
        // Settle: heartbeat resends recover every lost vote.
        net.run_for(Duration::from_secs(3));
        for n in 0..sites {
            // Collect the wire votes this node received: exactly one per
            // (voter, txn), conflict bit-identical to the voter's span vote.
            let mut seen: std::collections::HashMap<(u16, u64), Vec<Option<Option<u64>>>> =
                std::collections::HashMap::new();
            for up in &net.upcalls[n] {
                if let Upcall::Vote { voter, vote } = up {
                    let slot = seen.entry((vote.origin, vote.txn)).or_insert_with(|| {
                        vec![None; sites]
                    });
                    prop_assert!(slot[voter.0 as usize].is_none(),
                        "node {} saw voter {} twice for txn {}", n, voter.0, vote.txn);
                    slot[voter.0 as usize] = Some(vote.conflict);
                }
            }
            for (origin, txn, of, votes) in &expected {
                let got = seen.get(&(*origin, *txn))
                    .unwrap_or_else(|| panic!("node {n} collected no votes for txn {txn}"));
                // The full vote set arrived: a covering quorum by
                // construction (every span has an owner among the voters).
                for (s, v) in votes.iter().enumerate() {
                    prop_assert_eq!(got[s], Some(*v),
                        "node {} vote from {} for txn {} diverged", n, s, txn);
                }
                // Quorum decision: merging the collected votes reproduces
                // the full-replication verdict exactly.
                let wire_merged = merge_votes(got.iter().map(|v| (*v).expect("all arrived")));
                match of {
                    Outcome::Commit(_) => prop_assert_eq!(wire_merged, None,
                        "node {} spurious wire conflict for txn {}", n, txn),
                    Outcome::Abort { conflict_seq } => prop_assert_eq!(
                        wire_merged, Some(*conflict_seq),
                        "node {} wire conflict_seq diverged for txn {}", n, txn),
                }
            }
        }
    }
}

proptest! {
    // Each case runs two full cluster simulations; a handful of cases per
    // CI run still sweeps plans x rf x seeds over time.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn replacement_preserves_outcomes(
        crash_sites in prop::collection::btree_set(0u16..3, 1..3),
        restarts in prop::collection::vec(any::<bool>(), 2),
        partition_roll in any::<bool>(),
        rf in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        // The re-placement tentpole's robustness property: random
        // crash/heal/restart plans at every replication factor leave the
        // DBSM outcomes intact. Re-placed runs are bit-identical across
        // double runs (the rendezvous election and vote re-collection are
        // deterministic), every commit log passes the rejoined chain
        // checker, and — via the cluster's internal first-decider
        // cross-check, armed in debug builds — every quorum decision
        // matches the full-replication oracle.
        use dbsm_testbed::core::{run_experiment, ExperimentConfig};
        use dbsm_testbed::fault::{check_logs_rejoined_multi, FaultPlan, FaultSpec};
        use dbsm_testbed::sim::SimTime;
        let crashes: Vec<u16> = crash_sites.iter().copied().collect();
        let mut plan = FaultPlan::none();
        for (i, &site) in crashes.iter().enumerate() {
            plan = plan.with(FaultSpec::Crash { site, at: SimTime::from_secs(8 + 2 * i as u64) });
            if restarts[i] {
                plan = plan
                    .with(FaultSpec::Restart { site, at: SimTime::from_secs(14 + 2 * i as u64) });
            }
        }
        if partition_roll && crashes.len() == 1 {
            // One segment excludes site 5 past the failure timeout: a
            // primary-component exclusion strands its spans exactly like a
            // crash, and the heal must not resurrect them elsewhere.
            plan = plan.with(FaultSpec::Partition {
                groups: vec![vec![0, 1, 2, 3, 4], vec![5]],
                at: SimTime::from_secs(12),
                heal_at: SimTime::from_secs(14),
            });
        }
        let mk = || {
            let mut cfg = ExperimentConfig::replicated(6, 60)
                .with_target(900)
                .with_replication_factor(rf)
                .with_seed(seed)
                .with_faults(plan.clone());
            cfg.think_mean = Duration::from_secs(1);
            cfg.max_sim = Duration::from_secs(300);
            cfg
        };
        let a = run_experiment(mk());
        let b = run_experiment(mk());
        prop_assert_eq!(&a.commit_logs, &b.commit_logs, "re-placed runs must be bit-identical");
        prop_assert_eq!(a.replacement_work, b.replacement_work);
        prop_assert_eq!(a.committed(), b.committed());
        let crashed: Vec<bool> = (0..6u16).map(|s| a.crashed_sites.contains(&s)).collect();
        let chain = check_logs_rejoined_multi(&a.commit_logs, &crashed, &a.rejoin_cuts());
        prop_assert!(chain.is_ok(), "chain check: {:?}", chain);
        prop_assert!(a.committed() > 300, "run made progress: {}", a.committed());
        // rf 1 leaves every crashed site's span with zero replicas: the
        // view change must re-home it (60 clients -> 6 warehouses, one per
        // site under round-robin).
        if rf == 1 {
            prop_assert!(
                a.replacement_work.rehomed_spans >= 1,
                "rf 1 crash must strand and re-home a span: {:?}",
                a.replacement_work
            );
        }
    }
}

proptest! {
    #[test]
    fn certification_outcome_only_depends_on_concurrent_history(
        writes in arb_rwset(8), reads in arb_rwset(8)
    ) {
        // A request whose snapshot includes every commit always commits.
        let mut c = Certifier::new();
        let w = CertRequest {
            site: SiteId(0), txn: 0, start_seq: 0,
            read_set: RwSet::new(), write_set: writes, write_bytes: 0,
        };
        c.certify(&w).expect("w");
        let snapshot = c.last_committed();
        let r = CertRequest {
            site: SiteId(1), txn: 0, start_seq: snapshot,
            read_set: reads, write_set: RwSet::new(), write_bytes: 0,
        };
        let (outcome, _) = c.certify(&r).expect("r");
        prop_assert!(outcome.is_commit());
    }

    #[test]
    fn nodeset_roundtrips_members(members in prop::collection::btree_set(0u16..64, 0..64)) {
        let set: NodeSet = members.iter().map(|m| NodeId(*m)).collect();
        prop_assert_eq!(set.len(), members.len());
        let back: Vec<u16> = set.iter().map(|n| n.0).collect();
        let expect: Vec<u16> = members.iter().copied().collect();
        prop_assert_eq!(back, expect, "iteration is sorted and complete");
    }

    #[test]
    fn nodeset_algebra_laws(a in prop::collection::btree_set(0u16..64, 0..32),
                            b in prop::collection::btree_set(0u16..64, 0..32)) {
        let sa: NodeSet = a.iter().map(|m| NodeId(*m)).collect();
        let sb: NodeSet = b.iter().map(|m| NodeId(*m)).collect();
        let union = sa.union(sb);
        prop_assert!(sa.is_subset(union));
        prop_assert!(sb.is_subset(union));
        let diff = sa.difference(sb);
        for n in diff.iter() {
            prop_assert!(sa.contains(n));
            prop_assert!(!sb.contains(n));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in prop::collection::vec(0.0f64..1e6, 1..256)) {
        let mut s: Samples = values.iter().copied().collect();
        let lo = s.quantile(0.0).expect("non-empty");
        let mid = s.quantile(0.5).expect("non-empty");
        let hi = s.quantile(1.0).expect("non-empty");
        prop_assert!(lo <= mid && mid <= hi);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min && hi <= max);
    }

    #[test]
    fn ecdf_reaches_one(values in prop::collection::vec(0.0f64..1e6, 1..128), pts in 1usize..32) {
        let mut s: Samples = values.iter().copied().collect();
        let e = s.ecdf(pts);
        prop_assert_eq!(e.len(), pts);
        let last = e.last().expect("non-empty");
        prop_assert!((last.1 - 1.0).abs() < 1e-12);
        prop_assert!(e.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }
}

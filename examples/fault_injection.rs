//! Fault injection (paper §5.3 and beyond): subject a replicated database
//! to the full scenario catalogue — random loss, bursty loss, a crash,
//! clock drift, scheduling latency, a partition-then-merge, duplicate
//! delivery, correlated loss bursts, and a crash-then-rejoin — and verify
//! both the performance impact and the safety condition after every
//! scenario (rejoined sites are chain-checked through their transfer
//! cuts).
//!
//! Every scenario prints the `summary_line` work ledger (tpm, latency,
//! certification work, announcement work, view installs, duplicates), so
//! this example doubles as the executable companion to
//! `docs/EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use dbsm_testbed::core::{report, run_experiment, ExperimentConfig, RunMetrics};
use dbsm_testbed::fault::{check_logs_rejoined_multi, FaultPlan, FaultSpec};
use dbsm_testbed::sim::SimTime;
use std::time::Duration;

fn run(label: &str, faults: FaultPlan) -> RunMetrics {
    let cfg = ExperimentConfig::replicated(3, 120).with_target(1200).with_faults(faults);
    let metrics = run_experiment(cfg);
    let crashed: Vec<bool> = (0..3u16).map(|s| metrics.crashed_sites.contains(&s)).collect();
    check_logs_rejoined_multi(&metrics.commit_logs, &crashed, &metrics.rejoin_cuts())
        .expect("safety violated");
    println!("{}  (safety ok)", report::summary_line(&format!("{label:<22}"), &metrics));
    metrics
}

fn main() {
    println!("3 sites, 120 clients, 1200 transactions per scenario\n");
    let baseline = run("no faults", FaultPlan::none());
    let random = run("random loss 5%", FaultPlan::random_loss(0.05));
    let bursty = run("bursty loss 5%/5", FaultPlan::bursty_loss(0.05, 5));
    run("clock drift x1.05", FaultPlan::clock_drift(1, 1.05));
    run("sched latency 2ms", FaultPlan::sched_latency(Duration::from_millis(2)));
    let crash = run("crash site 2 @20s", FaultPlan::crash(2, SimTime::from_secs(20)));
    // The partition splits {0,1} from {2} at 20s for 2s: longer than the
    // 500ms failure timeout, so the primary component {0,1} excludes site 2
    // through a real view change while site 2 halts as a non-primary
    // survivor. The heal at 22s merges the network back; the halted site
    // stays down (safety counts it as crashed, holding a prefix). Partition
    // plans automatically run with uniform (safe) delivery.
    let partition = run(
        "partition {01}|{2} 2s",
        FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(20),
            SimTime::from_secs(22),
        ),
    );
    // A short split heals below the failure-detector radar: no view change,
    // NAK recovery patches the gap after the merge.
    let short_split = run(
        "partition 300ms",
        FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(20),
            SimTime::from_millis(20_300),
        ),
    );
    let dup = run("duplicates 25%x3", FaultPlan::duplicate_delivery(0.25, 3));
    run(
        "correlated burst 15%",
        FaultPlan::correlated_burst(vec![0, 1, 2], Duration::from_millis(10), 0.15),
    );
    // Site 2 crashes at 20s and restarts at 40s: the fresh incarnation
    // announces itself to the primary component, catches up through a
    // snapshot + delta-log state transfer from a live member, and resumes
    // certifying — the `rec=` section of its summary line is the recovery
    // ledger (rejoins/snapshots, transfer KB, replayed entries, mean
    // time-to-useful).
    let rejoin = run(
        "crash+rejoin @20/40s",
        FaultPlan::crash_restart(2, SimTime::from_secs(20), SimTime::from_secs(40)),
    );
    // Flapping partition: the same minority split re-forms three times
    // (2s split / 2s heal from 10s on). The first flap outlives the
    // failure detector, so site 2 is excluded and halts; the later flaps
    // hit an already-dead site. A restart at 30s then brings it back
    // through the rejoin path — a partition-halt is as recoverable as a
    // crash.
    let flap = run(
        "flapping x3 + rejoin",
        FaultPlan::flapping_partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(10),
            Duration::from_secs(2),
            3,
        )
        .with(FaultSpec::Restart { site: 2, at: SimTime::from_secs(30) }),
    );
    // Rolling kill-and-replace: every site is killed in turn and comes
    // back 10s later, staggered 25s apart so a majority always survives.
    let rolling = run(
        "kill-and-replace x3",
        FaultPlan::kill_and_replace(
            3,
            SimTime::from_secs(15),
            Duration::from_secs(25),
            Duration::from_secs(10),
        ),
    );
    // Double restart of one site: the flapping-crash plan crashes site 2
    // at 15s and 25s, restarting it 5s after each crash. Both incarnations
    // must come back through the rejoin path; the chain checker accepts
    // multiple transfer cuts per site.
    let flap_crash = run(
        "flapping crash x2",
        FaultPlan::flapping_crash(2, SimTime::from_secs(15), Duration::from_secs(5), 2),
    );
    // Re-placement under churn: at rf 2 over 6 sites, crashing the
    // adjacent pair {0,1} removes both replicas of the spans homed on the
    // pair. The survivors elect adopters by rendezvous hash over the
    // installed view and re-home the stranded spans via state transfer —
    // the `repl=` section of the summary line is the ledger.
    let rehome = {
        let cfg = ExperimentConfig::replicated(6, 120)
            .with_target(1200)
            .with_replication_factor(2)
            .with_faults(
                FaultPlan::crash(0, SimTime::from_secs(15))
                    .with(FaultSpec::Crash { site: 1, at: SimTime::from_secs(17) }),
            );
        let metrics = run_experiment(cfg);
        let crashed: Vec<bool> = (0..6u16).map(|s| metrics.crashed_sites.contains(&s)).collect();
        check_logs_rejoined_multi(&metrics.commit_logs, &crashed, &metrics.rejoin_cuts())
            .expect("safety violated");
        let label = format!("{:<22}", "re-home rf2 pair crash");
        println!("{}  (safety ok)", report::summary_line(&label, &metrics));
        metrics
    };

    println!();
    println!(
        "loss impact: random-loss p99 is {:.1}x the fault-free p99 (the paper's long tail)",
        random.pooled_latencies_ms().percentile(99.0).unwrap_or(1.0)
            / baseline.pooled_latencies_ms().percentile(99.0).unwrap_or(1.0)
    );
    println!(
        "bursty loss hurts less than random loss: {:.2}% vs {:.2}% aborts",
        bursty.abort_rate(),
        random.abort_rate()
    );
    println!(
        "after the crash the survivors kept committing: {} commits at site 0",
        crash.commit_logs[0].len()
    );
    println!(
        "partition: {} view installs, {} packets died at the boundary, survivors committed {} \
         vs {} at the halted site",
        partition.fault_work.view_installs,
        partition.fault_work.partition_drops,
        partition.commit_logs[0].len(),
        partition.commit_logs[2].len(),
    );
    println!(
        "short partition merged back with no view change ({} installs) and no casualties",
        short_split.fault_work.view_installs
    );
    println!(
        "duplicate delivery: {} copies injected, {} absorbed by the dedup path, logs identical",
        dup.fault_work.dup_injected, dup.fault_work.dup_discarded
    );
    let r = rejoin.rejoins[0];
    println!(
        "crash+rejoin: site {} kept {} commits, caught up to {} via {} KB of state transfer, \
         replayed {} delta entries, useful again after {:.0} ms",
        r.site,
        r.kept,
        r.cut,
        rejoin.recovery_work.total_bytes() / 1024,
        rejoin.recovery_work.replayed_entries,
        rejoin.recovery_work.mean_ttu_ms(),
    );
    println!(
        "kill-and-replace: {}/3 sites rejoined ({} KB transferred, mean ttu {:.0} ms) and the \
         logs still form one chain",
        rolling.recovery_work.rejoins,
        rolling.recovery_work.total_bytes() / 1024,
        rolling.recovery_work.mean_ttu_ms(),
    );
    println!(
        "flapping partition: {} view installs, then the halted minority rejoined ({} rejoin, \
         ttu {:.0} ms)",
        flap.fault_work.view_installs,
        flap.recovery_work.rejoins,
        flap.recovery_work.mean_ttu_ms(),
    );
    println!(
        "flapping crash: site 2 rejoined {} times; each incarnation chains through its own \
         transfer cut",
        flap_crash.recovery_work.rejoins,
    );
    println!(
        "re-placement: {} spans re-homed in {} elections ({} KB shipped, serving again after \
         {:.0} ms; stranded clients parked {:.0} ms total)",
        rehome.replacement_work.rehomed_spans,
        rehome.replacement_work.replacements,
        rehome.replacement_work.transfer_bytes / 1024,
        rehome.replacement_work.mean_time_to_serving_ms(),
        rehome.replacement_work.parked_ms(),
    );
}

//! Fault injection (paper §5.3): subject a replicated database to the
//! paper's fault catalogue — random loss, bursty loss, a crash, clock drift
//! and scheduling latency — and verify both the performance impact and the
//! safety condition after every scenario.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use dbsm_testbed::core::{run_experiment, ExperimentConfig, RunMetrics};
use dbsm_testbed::fault::{check_logs, FaultPlan};
use dbsm_testbed::sim::SimTime;
use std::time::Duration;

fn run(label: &str, faults: FaultPlan) -> RunMetrics {
    let cfg = ExperimentConfig::replicated(3, 120).with_target(1200).with_faults(faults);
    let metrics = run_experiment(cfg);
    let crashed: Vec<bool> = (0..3u16).map(|s| metrics.crashed_sites.contains(&s)).collect();
    check_logs(&metrics.commit_logs, &crashed).expect("safety violated");
    let mut lat = metrics.pooled_latencies_ms();
    println!(
        "{label:<22} tpm={:>6.0} aborts={:>5.2}%  p50={:>7.1}ms p99={:>8.1}ms  (safety ok)",
        metrics.tpm(),
        metrics.abort_rate(),
        lat.percentile(50.0).unwrap_or(0.0),
        lat.percentile(99.0).unwrap_or(0.0),
    );
    metrics
}

fn main() {
    println!("3 sites, 120 clients, 1200 transactions per scenario\n");
    let baseline = run("no faults", FaultPlan::none());
    let random = run("random loss 5%", FaultPlan::random_loss(0.05));
    let bursty = run("bursty loss 5%/5", FaultPlan::bursty_loss(0.05, 5));
    run("clock drift x1.05", FaultPlan::clock_drift(1, 1.05));
    run("sched latency 2ms", FaultPlan::sched_latency(Duration::from_millis(2)));
    let crash = run("crash site 2 @20s", FaultPlan::crash(2, SimTime::from_secs(20)));

    println!();
    println!(
        "loss impact: random-loss p99 is {:.1}x the fault-free p99 (the paper's long tail)",
        random.pooled_latencies_ms().percentile(99.0).unwrap_or(1.0)
            / baseline.pooled_latencies_ms().percentile(99.0).unwrap_or(1.0)
    );
    println!(
        "bursty loss hurts less than random loss: {:.2}% vs {:.2}% aborts",
        bursty.abort_rate(),
        random.abort_rate()
    );
    println!(
        "after the crash the survivors kept committing: {} commits at site 0",
        crash.commit_logs[0].len()
    );
}

//! Quickstart: run a 3-site replicated database under TPC-C load, print the
//! headline numbers, and verify the DBSM safety condition.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbsm_testbed::core::{report, run_experiment, ExperimentConfig};
use dbsm_testbed::fault::check_logs;

fn main() {
    // 3 single-CPU replicas on a simulated 100 Mbps LAN, 150 TPC-C clients
    // split across them, measured until 1500 transactions complete.
    let cfg = ExperimentConfig::replicated(3, 150).with_target(1500);
    println!("running: 3 sites x 1 CPU, 150 clients, 1500 transactions...");
    let metrics = run_experiment(cfg);

    println!("{}", report::summary_line("3 sites", &metrics));
    println!();
    println!("per-class abort rates (%):");
    print!("{}", report::abort_table(&[("3 sites", &metrics)]));

    // The paper's §5.3 safety condition: every operational site committed
    // exactly the same sequence of transactions.
    check_logs(&metrics.commit_logs, &[false, false, false])
        .expect("DBSM safety: identical commit sequences");
    println!();
    println!(
        "safety check passed: {} commits identical at all 3 sites",
        metrics.commit_logs[0].len()
    );
}

//! Wide-area replication: what happens to certification latency when the
//! replicas leave the machine room. The paper's §5.3 conclusion — total
//! order over a fixed sequencer "suggests that relaxing the requirement for
//! total order is necessary for efficient deployment in wide area networks"
//! — shows up here as latency tracking the longest round trip.
//!
//! ```sh
//! cargo run --release --example wide_area
//! ```

use dbsm_testbed::core::{run_experiment, ExperimentConfig};
use dbsm_testbed::gcs::GcsConfig;
use std::time::Duration;

fn run_with_lan_latency(label: &str, one_way: Duration) {
    let mut cfg = ExperimentConfig::replicated(3, 90).with_target(900);
    // Model a WAN by stretching the shared segment's propagation latency:
    // certification cannot finish before the ordering round trip.
    let mut gcs = GcsConfig::lan(3);
    // WAN-friendlier protocol settings: longer NAK and gossip cadence.
    gcs.nak_delay = Duration::from_millis(20).max(one_way / 2);
    gcs.gossip_period = Duration::from_millis(100).max(one_way);
    cfg.gcs = Some(gcs);
    cfg.wan_latency = Some(one_way);
    let m = run_experiment(cfg);
    let mut cert = m.cert_latencies_ms.clone();
    println!(
        "{label:<18} tpm={:>6.0}  cert p50={:>7.1}ms  p99={:>8.1}ms  txn latency={:>7.1}ms",
        m.tpm(),
        cert.percentile(50.0).unwrap_or(0.0),
        cert.percentile(99.0).unwrap_or(0.0),
        m.mean_latency_ms()
    );
}

fn main() {
    println!("3 sites, 90 clients, 900 transactions per row\n");
    run_with_lan_latency("LAN (50us)", Duration::from_micros(50));
    run_with_lan_latency("metro (2ms)", Duration::from_millis(2));
    run_with_lan_latency("regional (10ms)", Duration::from_millis(10));
    run_with_lan_latency("continental (40ms)", Duration::from_millis(40));
    println!("\ncertification latency tracks the ordering round trip: the paper's");
    println!("motivation for optimistic total order in wide-area networks.");
}

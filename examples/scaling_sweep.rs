//! Scalability sweep (a compact version of the paper's Fig. 5): throughput,
//! latency and abort rate as the client population grows, comparing
//! centralized servers (1 and 3 CPUs) with a 3-site replicated database.
//!
//! ```sh
//! cargo run --release --example scaling_sweep
//! ```

use dbsm_testbed::core::{report, run_experiment, ExperimentConfig};

fn main() {
    let client_counts = [50usize, 150, 300, 450];
    let txns = 1200u64;

    println!("throughput (committed tpm); {txns} transactions per cell\n");
    println!("{}", report::series_header(&["1 CPU", "3 CPU", "3 sites"]));
    let mut rows = Vec::new();
    for &clients in &client_counts {
        let one = run_experiment(ExperimentConfig::centralized(1, clients).with_target(txns));
        let three = run_experiment(ExperimentConfig::centralized(3, clients).with_target(txns));
        let sites = run_experiment(ExperimentConfig::replicated(3, clients).with_target(txns));
        println!("{}", report::series_row(clients, &[one.tpm(), three.tpm(), sites.tpm()]));
        rows.push((clients, one, three, sites));
    }

    println!("\nmean latency (ms)\n{}", report::series_header(&["1 CPU", "3 CPU", "3 sites"]));
    for (clients, one, three, sites) in &rows {
        println!(
            "{}",
            report::series_row(
                *clients,
                &[one.mean_latency_ms(), three.mean_latency_ms(), sites.mean_latency_ms()]
            )
        );
    }

    println!("\nabort rate (%)\n{}", report::series_header(&["1 CPU", "3 CPU", "3 sites"]));
    for (clients, one, three, sites) in &rows {
        println!(
            "{}",
            report::series_row(
                *clients,
                &[one.abort_rate(), three.abort_rate(), sites.abort_rate()]
            )
        );
    }

    println!(
        "\nthe paper's headline: the replicated system tracks the centralized server \
         with the same total CPUs — here 3 sites vs 3 CPUs differ by {:.0}% in peak tpm",
        {
            let (_, _, three, sites) = rows.last().expect("rows non-empty");
            (three.tpm() - sites.tpm()).abs() * 100.0 / three.tpm().max(1.0)
        }
    );
}

//! The same protocol code on a real network (paper §2.3): run the group
//! communication prototype over genuine UDP sockets on loopback — the second
//! implementation of the abstraction layer — and show totally ordered
//! delivery across three OS processes' worth of stacks in one process.
//!
//! ```sh
//! cargo run --release --example native_group
//! ```

use bytes::Bytes;
use dbsm_testbed::gcs::{GcsConfig, NativeBridge, NativeConfig, NodeId, Upcall};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    let base = 47310u16;
    let peers: Vec<SocketAddr> =
        (0..3).map(|i| format!("127.0.0.1:{}", base + i).parse().expect("addr")).collect();
    let mut bridges: Vec<NativeBridge> = (0..3u16)
        .map(|i| {
            NativeBridge::new(NativeConfig {
                me: NodeId(i),
                peers: peers.clone(),
                gcs: GcsConfig::lan(3),
            })
        })
        .collect::<std::io::Result<_>>()?;

    // Each node multicasts a few transactions' worth of payloads.
    for round in 0..5u64 {
        for (i, b) in bridges.iter_mut().enumerate() {
            let tag = round * 10 + i as u64;
            b.broadcast(Bytes::from(format!("txn-{tag}").into_bytes()));
        }
    }

    // Drive all three stacks until everyone delivered everything.
    let mut logs: Vec<Vec<(NodeId, String)>> = vec![Vec::new(); 3];
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && logs.iter().any(|l| l.len() < 15) {
        for (i, b) in bridges.iter_mut().enumerate() {
            b.step(Duration::from_millis(2))?;
            for up in b.drain_upcalls() {
                if let Upcall::Deliver { origin, payload, .. } = up {
                    logs[i].push((origin, String::from_utf8_lossy(&payload).into_owned()));
                }
            }
        }
    }

    println!("deliveries per node: {} / {} / {}", logs[0].len(), logs[1].len(), logs[2].len());
    assert_eq!(logs[0], logs[1], "total order on real sockets");
    assert_eq!(logs[0], logs[2], "total order on real sockets");
    println!("total order verified across 3 stacks over real UDP:");
    for (origin, msg) in logs[0].iter().take(6) {
        println!("  {origin} {msg}");
    }
    println!("  ... ({} total)", logs[0].len());
    Ok(())
}

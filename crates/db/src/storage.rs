//! The storage resource (§3.1): "a storage element is used for fetching and
//! storing items and is defined by its latency and number of allowed
//! concurrent requests. Each request manipulates a single storage sector,
//! hence storage bandwidth becomes configured indirectly. A cache hit ratio
//! determines the probability of a read request being handled instantaneously
//! without consuming storage resources."

use dbsm_sim::{Sim, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Storage configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageConfig {
    /// Service time of one sector request.
    pub latency: Duration,
    /// Concurrent requests the device sustains (command queuing / RAID).
    pub concurrency: usize,
    /// Probability a read is served from cache without touching the device.
    pub cache_hit: f64,
}

impl StorageConfig {
    /// The paper's test storage (§4.1): fibre-channel RAID-5 box measured at
    /// 9.486 MB/s of synchronous 4 KB writes; with 4-way concurrency that
    /// decomposes to ≈1.65 ms per sector. The measured cache hit ratio was
    /// above 98%, so the model is configured with 100% read hits ("read
    /// items do not directly consume storage bandwidth").
    pub fn raid5_fibre() -> Self {
        StorageConfig { latency: Duration::from_micros(1650), concurrency: 4, cache_hit: 1.0 }
    }

    /// Sustainable sector throughput (sectors per second).
    pub fn max_sectors_per_sec(&self) -> f64 {
        self.concurrency as f64 / self.latency.as_secs_f64()
    }
}

struct Request {
    remaining: u32,
    on_done: Box<dyn FnOnce()>,
}

struct Inner {
    config: StorageConfig,
    /// Outstanding requests by id.
    requests: std::collections::HashMap<u64, Request>,
    /// Sectors not yet issued to the device: `(request id, count)` FIFO.
    issue_queue: VecDeque<(u64, u32)>,
    next_req: u64,
    in_service: usize,
    /// Sector-service time integral for utilisation accounting (Fig. 6b).
    busy_ns: u64,
    completed_sectors: u64,
    rng: SmallRng,
    queue_peak: usize,
}

/// A simulated storage device attached to one site.
///
/// Requests are batches of sector operations; `on_done` fires when the whole
/// batch completed. Reads roll the cache first.
#[derive(Clone)]
pub struct Storage {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl Storage {
    /// Creates a storage device.
    pub fn new(sim: &Sim, config: StorageConfig, seed: u64) -> Self {
        assert!(config.concurrency >= 1, "storage needs at least one channel");
        assert!((0.0..=1.0).contains(&config.cache_hit), "cache hit ratio out of range");
        Storage {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                config,
                requests: std::collections::HashMap::new(),
                issue_queue: VecDeque::new(),
                next_req: 0,
                in_service: 0,
                busy_ns: 0,
                completed_sectors: 0,
                rng: SmallRng::seed_from_u64(seed),
                queue_peak: 0,
            })),
        }
    }

    /// Submits a read of `sectors` sectors; each may hit the cache and cost
    /// nothing. `on_done` fires when all device reads finish (immediately if
    /// everything hit).
    pub fn read(&self, sectors: u32, on_done: impl FnOnce() + 'static) {
        let misses = {
            let mut inner = self.inner.borrow_mut();
            let hit = inner.config.cache_hit;
            (0..sectors).filter(|_| !inner.rng.gen_bool(hit)).count() as u32
        };
        if misses == 0 {
            // Cache hits are free and synchronous-at-this-instant; schedule
            // the callback so completion order stays deterministic.
            self.sim.schedule_now(on_done);
        } else {
            self.submit(misses, Box::new(on_done));
        }
    }

    /// Submits a write of `sectors` sectors (writes always hit the device).
    pub fn write(&self, sectors: u32, on_done: impl FnOnce() + 'static) {
        if sectors == 0 {
            self.sim.schedule_now(on_done);
        } else {
            self.submit(sectors, Box::new(on_done));
        }
    }

    fn submit(&self, sectors: u32, on_done: Box<dyn FnOnce()>) {
        {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_req;
            inner.next_req += 1;
            inner.requests.insert(id, Request { remaining: sectors, on_done });
            inner.issue_queue.push_back((id, sectors));
            let ql = inner.requests.len();
            inner.queue_peak = inner.queue_peak.max(ql);
        }
        self.pump();
    }

    /// Starts sector services while channels are free, FIFO across requests
    /// (later requests may overlap an earlier one that saturated a channel).
    fn pump(&self) {
        loop {
            let job = {
                let mut inner = self.inner.borrow_mut();
                if inner.in_service >= inner.config.concurrency {
                    break;
                }
                let Some((id, left)) = inner.issue_queue.front_mut() else { break };
                let id = *id;
                *left -= 1;
                if *left == 0 {
                    inner.issue_queue.pop_front();
                }
                inner.in_service += 1;
                (id, inner.config.latency)
            };
            let (id, latency) = job;
            let this = self.clone();
            self.sim.schedule_in(latency, move || this.sector_done(id));
        }
    }

    fn sector_done(&self, id: u64) {
        let done_cb = {
            let mut inner = self.inner.borrow_mut();
            inner.in_service -= 1;
            inner.busy_ns += inner.config.latency.as_nanos() as u64;
            inner.completed_sectors += 1;
            let req = inner.requests.get_mut(&id).expect("completion without request");
            req.remaining -= 1;
            if req.remaining == 0 {
                Some(inner.requests.remove(&id).expect("present").on_done)
            } else {
                None
            }
        };
        if let Some(cb) = done_cb {
            cb();
        }
        self.pump();
    }

    /// Device utilisation over `[0, now]`: busy channel-time divided by
    /// available channel-time.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let inner = self.inner.borrow();
        let avail = now.as_nanos() as f64 * inner.config.concurrency as f64;
        if avail == 0.0 {
            0.0
        } else {
            inner.busy_ns as f64 / avail
        }
    }

    /// Total sectors served by the device.
    pub fn completed_sectors(&self) -> u64 {
        self.inner.borrow().completed_sectors
    }

    /// Deepest request queue observed.
    pub fn queue_peak(&self) -> usize {
        self.inner.borrow().queue_peak
    }

    /// The configuration in force.
    pub fn config(&self) -> StorageConfig {
        self.inner.borrow().config
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Storage")
            .field("queued", &inner.requests.len())
            .field("in_service", &inner.in_service)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn no_cache() -> StorageConfig {
        StorageConfig { latency: Duration::from_millis(1), concurrency: 2, cache_hit: 0.0 }
    }

    #[test]
    fn write_batch_completes_after_service() {
        let sim = Sim::new();
        let st = Storage::new(&sim, no_cache(), 1);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = done.clone();
        let s2 = sim.clone();
        st.write(4, move || d.set(s2.now()));
        sim.run();
        // 4 sectors, 2 channels, 1ms each -> 2ms.
        assert_eq!(done.get(), SimTime::from_millis(2));
        assert_eq!(st.completed_sectors(), 4);
    }

    #[test]
    fn concurrency_bounds_throughput() {
        let sim = Sim::new();
        let st = Storage::new(&sim, no_cache(), 1);
        for _ in 0..10 {
            st.write(1, || {});
        }
        sim.run();
        // 10 sectors / 2 channels * 1ms = 5ms.
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert!((st.utilization(sim.now()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_cache_makes_reads_free() {
        let sim = Sim::new();
        let cfg = StorageConfig { cache_hit: 1.0, ..no_cache() };
        let st = Storage::new(&sim, cfg, 1);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        st.read(100, move || d.set(true));
        sim.run();
        assert!(done.get());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(st.completed_sectors(), 0);
    }

    #[test]
    fn partial_cache_hits_reduce_device_load() {
        let sim = Sim::new();
        let cfg = StorageConfig { cache_hit: 0.5, ..no_cache() };
        let st = Storage::new(&sim, cfg, 42);
        st.read(1000, || {});
        sim.run();
        let served = st.completed_sectors();
        assert!(served > 350 && served < 650, "served {served}");
    }

    #[test]
    fn zero_sector_write_completes_immediately() {
        let sim = Sim::new();
        let st = Storage::new(&sim, no_cache(), 1);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        st.write(0, move || d.set(true));
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn requests_complete_in_fifo_order() {
        let sim = Sim::new();
        let st = Storage::new(&sim, no_cache(), 1);
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..3 {
            let o = order.clone();
            st.write(2, move || o.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn paper_config_matches_measured_bandwidth() {
        let cfg = StorageConfig::raid5_fibre();
        let sectors_per_sec = cfg.max_sectors_per_sec();
        let mbps = sectors_per_sec * 4096.0 / 1e6;
        // 9.486 MB/s measured by IOzone in the paper.
        assert!((mbps - 9.9).abs() < 0.5, "got {mbps} MB/s");
    }
}

//! The lock table implementing the paper's PostgreSQL-style multi-version
//! policy (§3.1): fetched items are ignored; updated items are locked
//! exclusively; all of a transaction's locks are acquired atomically and
//! released atomically at commit/abort, which makes deadlock impossible
//! (access sets are known upfront, and no transaction waits while holding).
//!
//! Outcome rules on release:
//!
//! * **commit** — waiters on the released locks *abort* (write-write
//!   conflict against the newly committed version);
//! * **abort** — waiters may acquire.
//!
//! Remotely-certified transactions preempt local lock holders ("local
//! transactions holding the same locks are preempted and aborted right
//! away"), except holders already past certification, which cannot abort.
//! A [`Conservative2pl`](CcPolicy::Conservative2pl) variant (waiters survive
//! commits) is provided for the locking-policy ablation the paper mentions.

use dbsm_cert::TupleId;
use std::collections::{HashMap, VecDeque};

/// Engine-local transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Who a lock owner is, for conflict arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerKind {
    /// Local transaction still abortable (executing / waiting).
    LocalAbortable,
    /// Local transaction past the point of no return (certifying or
    /// writing back a certified commit).
    LocalPinned,
    /// Remote (already certified) transaction; never aborted.
    Remote,
}

/// Concurrency-control policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcPolicy {
    /// The paper's multi-version emulation: waiters abort when the holder
    /// commits.
    #[default]
    MultiVersion,
    /// Conservative two-phase locking: waiters acquire after the holder
    /// commits (no waiter aborts).
    Conservative2pl,
}

#[derive(Debug)]
struct Holder {
    set: Vec<TupleId>,
    kind: OwnerKind,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    set: Vec<TupleId>,
    kind: OwnerKind,
}

/// What happened to the waiters after a release or preemption.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReleaseEffects {
    /// Waiters granted all their locks (in FIFO order).
    pub granted: Vec<TxnId>,
    /// Waiters aborted by the policy (write-write conflict with a commit).
    pub aborted: Vec<TxnId>,
}

/// Result of an acquisition attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquire {
    /// All locks granted.
    Granted,
    /// Conflicts exist; the transaction queued FIFO.
    Queued,
    /// (Remote only) conflicts are local abortable holders that must be
    /// aborted by the engine; the remote acquisition retries afterwards.
    Preempt(Vec<TxnId>),
}

/// The site-wide lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    policy: CcPolicy,
    held: HashMap<TupleId, TxnId>,
    holders: HashMap<TxnId, Holder>,
    waiters: VecDeque<Waiter>,
}

impl LockTable {
    /// Creates an empty table under `policy`.
    pub fn new(policy: CcPolicy) -> Self {
        LockTable { policy, ..LockTable::default() }
    }

    /// Number of transactions currently holding locks.
    pub fn holder_count(&self) -> usize {
        self.holders.len()
    }

    /// Number of transactions waiting.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }

    /// True if `txn` currently holds its locks.
    pub fn is_holder(&self, txn: TxnId) -> bool {
        self.holders.contains_key(&txn)
    }

    /// Attempts to atomically acquire write locks on `set` for `txn`.
    ///
    /// An empty set is granted trivially. Remote transactions report
    /// [`Acquire::Preempt`] when blocked (only) by abortable local holders.
    ///
    /// # Panics
    ///
    /// Panics if `txn` already holds or waits (each transaction acquires
    /// exactly once), or if `set` contains table-level entries (writes are
    /// always row-level in the supported workloads).
    pub fn acquire(&mut self, txn: TxnId, set: Vec<TupleId>, kind: OwnerKind) -> Acquire {
        assert!(!self.holders.contains_key(&txn), "{txn:?} already holds locks");
        debug_assert!(set.iter().all(|t| !t.is_table_level()), "row-level writes only");
        let conflicts: Vec<TxnId> = self.conflicting_holders(&set);
        let blocked_by_queue = self.waiters.iter().any(|w| {
            // FIFO fairness: a new request also waits behind queued waiters
            // that want any of the same locks.
            w.set.iter().any(|t| set.contains(t))
        });
        if conflicts.is_empty() && !blocked_by_queue {
            for t in &set {
                self.held.insert(*t, txn);
            }
            self.holders.insert(txn, Holder { set, kind });
            return Acquire::Granted;
        }
        if kind == OwnerKind::Remote {
            let abortable: Vec<TxnId> = conflicts
                .iter()
                .copied()
                .filter(|c| {
                    self.holders.get(c).map(|h| h.kind == OwnerKind::LocalAbortable) == Some(true)
                })
                .collect();
            if !abortable.is_empty() {
                return Acquire::Preempt(abortable);
            }
        }
        self.waiters.push_back(Waiter { txn, set, kind });
        Acquire::Queued
    }

    fn conflicting_holders(&self, set: &[TupleId]) -> Vec<TxnId> {
        let mut out = Vec::new();
        for t in set {
            if let Some(h) = self.held.get(t) {
                if !out.contains(h) {
                    out.push(*h);
                }
            }
        }
        out
    }

    /// Marks a holder as past the point of no return (entering
    /// certification / write-back): remote preemption will wait instead of
    /// aborting it.
    pub fn pin(&mut self, txn: TxnId) {
        if let Some(h) = self.holders.get_mut(&txn) {
            if h.kind == OwnerKind::LocalAbortable {
                h.kind = OwnerKind::LocalPinned;
            }
        }
    }

    /// Releases all locks of `txn`. `committed` selects the policy outcome
    /// for waiters. Also used to abort a *waiting* transaction (its queue
    /// entry is removed).
    pub fn release(&mut self, txn: TxnId, committed: bool) -> ReleaseEffects {
        let mut effects = ReleaseEffects::default();
        let released_set = match self.holders.remove(&txn) {
            Some(h) => {
                for t in &h.set {
                    self.held.remove(t);
                }
                h.set
            }
            None => {
                // A waiter withdrawing (e.g. aborted while queued).
                self.waiters.retain(|w| w.txn != txn);
                Vec::new()
            }
        };
        // Multi-version rule: waiters wanting the committed locks abort —
        // but never remote waiters (they are certified and must apply).
        if committed && self.policy == CcPolicy::MultiVersion && !released_set.is_empty() {
            let mut keep = VecDeque::with_capacity(self.waiters.len());
            for w in self.waiters.drain(..) {
                let hit = w.set.iter().any(|t| released_set.contains(t));
                if hit && w.kind != OwnerKind::Remote {
                    effects.aborted.push(w.txn);
                } else {
                    keep.push_back(w);
                }
            }
            self.waiters = keep;
        }
        // Grant whichever waiters can now proceed, in FIFO order.
        self.regrant(&mut effects);
        effects
    }

    fn regrant(&mut self, effects: &mut ReleaseEffects) {
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut idx = 0;
            let mut reserved: Vec<TupleId> = Vec::new();
            while idx < self.waiters.len() {
                let w = &self.waiters[idx];
                let free = w.set.iter().all(|t| !self.held.contains_key(t))
                    && w.set.iter().all(|t| !reserved.contains(t));
                if free {
                    let w = self.waiters.remove(idx).expect("index in range");
                    for t in &w.set {
                        self.held.insert(*t, w.txn);
                    }
                    effects.granted.push(w.txn);
                    self.holders.insert(w.txn, Holder { set: w.set, kind: w.kind });
                    progressed = true;
                } else {
                    // FIFO: earlier waiters reserve their lock set so later
                    // ones cannot jump the queue.
                    reserved.extend(w.set.iter().copied());
                    idx += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsm_cert::TableId;

    fn id(r: u64) -> TupleId {
        TupleId::new(TableId(1), r)
    }

    fn table() -> LockTable {
        LockTable::new(CcPolicy::MultiVersion)
    }

    #[test]
    fn disjoint_sets_acquire_concurrently() {
        let mut lt = table();
        assert_eq!(lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable), Acquire::Granted);
        assert_eq!(lt.acquire(TxnId(2), vec![id(2)], OwnerKind::LocalAbortable), Acquire::Granted);
        assert_eq!(lt.holder_count(), 2);
    }

    #[test]
    fn empty_set_is_trivially_granted() {
        let mut lt = table();
        assert_eq!(lt.acquire(TxnId(1), vec![], OwnerKind::LocalAbortable), Acquire::Granted);
    }

    #[test]
    fn conflicting_acquire_queues_fifo() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        assert_eq!(lt.acquire(TxnId(2), vec![id(1)], OwnerKind::LocalAbortable), Acquire::Queued);
        assert_eq!(lt.waiter_count(), 1);
    }

    #[test]
    fn commit_aborts_waiters_multiversion() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1), id(2)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(2), vec![id(1)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(3), vec![id(9)], OwnerKind::LocalAbortable);
        let fx = lt.release(TxnId(1), true);
        assert_eq!(fx.aborted, vec![TxnId(2)], "waiter on committed lock aborts");
        assert!(fx.granted.is_empty());
        assert_eq!(lt.holder_count(), 1, "txn3 unaffected");
    }

    #[test]
    fn abort_lets_waiters_acquire() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(2), vec![id(1)], OwnerKind::LocalAbortable);
        let fx = lt.release(TxnId(1), false);
        assert_eq!(fx.granted, vec![TxnId(2)]);
        assert!(fx.aborted.is_empty());
        assert!(lt.is_holder(TxnId(2)));
    }

    #[test]
    fn conservative_2pl_grants_after_commit() {
        let mut lt = LockTable::new(CcPolicy::Conservative2pl);
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(2), vec![id(1)], OwnerKind::LocalAbortable);
        let fx = lt.release(TxnId(1), true);
        assert_eq!(fx.granted, vec![TxnId(2)]);
        assert!(fx.aborted.is_empty());
    }

    #[test]
    fn remote_preempts_abortable_local() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        match lt.acquire(TxnId(100), vec![id(1)], OwnerKind::Remote) {
            Acquire::Preempt(victims) => assert_eq!(victims, vec![TxnId(1)]),
            other => panic!("expected preempt, got {other:?}"),
        }
        // Engine aborts the victim, then retries.
        let fx = lt.release(TxnId(1), false);
        assert!(fx.granted.is_empty());
        assert_eq!(lt.acquire(TxnId(100), vec![id(1)], OwnerKind::Remote), Acquire::Granted);
    }

    #[test]
    fn remote_waits_for_pinned_local() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        lt.pin(TxnId(1));
        assert_eq!(lt.acquire(TxnId(100), vec![id(1)], OwnerKind::Remote), Acquire::Queued);
        // Pinned local commits; the remote waiter survives (it must apply)
        // and acquires.
        let fx = lt.release(TxnId(1), true);
        assert_eq!(fx.granted, vec![TxnId(100)]);
        assert!(fx.aborted.is_empty());
    }

    #[test]
    fn remote_queues_behind_remote() {
        let mut lt = table();
        lt.acquire(TxnId(100), vec![id(1)], OwnerKind::Remote);
        assert_eq!(lt.acquire(TxnId(101), vec![id(1)], OwnerKind::Remote), Acquire::Queued);
        let fx = lt.release(TxnId(100), true);
        assert_eq!(fx.granted, vec![TxnId(101)]);
    }

    #[test]
    fn fifo_no_queue_jumping() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(2), vec![id(1), id(2)], OwnerKind::LocalAbortable);
        // Txn 3 wants id(2), free right now — but txn 2 queued first for it.
        assert_eq!(lt.acquire(TxnId(3), vec![id(2)], OwnerKind::LocalAbortable), Acquire::Queued);
        let fx = lt.release(TxnId(1), false);
        assert_eq!(fx.granted, vec![TxnId(2)], "FIFO order respected");
        let fx = lt.release(TxnId(2), false);
        assert_eq!(fx.granted, vec![TxnId(3)]);
    }

    #[test]
    fn waiting_txn_can_withdraw() {
        let mut lt = table();
        lt.acquire(TxnId(1), vec![id(1)], OwnerKind::LocalAbortable);
        lt.acquire(TxnId(2), vec![id(1)], OwnerKind::LocalAbortable);
        let fx = lt.release(TxnId(2), false);
        assert_eq!(fx, ReleaseEffects::default());
        assert_eq!(lt.waiter_count(), 0);
        let fx = lt.release(TxnId(1), true);
        assert!(fx.aborted.is_empty(), "withdrawn waiter not aborted again");
    }

    #[test]
    fn atomic_acquisition_prevents_deadlock() {
        // Classic deadlock shape: T1 wants {1,2}, T2 wants {2,1}. With
        // atomic acquisition one of them gets both, the other waits.
        let mut lt = table();
        assert_eq!(
            lt.acquire(TxnId(1), vec![id(1), id(2)], OwnerKind::LocalAbortable),
            Acquire::Granted
        );
        assert_eq!(
            lt.acquire(TxnId(2), vec![id(2), id(1)], OwnerKind::LocalAbortable),
            Acquire::Queued
        );
        let fx = lt.release(TxnId(1), false);
        assert_eq!(fx.granted, vec![TxnId(2)]);
    }
}

//! # dbsm-db — the database server model (§3.1)
//!
//! A coarse-grained but faithful model of one replica's database engine:
//! transactions run as *fetch → process → write-back* pipelines over shared
//! resources — a [`CpuBank`](dbsm_sim::CpuBank) (where protocol real jobs
//! preempt transaction processing) and a [`Storage`] device with latency,
//! bounded concurrency and a cache-hit model — under a PostgreSQL-style
//! multi-version locking policy: fetches ignore locks, writes take exclusive
//! locks atomically, waiters abort when their holder commits, and remotely
//! certified write-sets preempt local holders.
//!
//! Termination is delegated: [`DbEngine`] raises a commit request at the
//! commit point and the replication layer answers with [`DbEngine::resolve`]
//! — which is how the same engine serves both the centralized baseline and
//! the DBSM-replicated configurations of the paper's §5.
//!
//! # Examples
//!
//! ```
//! use dbsm_db::{CcPolicy, DbEngine, StorageConfig, TransactionSpec};
//! use dbsm_sim::{CpuBank, ProfilerMode, Sim};
//! use dbsm_cert::{RwSet, TableId, TupleId};
//! use std::time::Duration;
//!
//! let sim = Sim::new();
//! let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
//! let eng = DbEngine::new(&sim, &cpu, StorageConfig::raid5_fibre(), CcPolicy::MultiVersion, 1);
//! let spec = TransactionSpec {
//!     class: 0,
//!     read_set: RwSet::new(),
//!     write_set: [TupleId::new(TableId(1), 9)].into_iter().collect(),
//!     write_bytes: 64,
//!     cpu: Duration::from_millis(2),
//!     user_abort: false,
//!     read_only: false,
//!     relaxed: false,
//! };
//! let e2 = eng.clone();
//! eng.begin_local(spec, move |t, _| e2.resolve(t, true), |_, out| {
//!     assert_eq!(out, dbsm_db::Outcome::Committed);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

mod engine;
mod lock;
mod storage;

pub use engine::{AbortReason, DbEngine, EngineMetrics, Outcome, TransactionSpec};
pub use lock::{Acquire, CcPolicy, LockTable, OwnerKind, ReleaseEffects, TxnId};
pub use storage::{Storage, StorageConfig};

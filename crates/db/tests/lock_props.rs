//! Property tests of the lock table: under arbitrary interleavings of
//! acquisitions and releases, the core invariants of the multi-version
//! policy hold — exclusivity, atomicity, no lost waiters, no deadlock.

use dbsm_cert::{TableId, TupleId};
use dbsm_db::{Acquire, CcPolicy, LockTable, OwnerKind, TxnId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// Acquire `n_locks` from a small key space for a fresh transaction.
    Acquire { keys: Vec<u8>, remote: bool },
    /// Release the k-th oldest active transaction (commit or abort).
    Release { idx: u8, commit: bool },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (prop::collection::vec(0u8..12, 1..5), any::<bool>())
            .prop_map(|(keys, remote)| Op::Acquire { keys, remote }),
        (any::<u8>(), any::<bool>()).prop_map(|(idx, commit)| Op::Release { idx, commit }),
    ]
}

fn tid(k: u8) -> TupleId {
    TupleId::new(TableId(1), u64::from(k) + 1)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn lock_table_invariants_hold(ops in prop::collection::vec(arb_op(), 1..80)) {
        let mut lt = LockTable::new(CcPolicy::MultiVersion);
        let mut next = 1u64;
        // Transactions we believe hold locks, with their sets.
        let mut holders: HashMap<TxnId, Vec<u8>> = HashMap::new();
        // Transactions queued (waiting).
        let mut waiting: HashMap<TxnId, Vec<u8>> = HashMap::new();
        let mut order: Vec<TxnId> = Vec::new();

        for op in ops {
            match op {
                Op::Acquire { mut keys, remote } => {
                    keys.sort_unstable();
                    keys.dedup();
                    let txn = TxnId(next);
                    next += 1;
                    let set: Vec<TupleId> = keys.iter().map(|k| tid(*k)).collect();
                    let kind = if remote { OwnerKind::Remote } else { OwnerKind::LocalAbortable };
                    match lt.acquire(txn, set, kind) {
                        Acquire::Granted => {
                            // Exclusivity: no current holder shares a key.
                            for (other, oset) in &holders {
                                prop_assert!(
                                    !oset.iter().any(|k| keys.contains(k)),
                                    "{txn:?} granted over {other:?}"
                                );
                            }
                            holders.insert(txn, keys);
                            order.push(txn);
                        }
                        Acquire::Queued => {
                            waiting.insert(txn, keys);
                            order.push(txn);
                        }
                        Acquire::Preempt(victims) => {
                            prop_assert!(remote, "only remotes preempt");
                            // Abort victims and retry, exactly like the
                            // engine: granted waiters may surface as fresh
                            // conflicts, so this loops — but each round
                            // aborts at least one local, so it terminates.
                            let mut pending = victims;
                            let mut rounds = 0;
                            loop {
                                rounds += 1;
                                prop_assert!(rounds < 100, "preempt loop diverged");
                                for v in &pending {
                                    prop_assert!(holders.remove(v).is_some(), "victim {v:?} held");
                                    let fx = lt.release(*v, false);
                                    for g in fx.granted {
                                        let set = waiting.remove(&g).expect("waiter granted");
                                        holders.insert(g, set);
                                    }
                                    for a in fx.aborted {
                                        prop_assert!(waiting.remove(&a).is_some());
                                    }
                                }
                                let set: Vec<TupleId> = keys.iter().map(|k| tid(*k)).collect();
                                match lt.acquire(txn, set, kind) {
                                    Acquire::Granted => {
                                        holders.insert(txn, keys);
                                        break;
                                    }
                                    Acquire::Queued => {
                                        waiting.insert(txn, keys);
                                        break;
                                    }
                                    Acquire::Preempt(v) => pending = v,
                                }
                            }
                            order.push(txn);
                        }
                    }
                }
                Op::Release { idx, commit } => {
                    let active: Vec<TxnId> =
                        order.iter().filter(|t| holders.contains_key(t)).copied().collect();
                    if active.is_empty() {
                        continue;
                    }
                    let txn = active[idx as usize % active.len()];
                    holders.remove(&txn);
                    let fx = lt.release(txn, commit);
                    for g in fx.granted {
                        let set = waiting.remove(&g).expect("granted waiter was waiting");
                        // Exclusivity at grant time.
                        for (other, oset) in &holders {
                            prop_assert!(
                                !oset.iter().any(|k| set.contains(k)),
                                "grant {g:?} over {other:?}"
                            );
                        }
                        holders.insert(g, set);
                    }
                    for a in fx.aborted {
                        prop_assert!(waiting.remove(&a).is_some(), "aborted waiter unknown");
                    }
                }
            }
            // Table-view consistency.
            prop_assert_eq!(lt.holder_count(), holders.len());
            prop_assert_eq!(lt.waiter_count(), waiting.len());
        }

        // Drain: releasing everything must leave nothing waiting (no lost
        // wakeups, no deadlock — atomic acquisition guarantees progress).
        let mut guard = 0;
        while lt.holder_count() > 0 {
            let t = *holders.keys().next().expect("non-empty");
            holders.remove(&t);
            let fx = lt.release(t, false);
            for g in fx.granted {
                let set = waiting.remove(&g).expect("waiter");
                holders.insert(g, set);
            }
            for a in fx.aborted {
                waiting.remove(&a);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert_eq!(lt.waiter_count(), 0, "no waiter left behind");
        prop_assert!(waiting.is_empty());
    }

    #[test]
    fn conservative_2pl_never_aborts_waiters(keysets in prop::collection::vec(
        prop::collection::vec(0u8..6, 1..4), 2..20)
    ) {
        let mut lt = LockTable::new(CcPolicy::Conservative2pl);
        let mut active: HashSet<TxnId> = HashSet::new();
        for (i, mut keys) in keysets.into_iter().enumerate() {
            keys.sort_unstable();
            keys.dedup();
            let txn = TxnId(i as u64 + 1);
            let set: Vec<TupleId> = keys.iter().map(|k| tid(*k)).collect();
            match lt.acquire(txn, set, OwnerKind::LocalAbortable) {
                Acquire::Granted | Acquire::Queued => {
                    active.insert(txn);
                }
                Acquire::Preempt(_) => prop_assert!(false, "locals never preempt"),
            }
        }
        // Release everything as commits: under 2PL nobody aborts.
        let mut done: HashSet<TxnId> = HashSet::new();
        let mut guard = 0;
        while done.len() < active.len() {
            let holder = active.iter().find(|t| lt.is_holder(**t) && !done.contains(t)).copied();
            let Some(t) = holder else { break };
            let fx = lt.release(t, true);
            prop_assert!(fx.aborted.is_empty(), "2PL aborted a waiter");
            done.insert(t);
            guard += 1;
            prop_assert!(guard < 1000);
        }
    }
}

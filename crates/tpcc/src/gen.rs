//! The traffic generator (§3.2): produces per-client streams of TPC-C
//! transaction requests with realistic access sets, CPU demands and think
//! times. Only the *workload* of TPC-C is reproduced — throughput/screen
//! constraints are deliberately ignored, as in the paper.

use crate::class::TxnClass;
use crate::nurand::{customer_id, item_id, last_name_id, NurandC};
use crate::profile::profile;
use crate::schema::{
    self, customer_row, district_index, district_row, history_row, item_row, name_index_row,
    new_order_row, order_line_row, order_row, stock_row, tuple_size, warehouse_row,
    warehouses_for_clients, CLIENTS_PER_WAREHOUSE, DISTRICTS_PER_WAREHOUSE,
};
use dbsm_cert::{RwSet, TupleId};
use dbsm_db::TransactionSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Transaction mix (fractions must sum to 1). The paper's mix gives new
/// order and payment 44 % each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Fraction of new-order transactions.
    pub neworder: f64,
    /// Fraction of payment transactions.
    pub payment: f64,
    /// Fraction of order-status transactions.
    pub orderstatus: f64,
    /// Fraction of delivery transactions.
    pub delivery: f64,
    /// Fraction of stock-level transactions.
    pub stocklevel: f64,
}

impl Default for Mix {
    fn default() -> Self {
        Mix { neworder: 0.44, payment: 0.44, orderstatus: 0.04, delivery: 0.04, stocklevel: 0.04 }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TpccConfig {
    /// Emulated clients; the database is sized at one warehouse per ten
    /// clients, as in the paper.
    pub clients: usize,
    /// Mean of the exponential think time between transactions.
    pub think_mean: Duration,
    /// Transaction mix.
    pub mix: Mix,
    /// Fraction of payments selecting the customer by last name (spec: 60 %).
    pub payment_by_name: f64,
    /// Fraction of order-status by last name (spec: 60 %).
    pub orderstatus_by_name: f64,
    /// Fraction of payments hitting a remote warehouse's customer (15 %).
    pub remote_payment: f64,
    /// Fraction of order lines supplied by a remote warehouse (1 %).
    pub remote_item: f64,
    /// Fraction of new orders rolled back by the user (1 %).
    pub neworder_rollback: f64,
    /// Master seed.
    pub seed: u64,
}

impl TpccConfig {
    /// Standard configuration for `clients` emulated clients.
    pub fn new(clients: usize) -> Self {
        TpccConfig {
            clients,
            think_mean: Duration::from_secs(10),
            mix: Mix::default(),
            payment_by_name: 0.60,
            orderstatus_by_name: 0.60,
            remote_payment: 0.15,
            remote_item: 0.01,
            neworder_rollback: 0.01,
            seed: 42,
        }
    }
}

/// One generated request.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// The transaction class.
    pub class: TxnClass,
    /// The executable specification (access sets, CPU, flags).
    pub spec: TransactionSpec,
}

#[derive(Debug, Default)]
struct DistrictState {
    next_o_id: u64,
    /// FIFO of undelivered orders: `(o_id, customer, ol_cnt)`.
    undelivered: VecDeque<(u64, u64, u64)>,
    /// Ring of the most recent orders for stock-level scans.
    recent: VecDeque<(u64, u64)>,
}

/// The TPC-C traffic generator: shared workload state (order counters,
/// undelivered queues) plus a deterministic RNG.
#[derive(Debug)]
pub struct TpccGen {
    cfg: TpccConfig,
    warehouses: u64,
    rng: SmallRng,
    nurand_c: NurandC,
    districts: Vec<DistrictState>,
    /// `(district index, customer) -> (last order id, ol_cnt)`.
    last_order: HashMap<(u64, u64), (u64, u64)>,
    history_counter: u64,
}

impl TpccGen {
    /// Creates a generator for the configured client population.
    pub fn new(cfg: TpccConfig) -> Self {
        let warehouses = warehouses_for_clients(cfg.clients);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let nurand_c = NurandC::generate(&mut rng);
        let n_districts = (warehouses * DISTRICTS_PER_WAREHOUSE) as usize;
        let mut districts = Vec::with_capacity(n_districts);
        for _ in 0..n_districts {
            districts.push(DistrictState { next_o_id: 3001, ..DistrictState::default() });
        }
        TpccGen {
            cfg,
            warehouses,
            rng,
            nurand_c,
            districts,
            last_order: HashMap::new(),
            history_counter: 0,
        }
    }

    /// Number of warehouses backing the run.
    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }

    /// The configuration in force.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    /// The client's home warehouse (1-based).
    pub fn home_warehouse(&self, client: usize) -> u64 {
        (client / CLIENTS_PER_WAREHOUSE) as u64 % self.warehouses + 1
    }

    /// Draws the think time before a client's next request.
    pub fn think_time(&mut self) -> Duration {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        Duration::from_secs_f64(-self.cfg.think_mean.as_secs_f64() * (1.0 - u).ln())
    }

    /// Generates the next request for `client`, rolling the mix.
    pub fn next_request(&mut self, client: usize) -> ClientRequest {
        let m = self.cfg.mix;
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let class = if roll < m.neworder {
            TxnClass::NewOrder
        } else if roll < m.neworder + m.payment {
            if self.rng.gen_bool(self.cfg.payment_by_name) {
                TxnClass::PaymentLong
            } else {
                TxnClass::PaymentShort
            }
        } else if roll < m.neworder + m.payment + m.orderstatus {
            if self.rng.gen_bool(self.cfg.orderstatus_by_name) {
                TxnClass::OrderStatusLong
            } else {
                TxnClass::OrderStatusShort
            }
        } else if roll < m.neworder + m.payment + m.orderstatus + m.delivery {
            TxnClass::Delivery
        } else {
            TxnClass::StockLevel
        };
        self.request_for(client, class)
    }

    /// Generates a request of a specific class (used by targeted benches).
    pub fn request_for(&mut self, client: usize, class: TxnClass) -> ClientRequest {
        let w = self.home_warehouse(client);
        let spec = match class {
            TxnClass::NewOrder => self.gen_neworder(w),
            TxnClass::PaymentLong => self.gen_payment(w, true),
            TxnClass::PaymentShort => self.gen_payment(w, false),
            TxnClass::OrderStatusLong => self.gen_orderstatus(w, true),
            TxnClass::OrderStatusShort => self.gen_orderstatus(w, false),
            TxnClass::Delivery => self.gen_delivery(w),
            TxnClass::StockLevel => self.gen_stocklevel(client, w),
        };
        ClientRequest { class, spec }
    }

    fn rand_district(&mut self) -> u64 {
        self.rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE)
    }

    fn rand_remote_warehouse(&mut self, home: u64) -> u64 {
        if self.warehouses == 1 {
            return home;
        }
        loop {
            let w = self.rng.gen_range(1..=self.warehouses);
            if w != home {
                return w;
            }
        }
    }

    fn finish(
        &mut self,
        class: TxnClass,
        reads: Vec<TupleId>,
        writes: Vec<TupleId>,
        user_abort: bool,
    ) -> TransactionSpec {
        let write_set = RwSet::from_unsorted(writes);
        let write_bytes: u32 = write_set.ids().iter().map(|t| tuple_size(t.table())).sum();
        let cpu = profile(class).sample(&mut self.rng);
        TransactionSpec {
            class: class.index(),
            read_set: RwSet::from_unsorted(reads),
            write_set,
            write_bytes,
            cpu,
            user_abort,
            read_only: class.read_only(),
            relaxed: class == TxnClass::StockLevel,
        }
    }

    fn gen_neworder(&mut self, w: u64) -> TransactionSpec {
        let d = self.rand_district();
        let didx = district_index(w, d);
        let c = customer_id(&mut self.rng, &self.nurand_c);
        let ol_cnt = self.rng.gen_range(5..=15u64);
        let mut reads = vec![warehouse_row(w), district_row(w, d), customer_row(w, d, c)];
        let mut writes = vec![district_row(w, d)];
        let o_id = {
            let ds = &mut self.districts[didx as usize];
            let o = ds.next_o_id;
            ds.next_o_id += 1;
            o
        };
        writes.push(order_row(didx, o_id));
        writes.push(new_order_row(didx, o_id));
        for l in 1..=ol_cnt {
            let i = item_id(&mut self.rng, &self.nurand_c);
            let supply_w = if self.rng.gen_bool(self.cfg.remote_item) {
                self.rand_remote_warehouse(w)
            } else {
                w
            };
            reads.push(item_row(i));
            reads.push(stock_row(supply_w, i));
            writes.push(stock_row(supply_w, i));
            writes.push(order_line_row(didx, o_id, l));
        }
        let user_abort = self.rng.gen_bool(self.cfg.neworder_rollback);
        if !user_abort {
            let ds = &mut self.districts[didx as usize];
            ds.undelivered.push_back((o_id, c, ol_cnt));
            if ds.recent.len() == 20 {
                ds.recent.pop_front();
            }
            ds.recent.push_back((o_id, ol_cnt));
            self.last_order.insert((didx, c), (o_id, ol_cnt));
        }
        self.finish(TxnClass::NewOrder, reads, writes, user_abort)
    }

    fn gen_payment(&mut self, w: u64, by_name: bool) -> TransactionSpec {
        let d = self.rand_district();
        // Customer resides at home 85 % of the time, remote 15 %.
        let (cw, cd) = if self.rng.gen_bool(self.cfg.remote_payment) {
            (self.rand_remote_warehouse(w), self.rand_district())
        } else {
            (w, d)
        };
        let cdidx = district_index(cw, cd);
        let mut reads = vec![warehouse_row(w), district_row(w, d)];
        let mut writes = vec![warehouse_row(w), district_row(w, d)];
        let customer = if by_name {
            let name = last_name_id(&mut self.rng, &self.nurand_c);
            reads.push(name_index_row(cdidx, name));
            // The by-name path scans the matching customers (≈3 of 3000
            // share a last name) and picks the middle one; derive the
            // candidate set deterministically from the name so concurrent
            // same-name lookups touch the same rows.
            let span = schema::CUSTOMERS_PER_DISTRICT / schema::LAST_NAMES;
            let first = name * span + 1;
            for k in 0..span.min(3) {
                reads.push(customer_row(cw, cd, first + k));
            }
            first + span.min(3) / 2
        } else {
            let c = customer_id(&mut self.rng, &self.nurand_c);
            reads.push(customer_row(cw, cd, c));
            c
        };
        writes.push(customer_row(cw, cd, customer));
        let h = self.history_counter;
        self.history_counter += 1;
        writes.push(history_row(h));
        let class = if by_name { TxnClass::PaymentLong } else { TxnClass::PaymentShort };
        self.finish(class, reads, writes, false)
    }

    fn gen_orderstatus(&mut self, w: u64, by_name: bool) -> TransactionSpec {
        let d = self.rand_district();
        let didx = district_index(w, d);
        let mut reads = Vec::new();
        let customer = if by_name {
            let name = last_name_id(&mut self.rng, &self.nurand_c);
            reads.push(name_index_row(didx, name));
            let span = schema::CUSTOMERS_PER_DISTRICT / schema::LAST_NAMES;
            let first = name * span + 1;
            for k in 0..span.min(3) {
                reads.push(customer_row(w, d, first + k));
            }
            first + span.min(3) / 2
        } else {
            let c = customer_id(&mut self.rng, &self.nurand_c);
            reads.push(customer_row(w, d, c));
            c
        };
        if let Some(&(o_id, ol_cnt)) = self.last_order.get(&(didx, customer)) {
            reads.push(order_row(didx, o_id));
            for l in 1..=ol_cnt {
                reads.push(order_line_row(didx, o_id, l));
            }
        }
        let class = if by_name { TxnClass::OrderStatusLong } else { TxnClass::OrderStatusShort };
        self.finish(class, reads, Vec::new(), false)
    }

    fn gen_delivery(&mut self, w: u64) -> TransactionSpec {
        let mut reads = vec![warehouse_row(w)];
        let mut writes = Vec::new();
        for d in 1..=DISTRICTS_PER_WAREHOUSE {
            let didx = district_index(w, d);
            let Some((o_id, c, ol_cnt)) = self.districts[didx as usize].undelivered.pop_front()
            else {
                continue;
            };
            reads.push(new_order_row(didx, o_id));
            reads.push(order_row(didx, o_id));
            reads.push(customer_row(w, d, c));
            writes.push(new_order_row(didx, o_id));
            writes.push(order_row(didx, o_id));
            writes.push(customer_row(w, d, c));
            for l in 1..=ol_cnt {
                reads.push(order_line_row(didx, o_id, l));
                writes.push(order_line_row(didx, o_id, l));
            }
        }
        self.finish(TxnClass::Delivery, reads, writes, false)
    }

    fn gen_stocklevel(&mut self, client: usize, w: u64) -> TransactionSpec {
        // Stock level is bound to the terminal's own district (spec §2.8.1).
        let d = (client % DISTRICTS_PER_WAREHOUSE as usize) as u64 + 1;
        let didx = district_index(w, d);
        let mut reads = vec![district_row(w, d)];
        let recent: Vec<(u64, u64)> =
            self.districts[didx as usize].recent.iter().copied().collect();
        for (o_id, ol_cnt) in recent {
            for l in 1..=ol_cnt {
                reads.push(order_line_row(didx, o_id, l));
                let i = item_id(&mut self.rng, &self.nurand_c);
                reads.push(stock_row(w, i));
            }
        }
        self.finish(TxnClass::StockLevel, reads, Vec::new(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(clients: usize) -> TpccGen {
        TpccGen::new(TpccConfig::new(clients))
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = generator(100);
        let mut counts = [0u32; 7];
        let n = 20_000;
        for k in 0..n {
            let r = g.next_request(k % 100);
            counts[r.class.index() as usize] += 1;
        }
        let frac = |c: TxnClass| f64::from(counts[c.index() as usize]) / f64::from(n as u32);
        let neworder = frac(TxnClass::NewOrder);
        let payment = frac(TxnClass::PaymentLong) + frac(TxnClass::PaymentShort);
        assert!((neworder - 0.44).abs() < 0.02, "neworder {neworder}");
        assert!((payment - 0.44).abs() < 0.02, "payment {payment}");
        // Long/short split ≈ 60/40 within payment.
        let long_share = frac(TxnClass::PaymentLong) / payment;
        assert!((long_share - 0.6).abs() < 0.05, "long share {long_share}");
    }

    #[test]
    fn neworder_sets_have_spec_shape() {
        let mut g = generator(10);
        let r = g.request_for(0, TxnClass::NewOrder);
        let spec = r.spec;
        assert!(!spec.read_only);
        // district + order + neworder + (stock + orderline) per line.
        let lines = (spec.write_set.len() - 3) / 2;
        assert!((5..=15).contains(&lines), "lines {lines}");
        assert!(spec.write_set.contains(district_row(1, 1)) || spec.write_set.len() > 3);
        assert!(spec.write_bytes > 0);
        assert!(spec.cpu > Duration::ZERO);
    }

    #[test]
    fn payment_updates_the_home_warehouse_row() {
        let mut g = generator(10);
        for _ in 0..20 {
            let r = g.request_for(3, TxnClass::PaymentShort);
            assert!(r.spec.write_set.contains(warehouse_row(1)), "home warehouse hot spot");
            assert!(!r.spec.read_only);
        }
    }

    #[test]
    fn same_name_payments_collide_on_customers() {
        // Two by-name payments drawing the same last name must read/write
        // overlapping customer rows (the paper's Table 1 relies on this).
        let mut g = generator(10);
        let mut seen: HashMap<u64, RwSet> = HashMap::new();
        let mut collisions = 0;
        for _ in 0..300 {
            let r = g.request_for(0, TxnClass::PaymentLong);
            for prev in seen.values() {
                if prev.intersects(&r.spec.write_set) {
                    collisions += 1;
                    break;
                }
            }
            seen.insert(seen.len() as u64, r.spec.write_set);
        }
        assert!(collisions > 0, "by-name payments never collided");
    }

    #[test]
    fn orderstatus_reads_the_last_order() {
        let mut g = generator(10);
        // Create some orders first. The NURand customer draw is shared
        // between new-order and order-status, but a hit on the same
        // (district, customer) pair is still rare — seed enough orders and
        // probe until one lands so the test is robust to the RNG stream.
        for _ in 0..300 {
            let _ = g.request_for(0, TxnClass::NewOrder);
        }
        let mut with_order = 0;
        for _ in 0..2000 {
            let r = g.request_for(0, TxnClass::OrderStatusShort);
            assert!(r.spec.read_only);
            assert!(r.spec.write_set.is_empty());
            if r.spec.read_set.len() > 1 {
                with_order += 1;
                break;
            }
        }
        assert!(with_order > 0, "some order-status hits an existing order");
    }

    #[test]
    fn delivery_consumes_undelivered_orders() {
        let mut g = generator(10);
        for _ in 0..30 {
            let _ = g.request_for(0, TxnClass::NewOrder);
        }
        let r = g.request_for(0, TxnClass::Delivery);
        assert!(!r.spec.write_set.is_empty(), "delivers pending orders");
        // Orders delivered once are gone.
        let mut total_writes = r.spec.write_set.len();
        for _ in 0..10 {
            total_writes += g.request_for(0, TxnClass::Delivery).spec.write_set.len();
        }
        let empty = g.request_for(0, TxnClass::Delivery);
        assert!(empty.spec.write_set.is_empty(), "queue exhausted");
        assert!(total_writes > 0);
    }

    #[test]
    fn stocklevel_is_relaxed_read_only() {
        let mut g = generator(10);
        for _ in 0..30 {
            let _ = g.request_for(0, TxnClass::NewOrder);
        }
        let r = g.request_for(0, TxnClass::StockLevel);
        assert!(r.spec.read_only);
        assert!(r.spec.relaxed);
        assert!(r.spec.read_set.len() > 1, "scans recent order lines");
    }

    #[test]
    fn think_times_are_exponential_with_configured_mean() {
        let mut g = generator(10);
        let n = 5000;
        let total: f64 = (0..n).map(|_| g.think_time().as_secs_f64()).sum();
        let mean = total / f64::from(n as u32);
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = generator(50);
        let mut b = generator(50);
        for k in 0..200 {
            let ra = a.next_request(k % 50);
            let rb = b.next_request(k % 50);
            assert_eq!(ra.class, rb.class);
            assert_eq!(ra.spec.read_set, rb.spec.read_set);
            assert_eq!(ra.spec.write_set, rb.spec.write_set);
        }
    }

    #[test]
    fn clients_map_to_warehouses_in_tens() {
        let g = generator(25);
        assert_eq!(g.warehouses(), 3);
        assert_eq!(g.home_warehouse(0), 1);
        assert_eq!(g.home_warehouse(9), 1);
        assert_eq!(g.home_warehouse(10), 2);
        assert_eq!(g.home_warehouse(24), 3);
    }

    #[test]
    fn remote_items_touch_other_warehouses() {
        let mut cfg = TpccConfig::new(100);
        cfg.remote_item = 0.5; // exaggerate for the test
        let mut g = TpccGen::new(cfg);
        let mut cross = false;
        for _ in 0..50 {
            let r = g.request_for(0, TxnClass::NewOrder);
            let home_lo = stock_row(1, 1);
            let home_hi = stock_row(1, schema::STOCK_PER_WAREHOUSE);
            if r.spec
                .write_set
                .ids()
                .iter()
                .any(|t| t.table() == schema::STOCK && (*t < home_lo || *t > home_hi))
            {
                cross = true;
                break;
            }
        }
        assert!(cross, "no remote stock touched at 50% remote rate");
    }
}

//! TPC-C schema: table identifiers, cardinalities, tuple sizes and row-id
//! layout.
//!
//! The database is *virtual*: only identifiers and sizes exist (the paper's
//! prototype likewise manipulates 64-bit tuple identifiers and uses tuple
//! sizes for storage accounting and message padding, §3.3). Row numbers are
//! packed into the 48-bit row field of [`TupleId`].

use dbsm_cert::{TableId, TupleId};

/// Warehouse table.
pub const WAREHOUSE: TableId = TableId(1);
/// District table (10 per warehouse).
pub const DISTRICT: TableId = TableId(2);
/// Customer table (3 000 per district).
pub const CUSTOMER: TableId = TableId(3);
/// History table (append-only).
pub const HISTORY: TableId = TableId(4);
/// New-order table.
pub const NEW_ORDER: TableId = TableId(5);
/// Order table.
pub const ORDER: TableId = TableId(6);
/// Order-line table.
pub const ORDER_LINE: TableId = TableId(7);
/// Item table (100 000 rows, fixed).
pub const ITEM: TableId = TableId(8);
/// Stock table (100 000 per warehouse).
pub const STOCK: TableId = TableId(9);
/// Customer last-name index blocks (by-name lookups read these).
pub const CUSTOMER_NAME_IDX: TableId = TableId(10);

/// Districts per warehouse (TPC-C §1.2).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
/// Customers per district.
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
/// Items in the catalogue.
pub const ITEMS: u64 = 100_000;
/// Stock rows per warehouse.
pub const STOCK_PER_WAREHOUSE: u64 = 100_000;
/// Emulated clients (terminals) per warehouse (TPC-C §4.2: 10).
pub const CLIENTS_PER_WAREHOUSE: usize = 10;
/// Distinct last names addressable by NURand(255).
pub const LAST_NAMES: u64 = 1_000;

/// Approximate row sizes in bytes (TPC-C §1.3 storage clause; the paper
/// quotes "each ranging from 8 to 655 bytes").
pub mod tuple_bytes {
    /// Warehouse row.
    pub const WAREHOUSE: u32 = 89;
    /// District row.
    pub const DISTRICT: u32 = 95;
    /// Customer row.
    pub const CUSTOMER: u32 = 655;
    /// History row.
    pub const HISTORY: u32 = 46;
    /// New-order row.
    pub const NEW_ORDER: u32 = 8;
    /// Order row.
    pub const ORDER: u32 = 24;
    /// Order-line row.
    pub const ORDER_LINE: u32 = 54;
    /// Item row.
    pub const ITEM: u32 = 82;
    /// Stock row.
    pub const STOCK: u32 = 306;
}

/// Size in bytes of a tuple of `table`.
pub fn tuple_size(table: TableId) -> u32 {
    match table {
        WAREHOUSE => tuple_bytes::WAREHOUSE,
        DISTRICT => tuple_bytes::DISTRICT,
        CUSTOMER => tuple_bytes::CUSTOMER,
        HISTORY => tuple_bytes::HISTORY,
        NEW_ORDER => tuple_bytes::NEW_ORDER,
        ORDER => tuple_bytes::ORDER,
        ORDER_LINE => tuple_bytes::ORDER_LINE,
        ITEM => tuple_bytes::ITEM,
        STOCK => tuple_bytes::STOCK,
        CUSTOMER_NAME_IDX => 64,
        _ => 64,
    }
}

/// 1-based warehouse row.
pub fn warehouse_row(w: u64) -> TupleId {
    TupleId::new(WAREHOUSE, w)
}

/// District row for warehouse `w` (1-based) and district `d` in `1..=10`.
pub fn district_row(w: u64, d: u64) -> TupleId {
    TupleId::new(DISTRICT, (w - 1) * DISTRICTS_PER_WAREHOUSE + d)
}

/// Dense 0-based district index.
pub fn district_index(w: u64, d: u64) -> u64 {
    (w - 1) * DISTRICTS_PER_WAREHOUSE + (d - 1)
}

/// Customer row.
pub fn customer_row(w: u64, d: u64, c: u64) -> TupleId {
    TupleId::new(CUSTOMER, district_index(w, d) * CUSTOMERS_PER_DISTRICT + c)
}

/// Stock row for warehouse `w`, item `i`.
pub fn stock_row(w: u64, i: u64) -> TupleId {
    TupleId::new(STOCK, (w - 1) * STOCK_PER_WAREHOUSE + i)
}

/// Item row.
pub fn item_row(i: u64) -> TupleId {
    TupleId::new(ITEM, i)
}

/// Order row: district index in the high bits, order number (mod 2^24) low.
pub fn order_row(dist_idx: u64, o_id: u64) -> TupleId {
    TupleId::new(ORDER, ((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF))
}

/// New-order row (mirrors the order row in the NEW_ORDER table).
pub fn new_order_row(dist_idx: u64, o_id: u64) -> TupleId {
    TupleId::new(NEW_ORDER, ((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF))
}

/// Order-line row `l` (1-based) of an order.
pub fn order_line_row(dist_idx: u64, o_id: u64, l: u64) -> TupleId {
    TupleId::new(ORDER_LINE, ((((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF)) << 4) | l)
}

/// History row from a global append counter.
pub fn history_row(counter: u64) -> TupleId {
    TupleId::new(HISTORY, counter + 1)
}

/// Last-name index block for district `dist_idx`, name id `name`.
pub fn name_index_row(dist_idx: u64, name: u64) -> TupleId {
    TupleId::new(CUSTOMER_NAME_IDX, dist_idx * LAST_NAMES + name + 1)
}

/// Warehouses needed for `clients` emulated clients (10 clients per
/// warehouse, as the paper configures the database size "according to the
/// number of clients as each warehouse supports 10 emulated clients").
pub fn warehouses_for_clients(clients: usize) -> u64 {
    (clients.div_ceil(CLIENTS_PER_WAREHOUSE)).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ids_are_unique_across_tables() {
        let ids = [
            warehouse_row(1),
            district_row(1, 1),
            customer_row(1, 1, 1),
            stock_row(1, 1),
            item_row(1),
            order_row(0, 1),
            new_order_row(0, 1),
            order_line_row(0, 1, 1),
            history_row(0),
            name_index_row(0, 0),
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn district_rows_distinct_per_warehouse() {
        assert_ne!(district_row(1, 10), district_row(2, 1));
        assert_eq!(district_row(2, 1).row(), 11);
    }

    #[test]
    fn customer_rows_cover_districts() {
        let a = customer_row(1, 1, CUSTOMERS_PER_DISTRICT);
        let b = customer_row(1, 2, 1);
        assert!(a.row() < b.row());
    }

    #[test]
    fn order_line_rows_nest_within_orders() {
        let o1l1 = order_line_row(0, 1, 1);
        let o1l15 = order_line_row(0, 1, 15);
        let o2l1 = order_line_row(0, 2, 1);
        assert!(o1l1.row() < o1l15.row());
        assert!(o1l15.row() < o2l1.row());
    }

    #[test]
    fn warehouse_scaling_matches_paper() {
        assert_eq!(warehouses_for_clients(2000), 200);
        assert_eq!(warehouses_for_clients(15), 2);
        assert_eq!(warehouses_for_clients(1), 1);
        assert_eq!(warehouses_for_clients(0), 1);
    }

    #[test]
    fn tuple_sizes_span_papers_range() {
        assert_eq!(tuple_size(NEW_ORDER), 8);
        assert_eq!(tuple_size(CUSTOMER), 655);
    }
}

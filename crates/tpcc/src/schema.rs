//! TPC-C schema: table identifiers, cardinalities, tuple sizes and row-id
//! layout.
//!
//! The database is *virtual*: only identifiers and sizes exist (the paper's
//! prototype likewise manipulates 64-bit tuple identifiers and uses tuple
//! sizes for storage accounting and message padding, §3.3). Row numbers are
//! packed into the 48-bit row field of [`TupleId`].

use dbsm_cert::{TableId, TupleId};

/// Warehouse table.
pub const WAREHOUSE: TableId = TableId(1);
/// District table (10 per warehouse).
pub const DISTRICT: TableId = TableId(2);
/// Customer table (3 000 per district).
pub const CUSTOMER: TableId = TableId(3);
/// History table (append-only).
pub const HISTORY: TableId = TableId(4);
/// New-order table.
pub const NEW_ORDER: TableId = TableId(5);
/// Order table.
pub const ORDER: TableId = TableId(6);
/// Order-line table.
pub const ORDER_LINE: TableId = TableId(7);
/// Item table (100 000 rows, fixed).
pub const ITEM: TableId = TableId(8);
/// Stock table (100 000 per warehouse).
pub const STOCK: TableId = TableId(9);
/// Customer last-name index blocks (by-name lookups read these).
pub const CUSTOMER_NAME_IDX: TableId = TableId(10);

/// Districts per warehouse (TPC-C §1.2).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
/// Customers per district.
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
/// Items in the catalogue.
pub const ITEMS: u64 = 100_000;
/// Stock rows per warehouse.
pub const STOCK_PER_WAREHOUSE: u64 = 100_000;
/// Emulated clients (terminals) per warehouse (TPC-C §4.2: 10).
pub const CLIENTS_PER_WAREHOUSE: usize = 10;
/// Distinct last names addressable by NURand(255).
pub const LAST_NAMES: u64 = 1_000;

/// Approximate row sizes in bytes (TPC-C §1.3 storage clause; the paper
/// quotes "each ranging from 8 to 655 bytes").
pub mod tuple_bytes {
    /// Warehouse row.
    pub const WAREHOUSE: u32 = 89;
    /// District row.
    pub const DISTRICT: u32 = 95;
    /// Customer row.
    pub const CUSTOMER: u32 = 655;
    /// History row.
    pub const HISTORY: u32 = 46;
    /// New-order row.
    pub const NEW_ORDER: u32 = 8;
    /// Order row.
    pub const ORDER: u32 = 24;
    /// Order-line row.
    pub const ORDER_LINE: u32 = 54;
    /// Item row.
    pub const ITEM: u32 = 82;
    /// Stock row.
    pub const STOCK: u32 = 306;
}

/// Size in bytes of a tuple of `table`.
pub fn tuple_size(table: TableId) -> u32 {
    match table {
        WAREHOUSE => tuple_bytes::WAREHOUSE,
        DISTRICT => tuple_bytes::DISTRICT,
        CUSTOMER => tuple_bytes::CUSTOMER,
        HISTORY => tuple_bytes::HISTORY,
        NEW_ORDER => tuple_bytes::NEW_ORDER,
        ORDER => tuple_bytes::ORDER,
        ORDER_LINE => tuple_bytes::ORDER_LINE,
        ITEM => tuple_bytes::ITEM,
        STOCK => tuple_bytes::STOCK,
        CUSTOMER_NAME_IDX => 64,
        _ => 64,
    }
}

/// 1-based warehouse row.
pub fn warehouse_row(w: u64) -> TupleId {
    TupleId::new(WAREHOUSE, w)
}

/// District row for warehouse `w` (1-based) and district `d` in `1..=10`.
pub fn district_row(w: u64, d: u64) -> TupleId {
    TupleId::new(DISTRICT, (w - 1) * DISTRICTS_PER_WAREHOUSE + d)
}

/// Dense 0-based district index.
pub fn district_index(w: u64, d: u64) -> u64 {
    (w - 1) * DISTRICTS_PER_WAREHOUSE + (d - 1)
}

/// Customer row.
pub fn customer_row(w: u64, d: u64, c: u64) -> TupleId {
    TupleId::new(CUSTOMER, district_index(w, d) * CUSTOMERS_PER_DISTRICT + c)
}

/// Stock row for warehouse `w`, item `i`.
pub fn stock_row(w: u64, i: u64) -> TupleId {
    TupleId::new(STOCK, (w - 1) * STOCK_PER_WAREHOUSE + i)
}

/// Item row.
pub fn item_row(i: u64) -> TupleId {
    TupleId::new(ITEM, i)
}

/// Order row: district index in the high bits, order number (mod 2^24) low.
pub fn order_row(dist_idx: u64, o_id: u64) -> TupleId {
    TupleId::new(ORDER, ((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF))
}

/// New-order row (mirrors the order row in the NEW_ORDER table).
pub fn new_order_row(dist_idx: u64, o_id: u64) -> TupleId {
    TupleId::new(NEW_ORDER, ((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF))
}

/// Order-line row `l` (1-based) of an order.
pub fn order_line_row(dist_idx: u64, o_id: u64, l: u64) -> TupleId {
    TupleId::new(ORDER_LINE, ((((dist_idx + 1) << 24) | (o_id & 0xFF_FFFF)) << 4) | l)
}

/// History row from a global append counter.
pub fn history_row(counter: u64) -> TupleId {
    TupleId::new(HISTORY, counter + 1)
}

/// Last-name index block for district `dist_idx`, name id `name`.
pub fn name_index_row(dist_idx: u64, name: u64) -> TupleId {
    TupleId::new(CUSTOMER_NAME_IDX, dist_idx * LAST_NAMES + name + 1)
}

/// Warehouses needed for `clients` emulated clients (10 clients per
/// warehouse, as the paper configures the database size "according to the
/// number of clients as each warehouse supports 10 emulated clients").
pub fn warehouses_for_clients(clients: usize) -> u64 {
    (clients.div_ceil(CLIENTS_PER_WAREHOUSE)).max(1) as u64
}

/// The 1-based home warehouse of a row-level tuple, inverted from the row
/// layouts above, or `None` for tuples with no home warehouse: the shared
/// item catalogue, the global-counter history table, table-level entries
/// and unknown tables.
///
/// This is the locality axis of TPC-C — a transaction's accesses cluster
/// around its terminal's warehouse — and therefore the natural partition
/// key for sharded certification.
///
/// # Examples
///
/// ```
/// use dbsm_tpcc::schema::{home_warehouse, item_row, stock_row};
///
/// assert_eq!(home_warehouse(stock_row(7, 123)), Some(7));
/// assert_eq!(home_warehouse(item_row(123)), None);
/// ```
pub fn home_warehouse(id: TupleId) -> Option<u64> {
    if id.is_table_level() {
        return None;
    }
    let row = id.row();
    let from_district_index = |dist_idx: u64| dist_idx / DISTRICTS_PER_WAREHOUSE + 1;
    match id.table() {
        WAREHOUSE => Some(row),
        DISTRICT => Some((row - 1) / DISTRICTS_PER_WAREHOUSE + 1),
        CUSTOMER => Some(from_district_index((row - 1) / CUSTOMERS_PER_DISTRICT)),
        STOCK => Some((row - 1) / STOCK_PER_WAREHOUSE + 1),
        ORDER | NEW_ORDER => Some(from_district_index((row >> 24) - 1)),
        ORDER_LINE => Some(from_district_index((row >> 28) - 1)),
        CUSTOMER_NAME_IDX => Some(from_district_index((row - 1) / LAST_NAMES)),
        _ => None, // ITEM, HISTORY and anything unknown have no home.
    }
}

/// The home-warehouse shard key for [`dbsm_cert::ShardedCertifier`]: the
/// 0-based home warehouse, or `None` (spill shard) for tuples without one.
/// Matches the `ShardKeyFn` signature, so it plugs straight into
/// `ShardedCertifier::with_key`.
///
/// Sharding purely by warehouse maximizes *cross-request* independence
/// (different terminals' transactions probe disjoint shards) but leaves
/// each request serial — all its tuples share its home warehouse. See
/// [`table_warehouse_shard_key`] for the key that also splits one request's
/// work.
pub fn home_warehouse_shard_key(id: TupleId) -> Option<u64> {
    home_warehouse(id).map(|w| w - 1)
}

/// Row stripes per `(table, warehouse)` pair for the bulk tables: a single
/// TPC-C request reads 5–15 stock rows (and order-status/delivery walk an
/// order's lines), and without striping that whole run would serialize in
/// one shard and bound the certification critical path no matter how many
/// shards exist. Eight stripes cap the per-request run at ~2 rows per
/// shard once the shard count catches up.
pub const SHARD_STRIPES: u64 = 8;

/// The `(table, warehouse)` shard key for [`dbsm_cert::ShardedCertifier`]:
/// both identifiers folded through a SplitMix64 finalizer so the modulo-N
/// shard assignment spreads along *both* axes — different warehouses land
/// in different shards (cross-request parallelism) *and* one request's
/// different tables land in different shards (intra-request parallelism,
/// the thing the critical-path price rewards).
///
/// The bulk tables a single request probes in runs — stock, order-lines,
/// and the shared item catalogue — are additionally striped by
/// [`SHARD_STRIPES`] row blocks within their `(table, warehouse)` pair, so
/// the run itself parallelizes. Item rows have no home warehouse but a
/// perfectly partitionable identifier, so they key as warehouse 0 rather
/// than spilling. Only tuples with no usable key at all — the append-only
/// history table (written, never read) and unknown tables — spill.
pub fn table_warehouse_shard_key(id: TupleId) -> Option<u64> {
    let stripe =
        |w: u64| mix64((w << 20) | (u64::from(id.table().0) << 4) | (id.row() % SHARD_STRIPES));
    match id.table() {
        ITEM if !id.is_table_level() => Some(stripe(0)),
        STOCK | ORDER_LINE => home_warehouse(id).map(stripe),
        _ => home_warehouse(id).map(|w| mix64((w << 20) | (u64::from(id.table().0) << 4))),
    }
}

/// SplitMix64 finalizer: avalanches the structured (table, warehouse) pair
/// so `key % shards` is uniform for any shard count, including powers of
/// two that would otherwise see only the low (table) bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ids_are_unique_across_tables() {
        let ids = [
            warehouse_row(1),
            district_row(1, 1),
            customer_row(1, 1, 1),
            stock_row(1, 1),
            item_row(1),
            order_row(0, 1),
            new_order_row(0, 1),
            order_line_row(0, 1, 1),
            history_row(0),
            name_index_row(0, 0),
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn district_rows_distinct_per_warehouse() {
        assert_ne!(district_row(1, 10), district_row(2, 1));
        assert_eq!(district_row(2, 1).row(), 11);
    }

    #[test]
    fn customer_rows_cover_districts() {
        let a = customer_row(1, 1, CUSTOMERS_PER_DISTRICT);
        let b = customer_row(1, 2, 1);
        assert!(a.row() < b.row());
    }

    #[test]
    fn order_line_rows_nest_within_orders() {
        let o1l1 = order_line_row(0, 1, 1);
        let o1l15 = order_line_row(0, 1, 15);
        let o2l1 = order_line_row(0, 2, 1);
        assert!(o1l1.row() < o1l15.row());
        assert!(o1l15.row() < o2l1.row());
    }

    #[test]
    fn warehouse_scaling_matches_paper() {
        assert_eq!(warehouses_for_clients(2000), 200);
        assert_eq!(warehouses_for_clients(15), 2);
        assert_eq!(warehouses_for_clients(1), 1);
        assert_eq!(warehouses_for_clients(0), 1);
    }

    #[test]
    fn tuple_sizes_span_papers_range() {
        assert_eq!(tuple_size(NEW_ORDER), 8);
        assert_eq!(tuple_size(CUSTOMER), 655);
    }

    #[test]
    fn home_warehouse_inverts_every_row_layout() {
        for w in [1u64, 2, 7, 200] {
            assert_eq!(home_warehouse(warehouse_row(w)), Some(w), "warehouse");
            for d in [1u64, 10] {
                assert_eq!(home_warehouse(district_row(w, d)), Some(w), "district {w}/{d}");
                let dist_idx = district_index(w, d);
                assert_eq!(
                    home_warehouse(customer_row(w, d, CUSTOMERS_PER_DISTRICT)),
                    Some(w),
                    "customer"
                );
                assert_eq!(home_warehouse(order_row(dist_idx, 1)), Some(w), "order");
                assert_eq!(home_warehouse(new_order_row(dist_idx, 99)), Some(w), "new-order");
                assert_eq!(home_warehouse(order_line_row(dist_idx, 5, 15)), Some(w), "order-line");
                assert_eq!(home_warehouse(name_index_row(dist_idx, 999)), Some(w), "name idx");
            }
            assert_eq!(home_warehouse(stock_row(w, STOCK_PER_WAREHOUSE)), Some(w), "stock");
        }
    }

    #[test]
    fn global_tables_and_wildcards_have_no_home_warehouse() {
        assert_eq!(home_warehouse(item_row(50_000)), None, "items are shared");
        assert_eq!(home_warehouse(history_row(123)), None, "history is a global counter");
        assert_eq!(home_warehouse(TupleId::table_level(STOCK)), None, "wildcards have no home");
        assert_eq!(home_warehouse(TupleId::new(TableId(99), 1)), None, "unknown table");
        // The 0-based key matches ShardedCertifier's ShardKeyFn contract.
        assert_eq!(home_warehouse_shard_key(warehouse_row(1)), Some(0));
        assert_eq!(home_warehouse_shard_key(stock_row(8, 3)), Some(7));
        assert_eq!(home_warehouse_shard_key(item_row(1)), None);
    }

    #[test]
    fn table_warehouse_key_separates_both_axes() {
        // Same warehouse, different tables: distinct keys (intra-request
        // spreading); same table, different warehouses: distinct keys
        // (cross-request spreading); same (table, warehouse, stripe): one
        // key.
        assert_ne!(
            table_warehouse_shard_key(warehouse_row(3)),
            table_warehouse_shard_key(district_row(3, 1))
        );
        assert_ne!(
            table_warehouse_shard_key(stock_row(3, 9)),
            table_warehouse_shard_key(stock_row(4, 9))
        );
        // Rows 9 and 9 + 8·1000 share a stripe; 9 and 10 do not.
        assert_eq!(
            table_warehouse_shard_key(stock_row(3, 9)),
            table_warehouse_shard_key(stock_row(3, 9 + SHARD_STRIPES * 1000))
        );
        assert_ne!(
            table_warehouse_shard_key(stock_row(3, 9)),
            table_warehouse_shard_key(stock_row(3, 10)),
            "bulk tables stripe by row block"
        );
        // Unstriped tables key purely by (table, warehouse).
        assert_eq!(
            table_warehouse_shard_key(customer_row(3, 1, 1)),
            table_warehouse_shard_key(customer_row(3, 9, 2999))
        );
        assert!(table_warehouse_shard_key(item_row(1)).is_some(), "items key by row stripe");
        assert_eq!(table_warehouse_shard_key(history_row(9)), None, "history spills");
        // A request's stock run spreads over the stripes.
        let stripes: std::collections::BTreeSet<u64> = (1u64..=15)
            .map(|i| table_warehouse_shard_key(stock_row(3, i)).expect("homed") % 8)
            .collect();
        assert!(stripes.len() >= 4, "15 stock rows spread over 8 shards: {stripes:?}");
        // The mixed keys spread across a power-of-two shard count (raw
        // shifted keys would collapse onto the low bits).
        let shards: std::collections::BTreeSet<u64> = (1u64..=16)
            .map(|w| table_warehouse_shard_key(district_row(w, 1)).expect("homed") % 8)
            .collect();
        assert!(shards.len() >= 4, "16 warehouses spread over 8 shards: {shards:?}");
    }
}

//! Transaction classes. Bimodal classes are split into homogeneous long and
//! short variants exactly as the paper does ("as analysis of results is
//! simplified if each transaction class is homogeneous, we split each of
//! these in two different classes", §4.1).

/// A TPC-C transaction class as reported in the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnClass {
    /// Delivery — CPU-bound batch over all ten districts.
    Delivery,
    /// New-order — the order-entry backbone of the mix.
    NewOrder,
    /// Payment, by customer last name (the conditional "long" path).
    PaymentLong,
    /// Payment, by customer id (the "short" path).
    PaymentShort,
    /// Order-status, by customer last name.
    OrderStatusLong,
    /// Order-status, by customer id.
    OrderStatusShort,
    /// Stock-level — read-only, relaxed isolation per TPC-C §3.3.2.
    StockLevel,
}

impl TxnClass {
    /// Every class, in the paper's table order.
    pub const ALL: [TxnClass; 7] = [
        TxnClass::Delivery,
        TxnClass::NewOrder,
        TxnClass::PaymentLong,
        TxnClass::PaymentShort,
        TxnClass::OrderStatusLong,
        TxnClass::OrderStatusShort,
        TxnClass::StockLevel,
    ];

    /// Dense index (stable across runs; used as `TransactionSpec::class`).
    pub fn index(self) -> u8 {
        match self {
            TxnClass::Delivery => 0,
            TxnClass::NewOrder => 1,
            TxnClass::PaymentLong => 2,
            TxnClass::PaymentShort => 3,
            TxnClass::OrderStatusLong => 4,
            TxnClass::OrderStatusShort => 5,
            TxnClass::StockLevel => 6,
        }
    }

    /// Reverse of [`index`](TxnClass::index).
    pub fn from_index(i: u8) -> Option<TxnClass> {
        TxnClass::ALL.get(i as usize).copied()
    }

    /// The paper's row label.
    pub fn name(self) -> &'static str {
        match self {
            TxnClass::Delivery => "delivery",
            TxnClass::NewOrder => "neworder",
            TxnClass::PaymentLong => "payment (long)",
            TxnClass::PaymentShort => "payment (short)",
            TxnClass::OrderStatusLong => "orderstatus (long)",
            TxnClass::OrderStatusShort => "orderstatus (short)",
            TxnClass::StockLevel => "stocklevel",
        }
    }

    /// True for the read-only classes.
    pub fn read_only(self) -> bool {
        matches!(
            self,
            TxnClass::OrderStatusLong | TxnClass::OrderStatusShort | TxnClass::StockLevel
        )
    }
}

impl std::fmt::Display for TxnClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for c in TxnClass::ALL {
            assert_eq!(TxnClass::from_index(c.index()), Some(c));
        }
        assert_eq!(TxnClass::from_index(7), None);
    }

    #[test]
    fn read_only_classification() {
        assert!(TxnClass::StockLevel.read_only());
        assert!(TxnClass::OrderStatusLong.read_only());
        assert!(!TxnClass::NewOrder.read_only());
        assert!(!TxnClass::PaymentShort.read_only());
        assert!(!TxnClass::Delivery.read_only());
    }
}

//! Per-class CPU-time distributions.
//!
//! The paper obtains these by profiling PostgreSQL with virtualized cycle
//! counters and fitting empirical distributions per transaction class
//! (§4.1), splitting classes with conditional code paths (payment,
//! orderstatus) into homogeneous long/short variants. We substitute
//! parameterized truncated-normal distributions whose means are calibrated
//! so that a single 1 GHz CPU saturates near the paper's ≈500-client /
//! ≈3000 tpm operating point, and that preserve the reported structure:
//! commit CPU is a near-constant < 2 ms included in every class, and
//! delivery is the CPU-bound outlier.

use crate::class::TxnClass;
use rand::Rng;
use rand_distr_lite::Normal;
use std::time::Duration;

/// Minimal normal sampler (Box–Muller) to avoid an extra dependency.
mod rand_distr_lite {
    use rand::Rng;

    /// Normal distribution sampler.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        mean: f64,
        sd: f64,
    }

    impl Normal {
        /// Creates a sampler with the given mean and standard deviation.
        pub fn new(mean: f64, sd: f64) -> Self {
            Normal { mean, sd }
        }

        /// Draws one sample.
        pub fn sample(&self, rng: &mut impl Rng) -> f64 {
            // Box–Muller transform.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.sd * z
        }
    }
}

/// CPU-time model for one transaction class: truncated normal, plus the
/// near-constant commit cost.
#[derive(Debug, Clone, Copy)]
pub struct ClassProfile {
    /// Mean of the processing time in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation in milliseconds.
    pub sd_ms: f64,
    /// Lower truncation in milliseconds.
    pub min_ms: f64,
    /// Commit-path CPU (paper: "less than 2ms", ≈ constant for all classes).
    pub commit_ms: f64,
}

impl ClassProfile {
    /// Draws a total CPU time (processing + commit).
    pub fn sample(&self, rng: &mut impl Rng) -> Duration {
        let v = Normal::new(self.mean_ms, self.sd_ms).sample(rng).max(self.min_ms);
        Duration::from_secs_f64((v + self.commit_ms) / 1e3)
    }
}

/// The calibrated per-class profiles.
///
/// The workload-weighted mean is ≈16.5 ms of CPU per transaction, so one
/// simulated 1 GHz CPU sustains ≈3 600 tpm — saturating, with think times,
/// near 500 clients as in Fig. 5/6 of the paper.
pub fn profile(class: TxnClass) -> ClassProfile {
    let commit_ms = 1.8;
    match class {
        TxnClass::NewOrder => ClassProfile { mean_ms: 16.0, sd_ms: 4.0, min_ms: 6.0, commit_ms },
        TxnClass::PaymentLong => ClassProfile { mean_ms: 11.0, sd_ms: 2.5, min_ms: 5.0, commit_ms },
        TxnClass::PaymentShort => ClassProfile { mean_ms: 7.5, sd_ms: 1.5, min_ms: 3.5, commit_ms },
        TxnClass::OrderStatusLong => {
            ClassProfile { mean_ms: 8.0, sd_ms: 2.0, min_ms: 3.0, commit_ms }
        }
        TxnClass::OrderStatusShort => {
            ClassProfile { mean_ms: 5.0, sd_ms: 1.0, min_ms: 2.0, commit_ms }
        }
        TxnClass::Delivery => ClassProfile { mean_ms: 55.0, sd_ms: 10.0, min_ms: 25.0, commit_ms },
        TxnClass::StockLevel => ClassProfile { mean_ms: 32.0, sd_ms: 8.0, min_ms: 12.0, commit_ms },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_truncation() {
        let mut rng = SmallRng::seed_from_u64(3);
        for class in TxnClass::ALL {
            let p = profile(class);
            for _ in 0..2000 {
                let d = p.sample(&mut rng);
                assert!(
                    d >= Duration::from_secs_f64((p.min_ms + p.commit_ms) / 1e3),
                    "{class:?}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn sample_means_track_configuration() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = profile(TxnClass::NewOrder);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample(&mut rng).as_secs_f64() * 1e3).sum();
        let mean = total / f64::from(n);
        let expect = p.mean_ms + p.commit_ms;
        assert!((mean - expect).abs() < 0.5, "mean {mean} vs {expect}");
    }

    #[test]
    fn delivery_is_the_cpu_bound_outlier() {
        let d = profile(TxnClass::Delivery).mean_ms;
        for class in TxnClass::ALL {
            if class != TxnClass::Delivery {
                assert!(profile(class).mean_ms < d);
            }
        }
    }

    #[test]
    fn long_variants_cost_more_than_short() {
        assert!(profile(TxnClass::PaymentLong).mean_ms > profile(TxnClass::PaymentShort).mean_ms);
        assert!(
            profile(TxnClass::OrderStatusLong).mean_ms
                > profile(TxnClass::OrderStatusShort).mean_ms
        );
    }
}

//! # dbsm-tpcc — the TPC-C traffic generator (§3.2)
//!
//! Produces realistic OLTP load for the replicated-database model: the
//! TPC-C transaction mix (new order and payment at 44 % each), non-uniform
//! key selection (NURand), per-class access sets over a *virtual* database
//! sized at one warehouse per ten clients, per-class CPU-time distributions
//! calibrated to the paper's PostgreSQL profile (§4.1), and exponential
//! think times. Bimodal classes are split into homogeneous long/short
//! variants exactly as in the paper's Tables 1 and 2.
//!
//! # Examples
//!
//! ```
//! use dbsm_tpcc::{TpccConfig, TpccGen, TxnClass};
//!
//! let mut gen = TpccGen::new(TpccConfig::new(20));
//! assert_eq!(gen.warehouses(), 2);
//! let req = gen.next_request(0);
//! assert!(TxnClass::ALL.contains(&req.class));
//! assert!(req.spec.cpu > std::time::Duration::ZERO);
//! ```

#![warn(missing_docs)]

mod class;
mod gen;
mod nurand;
mod profile;
pub mod schema;

pub use class::TxnClass;
pub use gen::{ClientRequest, Mix, TpccConfig, TpccGen};
pub use nurand::{customer_id, item_id, last_name_id, last_name_string, nurand, NurandC};
pub use profile::{profile, ClassProfile};

//! TPC-C non-uniform random distribution (spec §2.1.6) and last-name
//! generation — the skew that drives customer hot-spots.

use rand::Rng;

/// The C constants of NURand; fixed per run (spec allows any constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NurandC {
    /// C for customer-id selection (A = 1023).
    pub c_cid: u64,
    /// C for last-name selection (A = 255).
    pub c_lastname: u64,
    /// C for item selection (A = 8191).
    pub c_item: u64,
}

impl NurandC {
    /// Derives the run constants from an RNG.
    pub fn generate(rng: &mut impl Rng) -> Self {
        NurandC {
            c_cid: rng.gen_range(0..=1023),
            c_lastname: rng.gen_range(0..=255),
            c_item: rng.gen_range(0..=8191),
        }
    }
}

/// NURand(A, x, y) per TPC-C §2.1.6:
/// `((random(0, A) | random(x, y)) + C) % (y - x + 1) + x`.
pub fn nurand(rng: &mut impl Rng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Non-uniform customer id in `1..=3000`.
pub fn customer_id(rng: &mut impl Rng, c: &NurandC) -> u64 {
    nurand(rng, 1023, c.c_cid, 1, 3000)
}

/// Non-uniform item id in `1..=100000`.
pub fn item_id(rng: &mut impl Rng, c: &NurandC) -> u64 {
    nurand(rng, 8191, c.c_item, 1, 100_000)
}

/// Non-uniform last-name id in `0..=999` (spec: NURand(255, 0, 999)).
pub fn last_name_id(rng: &mut impl Rng, c: &NurandC) -> u64 {
    nurand(rng, 255, c.c_lastname, 0, 999)
}

/// The spec's syllable table, for rendering last names in logs/examples.
const SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Renders a last-name id as the spec's three-syllable string.
pub fn last_name_string(id: u64) -> String {
    assert!(id < 1000, "last name id out of range: {id}");
    format!(
        "{}{}{}",
        SYLLABLES[(id / 100) as usize],
        SYLLABLES[((id / 10) % 10) as usize],
        SYLLABLES[(id % 10) as usize]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c = NurandC::generate(&mut rng);
        for _ in 0..10_000 {
            let v = customer_id(&mut rng, &c);
            assert!((1..=3000).contains(&v));
            let i = item_id(&mut rng, &c);
            assert!((1..=100_000).contains(&i));
            let n = last_name_id(&mut rng, &c);
            assert!(n < 1000);
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // The OR of two uniforms concentrates mass on high-bit patterns:
        // the most popular value should be far above the uniform share.
        let mut rng = SmallRng::seed_from_u64(2);
        let c = NurandC { c_cid: 0, c_lastname: 0, c_item: 0 };
        let mut counts = vec![0u32; 1000];
        let n = 200_000;
        for _ in 0..n {
            counts[last_name_id(&mut rng, &c) as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let uniform = n / 1000;
        assert!(max > uniform * 3, "max {max} vs uniform {uniform}");
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name_string(0), "BARBARBAR");
        assert_eq!(last_name_string(371), "PRICALLYOUGHT");
        assert_eq!(last_name_string(999), "EINGEINGEING");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn last_name_rejects_large_ids() {
        let _ = last_name_string(1000);
    }
}

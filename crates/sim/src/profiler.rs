//! Profiling modes for timing *real code* under the centralized simulation
//! runtime (paper §2.2–2.3).
//!
//! The paper measures real protocol code with virtualized CPU cycle counters
//! (Linux `perfctr`) and brings the elapsed time Δ into the simulation
//! time-line. We provide that mechanism ([`ProfilerMode::WallClock`], using
//! [`std::time::Instant`]) plus a deterministic alternative
//! ([`ProfilerMode::Synthetic`]) in which real code declares its cost
//! explicitly via [`RealContext::charge`](crate::RealContext::charge).
//! Experiments default to synthetic mode so runs are bit-reproducible;
//! wall-clock mode exercises the identical clock-stop machinery.

/// How the duration of real-code jobs is obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfilerMode {
    /// Deterministic: the job's duration is exactly the sum of explicit
    /// [`charge`](crate::RealContext::charge) calls, divided by `speed`
    /// (a speed of 2.0 simulates a CPU twice as fast as the cost model's
    /// reference processor).
    Synthetic {
        /// Relative CPU speed; must be > 0.
        speed: f64,
    },
    /// Measured: the job's duration is the wall-clock time spent inside the
    /// job thunk, excluding time spent re-entered into the simulation runtime
    /// (the paper's "stop the real-time clock" rule), multiplied by `scale`.
    ///
    /// `scale` plays the paper's processor-speed-scaling role: a scale of 0.5
    /// simulates a processor twice as fast as the host.
    WallClock {
        /// Factor applied to measured durations; must be > 0.
        scale: f64,
    },
}

impl ProfilerMode {
    /// Synthetic mode at reference speed 1.0 — the default for experiments.
    pub fn synthetic() -> Self {
        ProfilerMode::Synthetic { speed: 1.0 }
    }

    /// Wall-clock mode at host speed.
    pub fn wall_clock() -> Self {
        ProfilerMode::WallClock { scale: 1.0 }
    }

    /// True if durations are measured with the host clock.
    pub fn is_wall_clock(&self) -> bool {
        matches!(self, ProfilerMode::WallClock { .. })
    }
}

impl Default for ProfilerMode {
    fn default() -> Self {
        ProfilerMode::synthetic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_synthetic() {
        assert_eq!(ProfilerMode::default(), ProfilerMode::Synthetic { speed: 1.0 });
        assert!(!ProfilerMode::default().is_wall_clock());
        assert!(ProfilerMode::wall_clock().is_wall_clock());
    }
}

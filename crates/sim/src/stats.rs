//! Small statistics toolkit used by the experiment harness: summary
//! statistics, percentiles, empirical CDFs (Fig. 7), and quantile-quantile
//! pairs (Fig. 4).

/// Running summary statistics (count, mean, variance via Welford, min/max).
///
/// # Examples
///
/// ```
/// use dbsm_sim::stats::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collection of samples supporting percentiles, ECDF and Q-Q extraction.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
    /// statistics; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any sample is NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        self.ensure_sorted();
        if self.values.is_empty() {
            return None;
        }
        let n = self.values.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Convenience percentile in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        self.quantile(p / 100.0)
    }

    /// The empirical CDF evaluated at `points.len()` evenly spaced ranks:
    /// returns `(value, cumulative_fraction)` pairs suitable for plotting
    /// (paper Fig. 7a/7b).
    pub fn ecdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        if self.values.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.values.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (self.values[idx], frac)
            })
            .collect()
    }

    /// Fraction of samples ≤ `x`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.values.is_empty() {
            return 0.0;
        }
        let cnt = self.values.partition_point(|v| *v <= x);
        cnt as f64 / self.values.len() as f64
    }

    /// Q-Q pairs against `other`: matching quantiles of the two sample sets
    /// (paper Fig. 4 plots simulation quantiles against real-system
    /// quantiles; a well-calibrated model hugs the diagonal).
    pub fn qq(&mut self, other: &mut Samples, points: usize) -> Vec<(f64, f64)> {
        if self.is_empty() || other.is_empty() {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let q = if points == 1 { 0.5 } else { i as f64 / (points - 1) as f64 };
                (
                    self.quantile(q).expect("checked non-empty"),
                    other.quantile(q).expect("checked non-empty"),
                )
            })
            .collect()
    }

    /// Read access to the raw values (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Samples { values: iter.into_iter().collect(), sorted: false }
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_pooled() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut pooled = Summary::new();
        for (i, v) in [1.0, 5.0, 2.0, 8.0, 3.0, 9.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            pooled.record(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.mean() - pooled.mean()).abs() < 1e-12);
        assert!((a.variance() - pooled.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s: Samples = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert_eq!(s.quantile(0.5), Some(2.5));
        assert_eq!(s.percentile(25.0), Some(1.75));
    }

    #[test]
    fn ecdf_is_monotone() {
        let mut s: Samples = (1..=100).map(f64::from).collect();
        let e = s.ecdf(10);
        assert_eq!(e.len(), 10);
        for w in e.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(e.last().expect("non-empty"), &(100.0, 1.0));
    }

    #[test]
    fn cdf_at_counts_fraction() {
        let mut s: Samples = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.5);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn qq_of_identical_distributions_is_diagonal() {
        let mut a: Samples = (0..1000).map(f64::from).collect();
        let mut b: Samples = (0..1000).map(f64::from).collect();
        for (x, y) in a.qq(&mut b, 21) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_samples_are_sane() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert!(s.ecdf(5).is_empty());
        assert!(s.qq(&mut Samples::new(), 5).is_empty());
    }
}

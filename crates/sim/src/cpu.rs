//! Simulated CPUs executing both *simulated* jobs (transaction processing,
//! with a declared duration) and *real* jobs (actual protocol code, timed by
//! a profiler) — the centralized simulation runtime of paper §2.2 and Fig. 1.
//!
//! A [`CpuBank`] models the `N` processors of one database site. Jobs wait in
//! a two-level ready queue: real jobs (protocol code) have priority over
//! simulated jobs and *preempt* them, as required by §3.1 ("as real jobs have
//! a higher priority, simulated transaction executing can be preempted").
//!
//! Real jobs receive a [`RealContext`] implementing the Fig. 1(b) rules:
//! events scheduled from real code at relative delay `δq` fire at
//! `start + Δ₁ + δq` where `Δ₁` is the cost accrued so far, and in wall-clock
//! profiling mode the measuring clock is stopped while inside runtime calls
//! so that runtime overhead never leaks into the measured Δ.

use crate::event::EventId;
use crate::profiler::ProfilerMode;
use crate::scheduler::Sim;
use crate::time::{scale_duration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A real-code job: receives the runtime context it must use for any
/// interaction with simulated time (clock reads, scheduling, cost charging).
pub type RealJob = Box<dyn FnOnce(&mut RealContext<'_>)>;

/// Execution context handed to real jobs (the paper's abstraction layer
/// bridge to the simulation runtime, §2.3).
///
/// All simulated-time interaction from real code must go through this
/// context; that is what keeps the two failure modes of Fig. 1(b) impossible:
/// events scheduled in the simulation past, and runtime overhead inflating
/// the measured job duration.
pub struct RealContext<'a> {
    sim: &'a Sim,
    start: SimTime,
    /// Simulated cost accrued so far (Δ₁ in the paper's notation), already
    /// converted to simulated-CPU time.
    charged: Duration,
    mode: ProfilerMode,
    /// Running stopwatch for wall-clock mode; `None` while "stopped".
    stopwatch: Option<Instant>,
}

impl<'a> RealContext<'a> {
    fn new(sim: &'a Sim, mode: ProfilerMode) -> Self {
        RealContext {
            sim,
            start: sim.now(),
            charged: Duration::ZERO,
            mode,
            stopwatch: match mode {
                ProfilerMode::WallClock { .. } => Some(Instant::now()),
                ProfilerMode::Synthetic { .. } => None,
            },
        }
    }

    /// Stops the wall-clock stopwatch, folding elapsed host time into the
    /// charged total (the paper's "stop the real-time clock when re-entering
    /// the simulation runtime").
    fn stop_clock(&mut self) {
        if let ProfilerMode::WallClock { scale } = self.mode {
            if let Some(sw) = self.stopwatch.take() {
                self.charged += scale_duration(sw.elapsed(), scale);
            }
        }
    }

    /// Restarts the stopwatch upon returning to real code.
    fn restart_clock(&mut self) {
        if self.mode.is_wall_clock() {
            self.stopwatch = Some(Instant::now());
        }
    }

    /// The simulated instant as seen from inside the job: start time plus
    /// cost accrued so far.
    pub fn now(&mut self) -> SimTime {
        self.stop_clock();
        let t = self.start + self.charged;
        self.restart_clock();
        t
    }

    /// Declares `cost` of simulated CPU work (synthetic mode). In wall-clock
    /// mode this is a no-op: actual execution time is being measured instead.
    pub fn charge(&mut self, cost: Duration) {
        match self.mode {
            ProfilerMode::Synthetic { speed } => {
                self.charged += scale_duration(cost, 1.0 / speed);
            }
            ProfilerMode::WallClock { .. } => {}
        }
    }

    /// Schedules `action` to fire `delay` after the *current point inside the
    /// job* — i.e. at `start + Δ₁ + delay` (Fig. 1(b): `δ′q = Δ₁ + δq`).
    pub fn schedule(&mut self, delay: Duration, action: impl FnOnce() + 'static) -> EventId {
        self.stop_clock();
        let at = self.start + self.charged + delay;
        let id = self.sim.schedule_at(at, action);
        self.restart_clock();
        id
    }

    /// Cancels an event previously scheduled (from real or simulated code).
    pub fn cancel(&mut self, id: EventId) {
        self.stop_clock();
        self.sim.cancel(id);
        self.restart_clock();
    }

    /// Total cost accrued by the job so far.
    pub fn elapsed(&mut self) -> Duration {
        self.stop_clock();
        let e = self.charged;
        self.restart_clock();
        e
    }

    /// Finalizes the measurement, returning the job's total duration Δ.
    fn finish(mut self) -> Duration {
        self.stop_clock();
        self.charged
    }
}

impl std::fmt::Debug for RealContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealContext")
            .field("start", &self.start)
            .field("charged", &self.charged)
            .finish()
    }
}

struct SimJob {
    remaining: Duration,
    on_complete: Box<dyn FnOnce()>,
}

struct RunningJob {
    real: bool,
    started_at: SimTime,
    finish_at: SimTime,
    completion: EventId,
    /// Present only for simulated jobs, so preemption can recover the
    /// continuation and remaining work.
    sim_job: Option<SimJob>,
}

#[derive(Default)]
struct Slot {
    running: Option<RunningJob>,
}

/// Time-integrated accounting of CPU usage, split by job kind as the paper
/// needs for Fig. 6(a) (total usage) and Fig. 7(c) (usage by real jobs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuUsage {
    /// Total busy time attributed to real (protocol) jobs, summed over CPUs.
    pub busy_real: Duration,
    /// Total busy time attributed to simulated jobs, summed over CPUs.
    pub busy_sim: Duration,
}

impl CpuUsage {
    /// Total busy time over all job kinds.
    pub fn busy_total(&self) -> Duration {
        self.busy_real + self.busy_sim
    }
}

struct Bank {
    n: usize,
    slots: Vec<Slot>,
    ready_real: VecDeque<RealJob>,
    ready_sim: VecDeque<SimJob>,
    mode: ProfilerMode,
    /// Completed-portion accounting (updated when work finishes or is preempted).
    busy_real_ns: u64,
    busy_sim_ns: u64,
    /// Queue-length integral for average-queue-length reporting (§3.1 logs
    /// "usage and length of queues for each resource").
    qlen_last_change: SimTime,
    qlen_integral: u128,
    qlen_peak: usize,
    generation: u64,
}

impl Bank {
    fn queue_len(&self) -> usize {
        self.ready_real.len() + self.ready_sim.len()
    }

    fn note_queue_change(&mut self, now: SimTime, before: usize) {
        let dt = now.saturating_duration_since(self.qlen_last_change);
        self.qlen_integral += dt.as_nanos() * before as u128;
        self.qlen_last_change = now;
        self.qlen_peak = self.qlen_peak.max(self.queue_len());
    }
}

/// A bank of `n` identical simulated CPUs with a shared two-level ready
/// queue (real jobs first), preemption of simulated jobs by real jobs, and
/// per-kind usage accounting.
///
/// # Examples
///
/// ```
/// use dbsm_sim::{Sim, CpuBank, ProfilerMode};
/// use std::time::Duration;
///
/// let sim = Sim::new();
/// let cpu = CpuBank::new(&sim, 2, ProfilerMode::synthetic());
/// cpu.submit_sim(Duration::from_millis(10), || {});
/// cpu.submit_real(Box::new(|ctx| ctx.charge(Duration::from_millis(1))));
/// sim.run();
/// assert_eq!(cpu.usage().busy_real, Duration::from_millis(1));
/// assert_eq!(cpu.usage().busy_sim, Duration::from_millis(10));
/// ```
#[derive(Clone)]
pub struct CpuBank {
    sim: Sim,
    state: Rc<RefCell<Bank>>,
}

impl CpuBank {
    /// Creates a bank of `n` CPUs (`n >= 1`) using the given profiling mode
    /// for real jobs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(sim: &Sim, n: usize, mode: ProfilerMode) -> Self {
        assert!(n >= 1, "a site needs at least one CPU");
        let state = Bank {
            n,
            slots: (0..n).map(|_| Slot::default()).collect(),
            ready_real: VecDeque::new(),
            ready_sim: VecDeque::new(),
            mode,
            busy_real_ns: 0,
            busy_sim_ns: 0,
            qlen_last_change: sim.now(),
            qlen_integral: 0,
            qlen_peak: 0,
            generation: 0,
        };
        CpuBank { sim: sim.clone(), state: Rc::new(RefCell::new(state)) }
    }

    /// Number of CPUs in the bank.
    pub fn n_cpus(&self) -> usize {
        self.state.borrow().n
    }

    /// Submits a real (protocol-code) job. Real jobs run at the next point a
    /// CPU is available, preempting a simulated job if necessary.
    pub fn submit_real(&self, job: RealJob) {
        {
            let mut b = self.state.borrow_mut();
            let before = b.queue_len();
            b.ready_real.push_back(job);
            let now = self.sim.now();
            b.note_queue_change(now, before);
        }
        self.poke();
    }

    /// Submits a simulated job of the given duration; `on_complete` fires
    /// when the job has received `duration` of CPU service (possibly split
    /// across preemptions). The duration is scaled by the configured CPU
    /// speed ("processing operations are scaled according to the configured
    /// CPU speed", paper §3.1).
    pub fn submit_sim(&self, duration: Duration, on_complete: impl FnOnce() + 'static) {
        {
            let mut b = self.state.borrow_mut();
            let speed = match b.mode {
                ProfilerMode::Synthetic { speed } => speed,
                ProfilerMode::WallClock { scale } => 1.0 / scale,
            };
            let remaining = crate::time::scale_duration(duration, 1.0 / speed);
            let before = b.queue_len();
            b.ready_sim.push_back(SimJob { remaining, on_complete: Box::new(on_complete) });
            let now = self.sim.now();
            b.note_queue_change(now, before);
        }
        self.poke();
    }

    /// Cumulative busy-time accounting including the in-progress portion of
    /// currently running jobs.
    pub fn usage(&self) -> CpuUsage {
        let b = self.state.borrow();
        let now = self.sim.now();
        let mut real = b.busy_real_ns;
        let mut sim = b.busy_sim_ns;
        for slot in &b.slots {
            if let Some(r) = &slot.running {
                let served = now.saturating_duration_since(r.started_at).as_nanos() as u64;
                // The in-progress portion never exceeds the scheduled span.
                let span = r.finish_at.saturating_duration_since(r.started_at).as_nanos() as u64;
                let served = served.min(span);
                if r.real {
                    real += served;
                } else {
                    sim += served;
                }
            }
        }
        CpuUsage { busy_real: Duration::from_nanos(real), busy_sim: Duration::from_nanos(sim) }
    }

    /// Average ready-queue length since creation, time-weighted.
    pub fn avg_queue_len(&self) -> f64 {
        let b = self.state.borrow();
        let now = self.sim.now();
        let dt = now.saturating_duration_since(b.qlen_last_change);
        let integral = b.qlen_integral + dt.as_nanos() * b.queue_len() as u128;
        let total = now.as_nanos();
        if total == 0 {
            0.0
        } else {
            integral as f64 / total as f64
        }
    }

    /// Peak ready-queue length observed.
    pub fn peak_queue_len(&self) -> usize {
        self.state.borrow().qlen_peak
    }

    /// Number of CPUs currently idle.
    pub fn idle_cpus(&self) -> usize {
        self.state.borrow().slots.iter().filter(|s| s.running.is_none()).count()
    }

    /// Assigns ready jobs to CPUs: fills idle slots, then preempts simulated
    /// jobs if real jobs are still waiting.
    fn poke(&self) {
        loop {
            // Decide on one action under the borrow, perform it outside.
            enum Step {
                StartReal(usize, RealJob),
                StartSim(usize, SimJob),
                Preempt(usize),
                Done,
            }
            let step = {
                let mut b = self.state.borrow_mut();
                let idle = b.slots.iter().position(|s| s.running.is_none());
                if let Some(i) = idle {
                    if !b.ready_real.is_empty() {
                        let now = self.sim.now();
                        let before = b.queue_len();
                        let j = b.ready_real.pop_front().expect("checked non-empty");
                        b.note_queue_change(now, before);
                        Step::StartReal(i, j)
                    } else if !b.ready_sim.is_empty() {
                        let now = self.sim.now();
                        let before = b.queue_len();
                        let j = b.ready_sim.pop_front().expect("checked non-empty");
                        b.note_queue_change(now, before);
                        Step::StartSim(i, j)
                    } else {
                        Step::Done
                    }
                } else if !b.ready_real.is_empty() {
                    // No idle CPU: preempt a simulated job if one is running.
                    let victim = b
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.running.as_ref().is_some_and(|r| !r.real))
                        .max_by_key(|(i, s)| {
                            (s.running.as_ref().expect("filtered running").finish_at, *i)
                        })
                        .map(|(i, _)| i);
                    match victim {
                        Some(i) => Step::Preempt(i),
                        None => Step::Done,
                    }
                } else {
                    Step::Done
                }
            };
            match step {
                Step::Done => break,
                Step::Preempt(i) => self.preempt(i),
                Step::StartSim(i, job) => self.start_sim(i, job),
                Step::StartReal(i, job) => self.start_real(i, job),
            }
        }
    }

    fn preempt(&self, idx: usize) {
        let mut b = self.state.borrow_mut();
        let now = self.sim.now();
        let slot = &mut b.slots[idx];
        let running = slot.running.take().expect("preempting an idle CPU");
        debug_assert!(!running.real, "real jobs are not preemptible");
        self.sim.cancel(running.completion);
        let mut job = running.sim_job.expect("simulated job carries its continuation");
        let served = now.saturating_duration_since(running.started_at);
        job.remaining = job.remaining.saturating_sub(served);
        b.busy_sim_ns += served.as_nanos() as u64;
        let before = b.queue_len();
        b.ready_sim.push_front(job);
        b.note_queue_change(now, before);
        // poke() loop continues and will start the waiting real job here.
    }

    fn start_sim(&self, idx: usize, job: SimJob) {
        let now = self.sim.now();
        let finish_at = now + job.remaining;
        let this = self.clone();
        let gen = {
            let mut b = self.state.borrow_mut();
            b.generation += 1;
            b.generation
        };
        let completion = self.sim.schedule_at(finish_at, move || this.finish(idx, gen));
        let mut b = self.state.borrow_mut();
        b.slots[idx].running = Some(RunningJob {
            real: false,
            started_at: now,
            finish_at,
            completion,
            sim_job: Some(job),
        });
    }

    fn start_real(&self, idx: usize, job: RealJob) {
        let now = self.sim.now();
        let (mode, gen) = {
            let mut b = self.state.borrow_mut();
            b.generation += 1;
            // Reserve the slot before running the thunk so re-entrant submits
            // from inside the job cannot double-assign this CPU.
            b.slots[idx].running = Some(RunningJob {
                real: true,
                started_at: now,
                finish_at: SimTime::MAX,
                completion: EventId::NONE,
                sim_job: None,
            });
            (b.mode, b.generation)
        };
        let mut ctx = RealContext::new(&self.sim, mode);
        job(&mut ctx);
        let delta = ctx.finish();
        let finish_at = now + delta;
        let this = self.clone();
        let completion = self.sim.schedule_at(finish_at, move || this.finish(idx, gen));
        let mut b = self.state.borrow_mut();
        let r = b.slots[idx].running.as_mut().expect("slot reserved above");
        r.finish_at = finish_at;
        r.completion = completion;
    }

    fn finish(&self, idx: usize, _gen: u64) {
        let (on_complete, served_real, served_sim) = {
            let mut b = self.state.borrow_mut();
            let slot = &mut b.slots[idx];
            let running = slot.running.take().expect("completion fired for idle CPU");
            let served = running.finish_at.saturating_duration_since(running.started_at);
            if running.real {
                (None, served.as_nanos() as u64, 0)
            } else {
                let job = running.sim_job.expect("simulated job carries its continuation");
                (Some(job.on_complete), 0, served.as_nanos() as u64)
            }
        };
        {
            let mut b = self.state.borrow_mut();
            b.busy_real_ns += served_real;
            b.busy_sim_ns += served_sim;
        }
        if let Some(f) = on_complete {
            f();
        }
        self.poke();
    }
}

impl std::fmt::Debug for CpuBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.state.borrow();
        f.debug_struct("CpuBank")
            .field("n", &b.n)
            .field("ready_real", &b.ready_real.len())
            .field("ready_sim", &b.ready_sim.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn single_cpu_serializes_jobs() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let log: Rc<RefCell<Vec<(u32, SimTime)>>> = Rc::default();
        for i in 0..3 {
            let l = log.clone();
            let s = sim.clone();
            cpu.submit_sim(ms(10), move || l.borrow_mut().push((i, s.now())));
        }
        sim.run();
        let got = log.borrow().clone();
        assert_eq!(
            got,
            vec![
                (0, SimTime::from_millis(10)),
                (1, SimTime::from_millis(20)),
                (2, SimTime::from_millis(30)),
            ]
        );
    }

    #[test]
    fn multi_cpu_runs_in_parallel() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 3, ProfilerMode::synthetic());
        let done: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        for _ in 0..3 {
            let d = done.clone();
            let s = sim.clone();
            cpu.submit_sim(ms(10), move || d.borrow_mut().push(s.now()));
        }
        sim.run();
        assert_eq!(*done.borrow(), vec![SimTime::from_millis(10); 3]);
    }

    #[test]
    fn real_job_duration_comes_from_charges() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        cpu.submit_real(Box::new(|ctx| {
            ctx.charge(ms(3));
            ctx.charge(ms(4));
        }));
        sim.run();
        assert_eq!(cpu.usage().busy_real, ms(7));
        assert_eq!(sim.now(), SimTime::from_millis(7));
    }

    #[test]
    fn synthetic_speed_scales_cost() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::Synthetic { speed: 2.0 });
        cpu.submit_real(Box::new(|ctx| ctx.charge(ms(10))));
        sim.run();
        assert_eq!(cpu.usage().busy_real, ms(5));
    }

    #[test]
    fn real_preempts_simulated() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let log: Rc<RefCell<Vec<(&'static str, SimTime)>>> = Rc::default();

        let l = log.clone();
        let s = sim.clone();
        cpu.submit_sim(ms(10), move || l.borrow_mut().push(("sim", s.now())));

        // At t=4ms a real job of 2ms arrives and preempts the simulated job.
        let cpu2 = cpu.clone();
        let l = log.clone();
        let s2 = sim.clone();
        sim.schedule_at(SimTime::from_millis(4), move || {
            let l = l.clone();
            let s2 = s2.clone();
            cpu2.submit_real(Box::new(move |ctx| {
                ctx.charge(ms(2));
                let l = l.clone();
                let s2 = s2.clone();
                ctx.schedule(Duration::ZERO, move || l.borrow_mut().push(("real", s2.now())));
            }));
        });
        sim.run();
        // Real finishes at 6ms; simulated had 6ms remaining -> finishes at 12ms.
        assert_eq!(
            *log.borrow(),
            vec![("real", SimTime::from_millis(6)), ("sim", SimTime::from_millis(12))]
        );
        assert_eq!(cpu.usage(), CpuUsage { busy_real: ms(2), busy_sim: ms(10) });
    }

    #[test]
    fn fig1b_schedule_from_real_code_accounts_elapsed() {
        // Fig. 1(b): an event scheduled from real code after Δ₁ of work with
        // delay δq fires at start + Δ₁ + δq, even when δq < remaining work.
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let fired: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        let f = fired.clone();
        let s = sim.clone();
        cpu.submit_real(Box::new(move |ctx| {
            ctx.charge(ms(5)); // Δ₁
            let f = f.clone();
            let s = s.clone();
            ctx.schedule(ms(1), move || f.borrow_mut().push(s.now())); // δq = 1ms
            ctx.charge(ms(5)); // Δ₂
        }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![SimTime::from_millis(6)]);
        // Total job duration is Δ₁+Δ₂ = 10ms, unaffected by the runtime call.
        assert_eq!(cpu.usage().busy_real, ms(10));
    }

    #[test]
    fn real_code_clock_reads_see_accrued_cost() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let seen: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        let s = seen.clone();
        cpu.submit_real(Box::new(move |ctx| {
            s.borrow_mut().push(ctx.now());
            ctx.charge(ms(2));
            s.borrow_mut().push(ctx.now());
        }));
        sim.run();
        assert_eq!(*seen.borrow(), vec![SimTime::ZERO, SimTime::from_millis(2)]);
    }

    #[test]
    fn real_jobs_queue_behind_each_other() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let log: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        for _ in 0..2 {
            let l = log.clone();
            cpu.submit_real(Box::new(move |ctx| {
                ctx.charge(ms(3));
                let l = l.clone();
                let t = ctx.now();
                ctx.schedule(Duration::ZERO, move || l.borrow_mut().push(t));
            }));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![SimTime::from_millis(3), SimTime::from_millis(6)]);
    }

    #[test]
    fn wall_clock_mode_measures_and_excludes_runtime_reentry() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::wall_clock());
        cpu.submit_real(Box::new(|ctx| {
            // Busy-spin ~2ms of real work.
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(2) {
                std::hint::black_box(0u64);
            }
            // Re-enter the runtime; elapsed must keep counting only real work.
            let _ = ctx.now();
            let e = ctx.elapsed();
            assert!(e >= Duration::from_millis(2), "measured {e:?}");
        }));
        sim.run();
        let measured = cpu.usage().busy_real;
        assert!(measured >= Duration::from_millis(2), "measured {measured:?}");
        // Generous upper bound: the spin is 2ms; runtime re-entry must not
        // add orders of magnitude.
        assert!(measured < Duration::from_millis(200), "measured {measured:?}");
    }

    #[test]
    fn usage_counts_in_progress_work() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        cpu.submit_sim(ms(10), || {});
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(cpu.usage().busy_sim, ms(4));
        sim.run();
        assert_eq!(cpu.usage().busy_sim, ms(10));
    }

    #[test]
    fn queue_stats_track_waiting_jobs() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        for _ in 0..3 {
            cpu.submit_sim(ms(10), || {});
        }
        assert_eq!(cpu.peak_queue_len(), 2); // one runs, two wait
        sim.run();
        assert!(cpu.avg_queue_len() > 0.0);
        assert_eq!(cpu.idle_cpus(), 1);
    }

    #[test]
    fn zero_cost_real_job_completes() {
        let sim = Sim::new();
        let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
        let hit: Rc<RefCell<bool>> = Rc::default();
        let h = hit.clone();
        cpu.submit_real(Box::new(move |ctx| {
            let h = h.clone();
            ctx.schedule(Duration::ZERO, move || *h.borrow_mut() = true);
        }));
        sim.run();
        assert!(*hit.borrow());
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let sim = Sim::new();
        let _ = CpuBank::new(&sim, 0, ProfilerMode::synthetic());
    }
}

//! The discrete-event scheduler — our equivalent of the Scalable Simulation
//! Framework (SSF) kernel the paper builds on (§2.1).
//!
//! [`Sim`] is a cheaply cloneable handle to a single-threaded event queue.
//! Components hold a `Sim` and schedule closures; the run loop pops events in
//! `(time, insertion-order)` order, advances the virtual clock, and executes
//! them. Executing an action never holds a borrow of the queue, so actions
//! are free to schedule (or cancel) further events.

use crate::event::{Action, Entry, EventId};
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::time::Duration;

#[derive(Default)]
struct Inner {
    queue: BinaryHeap<Entry>,
    now: SimTime,
    next_id: u64,
    cancelled: HashSet<EventId>,
    executed: u64,
    /// When set, the run loop stops before executing any event later than this.
    horizon: Option<SimTime>,
    stop_requested: bool,
}

/// Handle to the discrete-event simulation kernel.
///
/// Clones share the same underlying queue and clock.
///
/// # Examples
///
/// ```
/// use dbsm_sim::{Sim, SimTime};
/// use std::time::Duration;
/// use std::rc::Rc;
/// use std::cell::Cell;
///
/// let sim = Sim::new();
/// let hits = Rc::new(Cell::new(0));
/// let h = hits.clone();
/// sim.schedule_in(Duration::from_millis(5), move || h.set(h.get() + 1));
/// sim.run();
/// assert_eq!(hits.get(), 1);
/// assert_eq!(sim.now(), SimTime::from_millis(5));
/// ```
#[derive(Clone, Default)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl Sim {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Sim::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().executed
    }

    /// Number of events currently pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time: scheduling
    /// into the past is precisely the bug class the paper's runtime guards
    /// against (§2.2), so it is rejected loudly rather than silently reordered.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        assert!(
            at >= inner.now,
            "event scheduled in the simulation past: at={at} now={}",
            inner.now
        );
        let id = EventId(inner.next_id);
        inner.next_id += 1;
        inner.queue.push(Entry { at, id, action: Box::new(action) as Action });
        id
    }

    /// Schedules `action` to run after `delay` of simulated time.
    pub fn schedule_in(&self, delay: Duration, action: impl FnOnce() + 'static) -> EventId {
        let at = self.now() + delay;
        self.schedule_at(at, action)
    }

    /// Schedules `action` at the current instant, after all events already
    /// queued for this instant (FIFO within a timestamp).
    pub fn schedule_now(&self, action: impl FnOnce() + 'static) -> EventId {
        let at = self.now();
        self.schedule_at(at, action)
    }

    /// Cancels a pending event. Cancelling an already-executed or unknown
    /// event is a no-op, which lets callers keep stale [`EventId`]s safely.
    pub fn cancel(&self, id: EventId) {
        if id == EventId::NONE {
            return;
        }
        self.inner.borrow_mut().cancelled.insert(id);
    }

    /// Requests the run loop to stop after the currently executing event.
    pub fn stop(&self) {
        self.inner.borrow_mut().stop_requested = true;
    }

    /// Executes a single event, if any is pending. Returns `true` if an event
    /// ran, advancing the clock to its timestamp.
    pub fn step(&self) -> bool {
        let (action, at) = {
            let mut inner = self.inner.borrow_mut();
            loop {
                match inner.queue.pop() {
                    None => return false,
                    Some(e) => {
                        if inner.cancelled.remove(&e.id) {
                            continue;
                        }
                        if let Some(h) = inner.horizon {
                            if e.at > h {
                                // Put it back and report exhaustion of the window.
                                inner.queue.push(e);
                                return false;
                            }
                        }
                        break (e.action, e.at);
                    }
                }
            }
        };
        {
            let mut inner = self.inner.borrow_mut();
            inner.now = at;
            inner.executed += 1;
        }
        action();
        true
    }

    /// Runs until the event queue is exhausted or [`stop`](Sim::stop) is called.
    pub fn run(&self) {
        self.inner.borrow_mut().horizon = None;
        loop {
            if self.take_stop() || !self.step() {
                break;
            }
        }
    }

    /// Runs events with timestamps `<= until`, then sets the clock to `until`.
    ///
    /// Events scheduled beyond `until` stay queued, so simulations can be
    /// advanced window by window (used by the experiment runner to sample
    /// resource usage and by fault injection to act at precise instants).
    pub fn run_until(&self, until: SimTime) {
        self.inner.borrow_mut().horizon = Some(until);
        loop {
            if self.take_stop() || !self.step() {
                break;
            }
        }
        let mut inner = self.inner.borrow_mut();
        inner.horizon = None;
        if inner.now < until {
            inner.now = until;
        }
    }

    /// Runs for `window` of simulated time from the current instant.
    pub fn run_for(&self, window: Duration) {
        let until = self.now() + window;
        self.run_until(until);
    }

    fn take_stop(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        std::mem::take(&mut inner.stop_requested)
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("executed", &inner.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    type Log = Rc<RefCell<Vec<u32>>>;

    fn recorder() -> (Log, impl Fn(u32) -> Box<dyn FnOnce()>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let mk = move |v: u32| {
            let l = l.clone();
            Box::new(move || l.borrow_mut().push(v)) as Box<dyn FnOnce()>
        };
        (log, mk)
    }

    #[test]
    fn events_run_in_time_order() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule_at(SimTime::from_millis(3), mk(3));
        sim.schedule_at(SimTime::from_millis(1), mk(1));
        sim.schedule_at(SimTime::from_millis(2), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn same_time_is_fifo() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        for v in 0..10 {
            sim.schedule_at(SimTime::from_millis(7), mk(v));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn actions_can_schedule_more_events() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        let s2 = sim.clone();
        sim.schedule_in(Duration::from_millis(1), move || {
            s2.schedule_in(Duration::from_millis(1), mk(42));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![42]);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cancel_suppresses_execution() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        let id = sim.schedule_in(Duration::from_millis(1), mk(1));
        sim.schedule_in(Duration::from_millis(2), mk(2));
        sim.cancel(id);
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let sim = Sim::new();
        sim.cancel(EventId::NONE);
        sim.cancel(EventId(999));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "simulation past")]
    fn scheduling_in_the_past_panics() {
        let sim = Sim::new();
        sim.schedule_in(Duration::from_millis(5), || {});
        sim.run();
        sim.schedule_at(SimTime::from_millis(1), || {});
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule_at(SimTime::from_millis(1), mk(1));
        sim.schedule_at(SimTime::from_millis(10), mk(10));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(5));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 10]);
    }

    #[test]
    fn stop_halts_the_loop() {
        let sim = Sim::new();
        let (log, mk) = recorder();
        let s2 = sim.clone();
        sim.schedule_at(SimTime::from_millis(1), move || s2.stop());
        sim.schedule_at(SimTime::from_millis(2), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), Vec::<u32>::new());
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn counts_executed_events() {
        let sim = Sim::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_millis(i), || {});
        }
        sim.run();
        assert_eq!(sim.events_executed(), 5);
    }
}

//! Deterministic seed derivation.
//!
//! Every stochastic component (traffic generator, loss models, think times,
//! …) draws from its own RNG seeded from the experiment's master seed and a
//! component label. Runs with the same configuration are therefore
//! bit-reproducible, and changing one component's draws does not perturb the
//! others — the property that makes "multiple runs of the same scenario with
//! different configuration settings" (paper §1) meaningful.

/// Derives a 64-bit seed from a master seed and a component label.
///
/// Uses the SplitMix64 finalizer over a FNV-1a hash of the label; cheap,
/// stable across platforms, and well-distributed for our purposes (this is
/// not a cryptographic construction).
///
/// # Examples
///
/// ```
/// use dbsm_sim::derive_seed;
/// let a = derive_seed(42, "client-0");
/// let b = derive_seed(42, "client-1");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "client-0"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(master ^ h)
}

/// Derives a seed from a master seed and a numeric index (convenience for
/// per-site / per-client streams).
pub fn derive_seed_indexed(master: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, label) ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
        assert_eq!(derive_seed_indexed(1, "x", 7), derive_seed_indexed(1, "x", 7));
    }

    #[test]
    fn label_and_master_both_matter() {
        assert_ne!(derive_seed(1, "x"), derive_seed(1, "y"));
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
        assert_ne!(derive_seed_indexed(1, "x", 0), derive_seed_indexed(1, "x", 1));
    }

    #[test]
    fn spreads_small_indices() {
        // Consecutive indices should not produce near-identical seeds.
        let a = derive_seed_indexed(0, "c", 0);
        let b = derive_seed_indexed(0, "c", 1);
        assert!((a ^ b).count_ones() > 8, "{a:#x} vs {b:#x}");
    }
}

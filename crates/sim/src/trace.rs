//! Lightweight event tracing.
//!
//! SSFNet "provides extensive facilities to log events" (§2.1); our
//! equivalent is a bounded in-memory trace that components append records to
//! and tests/experiments inspect or dump. Tracing is off by default and has
//! near-zero cost when disabled.

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Category of a trace record, so consumers can filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Packet transmitted onto a link.
    PacketSent,
    /// Packet delivered to a socket.
    PacketDelivered,
    /// Packet dropped (loss model, queue overflow, MTU).
    PacketDropped,
    /// Group-communication protocol event.
    Protocol,
    /// Database engine event (lock wait, abort, commit...).
    Database,
    /// Fault-injection action.
    Fault,
    /// Anything else.
    Other,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Free-form description (e.g. "site2: abcast seq=42 len=512").
    pub message: String,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

/// Shared handle to a bounded trace buffer.
///
/// # Examples
///
/// ```
/// use dbsm_sim::{Trace, TraceKind, SimTime};
///
/// let trace = Trace::bounded(16);
/// trace.record(SimTime::ZERO, TraceKind::Protocol, "hello".into());
/// assert_eq!(trace.snapshot().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

impl Trace {
    /// Creates a disabled trace (records are discarded without allocation).
    pub fn disabled() -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: false,
                capacity: 0,
                records: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Creates an enabled trace keeping at most `capacity` newest records.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: true,
                capacity,
                records: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            })),
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Appends a record (no-op when disabled). Oldest records are evicted
    /// once `capacity` is exceeded.
    pub fn record(&self, at: SimTime, kind: TraceKind, message: String) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.records.len() == inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(TraceRecord { at, kind, message });
    }

    /// Like [`record`](Trace::record) but only formats the message when the
    /// trace is enabled.
    pub fn record_with(&self, at: SimTime, kind: TraceKind, f: impl FnOnce() -> String) {
        if self.is_enabled() {
            self.record(at, kind, f());
        }
    }

    /// Copies out the current records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.borrow().records.iter().cloned().collect()
    }

    /// Records evicted due to the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Number of records matching `kind`.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.inner.borrow().records.iter().filter(|r| r.kind == kind).count()
    }

    /// Clears all records.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.records.clear();
        inner.dropped = 0;
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_discards() {
        let t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::Other, "x".into());
        assert!(t.snapshot().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_evicts_oldest() {
        let t = Trace::bounded(2);
        for i in 0..3 {
            t.record(SimTime::from_nanos(i), TraceKind::Other, i.to_string());
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].message, "1");
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn record_with_skips_formatting_when_disabled() {
        let t = Trace::disabled();
        t.record_with(SimTime::ZERO, TraceKind::Other, || panic!("must not format"));
    }

    #[test]
    fn count_filters_by_kind() {
        let t = Trace::bounded(8);
        t.record(SimTime::ZERO, TraceKind::PacketSent, "a".into());
        t.record(SimTime::ZERO, TraceKind::PacketDropped, "b".into());
        t.record(SimTime::ZERO, TraceKind::PacketSent, "c".into());
        assert_eq!(t.count(TraceKind::PacketSent), 2);
        assert_eq!(t.count(TraceKind::PacketDropped), 1);
        t.clear();
        assert_eq!(t.count(TraceKind::PacketSent), 0);
    }
}

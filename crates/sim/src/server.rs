//! First-class shard servers: a bank of FIFO queues with deterministic
//! service, the queueing-theoretic counterpart of [`CpuBank`](crate::CpuBank)
//! for resources that serve requests one at a time in arrival order.
//!
//! The paper's methodology (§2.2) is to expose performance walls by
//! *simulating the server's queueing behaviour* instead of pricing work as
//! if it ran on infinitely parallel hardware. [`ServerBank`] models `N`
//! independent single-server FIFO queues — one per certification shard —
//! so two requests probing the same shard serialize (the second *waits*),
//! and shard imbalance shows up as queueing latency rather than being
//! hidden by a max-over-shards price.
//!
//! Unlike [`CpuBank`](crate::CpuBank), a `ServerBank` does not execute jobs:
//! FIFO order with known service times makes every completion instant a
//! closed-form `max(now, free_at) + service`, so the bank just advances
//! per-server `free_at` clocks and returns the timing. The caller owns
//! scheduling (typically one simulation event at the fan-out's
//! [`Fanout::ready_at`]), which keeps the bank deterministic, allocation-free
//! and trivially cloneable for replicated sites.

use crate::time::SimTime;
use std::time::Duration;

/// One FIFO server's state and accounting.
#[derive(Debug, Clone, Copy, Default)]
struct ServerState {
    /// The instant this server drains its queue (work is conserved: FIFO
    /// with known service times collapses the whole queue into one clock).
    free_at: SimTime,
    /// Total service time performed.
    busy: Duration,
    /// Total time jobs spent waiting before service started.
    queued: Duration,
    /// Jobs accepted.
    jobs: u64,
}

/// Timing of one job accepted by [`ServerBank::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerJob {
    /// Time spent waiting behind earlier jobs on the same server.
    pub queued: Duration,
    /// Instant service began.
    pub started_at: SimTime,
    /// Instant service completes; the server is free again from here.
    pub completes_at: SimTime,
}

/// Timing of a fan-out submitted by [`ServerBank::submit_fanout`]: one
/// request split across several servers, complete when the last server
/// finishes (the critical path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanout {
    /// Instant the last (critical) server finishes the request's work.
    pub ready_at: SimTime,
    /// Queueing delay on the critical server — the wait component of the
    /// request's latency decomposition.
    pub queued: Duration,
    /// Service time on the critical server — the work component.
    pub service: Duration,
    /// Number of servers the request touched (what a merge step joins).
    pub servers: usize,
}

impl Default for Fanout {
    fn default() -> Self {
        Fanout {
            ready_at: SimTime::ZERO,
            queued: Duration::ZERO,
            service: Duration::ZERO,
            servers: 0,
        }
    }
}

/// A bank of `N` independent single-server FIFO queues with deterministic
/// service times and time-integrated accounting.
///
/// # Examples
///
/// ```
/// use dbsm_sim::{ServerBank, SimTime};
/// use std::time::Duration;
///
/// let mut bank = ServerBank::new(2);
/// let now = SimTime::from_millis(1);
/// let a = bank.submit(0, now, Duration::from_micros(100));
/// let b = bank.submit(0, now, Duration::from_micros(50));
/// assert_eq!(a.queued, Duration::ZERO);
/// assert_eq!(b.queued, Duration::from_micros(100), "same server serializes");
/// assert_eq!(bank.submit(1, now, Duration::from_micros(30)).queued, Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBank {
    servers: Vec<ServerState>,
}

impl ServerBank {
    /// Creates a bank of `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a bank needs at least one server");
        ServerBank { servers: vec![ServerState::default(); n] }
    }

    /// Number of servers in the bank.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Enqueues `service` of work on `server` at simulated instant `now`
    /// (instants must be non-decreasing per bank, as events fire in time
    /// order) and returns the job's timing.
    pub fn submit(&mut self, server: usize, now: SimTime, service: Duration) -> ServerJob {
        let s = &mut self.servers[server];
        let started_at = s.free_at.max(now);
        let completes_at = started_at + service;
        let queued = started_at.saturating_duration_since(now);
        s.free_at = completes_at;
        s.busy += service;
        s.queued += queued;
        s.jobs += 1;
        ServerJob { queued, started_at, completes_at }
    }

    /// Submits one request's work split across several servers, returning
    /// the critical-path timing: the fan-out is ready when its last server
    /// finishes, and the queue/service decomposition reported is the
    /// critical server's (the one the request actually waited for).
    pub fn submit_fanout(
        &mut self,
        now: SimTime,
        loads: impl IntoIterator<Item = (usize, Duration)>,
    ) -> Fanout {
        let mut out = Fanout { ready_at: now, ..Fanout::default() };
        for (server, service) in loads {
            let job = self.submit(server, now, service);
            out.servers += 1;
            if job.completes_at > out.ready_at {
                out.ready_at = job.completes_at;
                out.queued = job.queued;
                out.service = service;
            }
        }
        out
    }

    /// The instant `server` drains all accepted work.
    pub fn free_at(&self, server: usize) -> SimTime {
        self.servers[server].free_at
    }

    /// Total service time performed across all servers.
    pub fn busy_total(&self) -> Duration {
        self.servers.iter().map(|s| s.busy).sum()
    }

    /// Service time performed by the most-loaded server — the bank's
    /// critical path over the whole run.
    pub fn busy_peak(&self) -> Duration {
        self.servers.iter().map(|s| s.busy).max().unwrap_or(Duration::ZERO)
    }

    /// Total time jobs spent queued behind earlier work.
    pub fn queued_total(&self) -> Duration {
        self.servers.iter().map(|s| s.queued).sum()
    }

    /// Jobs accepted across all servers.
    pub fn jobs(&self) -> u64 {
        self.servers.iter().map(|s| s.jobs).sum()
    }

    /// Mean queueing delay per accepted job.
    pub fn mean_wait(&self) -> Duration {
        let jobs = self.jobs();
        if jobs == 0 {
            Duration::ZERO
        } else {
            self.queued_total() / jobs as u32
        }
    }

    /// Mean utilization over `elapsed` of simulated time: busy fraction
    /// averaged across servers (1.0 = every server busy the whole run).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy_total().as_secs_f64() / (elapsed.as_secs_f64() * self.servers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn same_server_requests_serialize_in_fifo_order() {
        let mut bank = ServerBank::new(4);
        let a = bank.submit(2, at(100), us(50));
        let b = bank.submit(2, at(110), us(30));
        let c = bank.submit(2, at(200), us(10));
        assert_eq!(a.queued, Duration::ZERO);
        assert_eq!(a.completes_at, at(150));
        // b arrives while a is in service: waits 40µs.
        assert_eq!(b.queued, us(40));
        assert_eq!(b.started_at, at(150));
        assert_eq!(b.completes_at, at(180));
        // c arrives after the queue drained: no wait.
        assert_eq!(c.queued, Duration::ZERO);
        assert_eq!(c.completes_at, at(210));
    }

    #[test]
    fn different_servers_run_in_parallel() {
        let mut bank = ServerBank::new(3);
        for s in 0..3 {
            let job = bank.submit(s, at(0), us(100));
            assert_eq!(job.queued, Duration::ZERO, "server {s} is independent");
            assert_eq!(job.completes_at, at(100));
        }
        assert_eq!(bank.busy_total(), us(300));
        assert_eq!(bank.busy_peak(), us(100));
        assert_eq!(bank.queued_total(), Duration::ZERO);
    }

    #[test]
    fn fanout_reports_the_critical_server_decomposition() {
        let mut bank = ServerBank::new(4);
        // Pre-load server 1 so the fan-out queues behind it.
        bank.submit(1, at(0), us(80));
        let f = bank.submit_fanout(at(10), [(0, us(20)), (1, us(30)), (3, us(5))]);
        assert_eq!(f.servers, 3);
        // Server 1: waits 70µs (until t=80), serves 30µs, done at 110 — the
        // critical path; servers 0 and 3 finish at 30 and 15.
        assert_eq!(f.ready_at, at(110));
        assert_eq!(f.queued, us(70));
        assert_eq!(f.service, us(30));
    }

    #[test]
    fn empty_fanout_is_ready_immediately() {
        let mut bank = ServerBank::new(2);
        let f = bank.submit_fanout(at(42), []);
        assert_eq!(f.ready_at, at(42));
        assert_eq!(f.servers, 0);
        assert_eq!(f.queued, Duration::ZERO);
        assert_eq!(f.service, Duration::ZERO);
    }

    #[test]
    fn imbalance_shows_up_as_queueing_latency() {
        // The modelling claim of the tentpole: a hot shard is not hidden by
        // max-over-shards pricing — back-to-back requests on it *wait*.
        let mut bank = ServerBank::new(2);
        let mut last_wait = Duration::ZERO;
        for i in 0..10u64 {
            // All requests hammer server 0; server 1 idles.
            let f = bank.submit_fanout(at(i * 10), [(0, us(100))]);
            last_wait = f.queued;
        }
        assert!(last_wait > us(800), "waits accumulate on the hot shard: {last_wait:?}");
        assert_eq!(bank.free_at(1), SimTime::ZERO);
        assert!(bank.mean_wait() > Duration::ZERO);
    }

    #[test]
    fn accounting_totals_are_consistent() {
        let mut bank = ServerBank::new(2);
        bank.submit(0, at(0), us(100));
        bank.submit(0, at(0), us(100)); // queues 100µs
        bank.submit(1, at(0), us(50));
        assert_eq!(bank.jobs(), 3);
        assert_eq!(bank.busy_total(), us(250));
        assert_eq!(bank.queued_total(), us(100));
        assert_eq!(bank.mean_wait(), us(100) / 3);
        let u = bank.utilization(us(200));
        assert!((u - 0.625).abs() < 1e-9, "250µs busy over 2×200µs: {u}");
        assert_eq!(bank.utilization(Duration::ZERO), 0.0);
    }
}

//! # dbsm-sim — discrete-event simulation kernel and centralized runtime
//!
//! Rust reimplementation of the simulation substrate from *"Testing the
//! Dependability and Performance of Group Communication Based Database
//! Replication Protocols"* (Sousa et al., DSN 2005), §2:
//!
//! * a sequential discrete-event [`Sim`] kernel (the role SSF plays in the
//!   paper) with deterministic `(time, FIFO)` event ordering and safe
//!   cancellation;
//! * simulated CPUs ([`CpuBank`]) executing both *simulated* jobs (declared
//!   duration) and *real* protocol code whose duration is profiled — the
//!   centralized simulation runtime (CSRT) of §2.2, including the Fig. 1(b)
//!   rules for scheduling events and reading the clock from inside real code;
//! * profiling modes ([`ProfilerMode`]): deterministic synthetic costs or
//!   wall-clock measurement with the paper's clock-stop semantics;
//! * deterministic seed derivation ([`derive_seed`]), summary
//!   statistics/ECDF/Q-Q utilities ([`stats`]), and a bounded [`Trace`].
//!
//! # Examples
//!
//! ```
//! use dbsm_sim::{Sim, CpuBank, ProfilerMode, SimTime};
//! use std::time::Duration;
//!
//! let sim = Sim::new();
//! let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
//! // A "real" protocol job: charges 2ms of CPU and schedules a timer.
//! cpu.submit_real(Box::new(|ctx| {
//!     ctx.charge(Duration::from_millis(2));
//!     ctx.schedule(Duration::from_millis(10), || println!("timer fired"));
//! }));
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_millis(12));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpu;
mod event;
mod profiler;
mod rng;
mod scheduler;
mod server;
pub mod stats;
mod time;
mod trace;

pub use cpu::{CpuBank, CpuUsage, RealContext, RealJob};
pub use event::EventId;
pub use profiler::ProfilerMode;
pub use rng::{derive_seed, derive_seed_indexed};
pub use scheduler::Sim;
pub use server::{Fanout, ServerBank, ServerJob};
pub use time::{duration_to_nanos, scale_duration, SimTime};
pub use trace::{Trace, TraceKind, TraceRecord};

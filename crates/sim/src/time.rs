//! Simulated time.
//!
//! The simulation clock is a [`SimTime`]: nanoseconds elapsed since the start
//! of the simulation. Durations are expressed with [`std::time::Duration`],
//! which keeps call sites readable (`sim.schedule_in(Duration::from_millis(5), …)`)
//! while the kernel internally works on `u64` nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent ordering-friendly wrapper; arithmetic with
/// [`Duration`] saturates rather than wrapping so that pathological fault
/// injection (e.g. extreme clock drift) cannot corrupt the timeline.
///
/// # Examples
///
/// ```
/// use dbsm_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, or [`Duration::ZERO`] if `earlier`
    /// is in the future (mirrors [`std::time::Instant::saturating_duration_since`]).
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(rhs)))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.saturating_duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Converts a [`Duration`] to `u64` nanoseconds, saturating on overflow.
///
/// Simulated experiments run for minutes to hours of virtual time, far below
/// the ~584 years a `u64` of nanoseconds can express, so saturation is only a
/// guard against adversarial fault-injection parameters.
pub fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Scales a duration by a dimensionless factor, used for CPU-speed scaling
/// and fault-injection clock drift. Negative or NaN factors are clamped to 0.
pub fn scale_duration(d: Duration, factor: f64) -> Duration {
    if factor.is_nan() || factor <= 0.0 {
        return Duration::ZERO;
    }
    let ns = duration_to_nanos(d) as f64 * factor;
    if ns >= u64::MAX as f64 {
        Duration::from_nanos(u64::MAX)
    } else {
        Duration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_millis(2) + Duration::from_micros(500);
        assert_eq!(t.as_nanos(), 2_500_000);
    }

    #[test]
    fn add_saturates() {
        let t = SimTime::MAX + Duration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn subtraction_is_saturating() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(3);
        assert_eq!(b - a, Duration::from_millis(2));
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000000s");
    }

    #[test]
    fn scale_duration_clamps() {
        assert_eq!(scale_duration(Duration::from_secs(1), 0.5), Duration::from_millis(500));
        assert_eq!(scale_duration(Duration::from_secs(1), -1.0), Duration::ZERO);
        assert_eq!(scale_duration(Duration::from_secs(1), f64::NAN), Duration::ZERO);
    }
}

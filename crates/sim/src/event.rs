//! Event identifiers and heap entries for the discrete-event scheduler.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Handle to a scheduled event, usable to [cancel](crate::Sim::cancel) it.
///
/// Identifiers are unique for the lifetime of a [`Sim`](crate::Sim) instance
/// and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// A sentinel id that no scheduled event ever receives.
    pub const NONE: EventId = EventId(u64::MAX);
}

/// The action executed when an event fires.
///
/// Actions are `FnOnce` closures; they typically capture `Rc` handles to the
/// components they operate on. The kernel is single-threaded so no `Send`
/// bound is required.
pub(crate) type Action = Box<dyn FnOnce()>;

/// An entry in the scheduler's priority queue.
pub(crate) struct Entry {
    pub at: SimTime,
    pub id: EventId,
    pub action: Action,
}

impl Entry {
    /// Key establishing deterministic execution order: earlier time first,
    /// then FIFO by insertion order (the monotone event id).
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.id.0)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    // Reversed: BinaryHeap is a max-heap but we need the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry").field("at", &self.at).field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, id: u64) -> Entry {
        Entry { at: SimTime::from_nanos(at), id: EventId(id), action: Box::new(|| {}) }
    }

    #[test]
    fn heap_order_is_time_then_fifo() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(entry(10, 2));
        heap.push(entry(5, 3));
        heap.push(entry(10, 1));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.id.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn none_sentinel_is_distinct() {
        assert_ne!(EventId::NONE, EventId(0));
    }
}

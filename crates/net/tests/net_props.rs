//! Property tests of the network model: conservation (every packet is
//! delivered or accounted as dropped), FIFO per channel, and analytic
//! delivery times.

use bytes::Bytes;
use dbsm_net::{Addr, Dest, DropCause, HostId, NetworkBuilder, Port, SegmentConfig};
use dbsm_sim::{Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn packets_are_delivered_or_counted(
        sizes in prop::collection::vec(0usize..2000, 1..60),
        loss_pct in 0u32..40,
    ) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let h0 = b.host(lan);
        let h1 = b.host(lan);
        let net = b.build();
        net.set_loss(h1, Box::new(dbsm_net::RandomLoss::new(f64::from(loss_pct) / 100.0, 7)));
        let delivered: Rc<RefCell<u64>> = Rc::default();
        let d = delivered.clone();
        net.bind(Addr::new(h1, Port(9)), move |_| *d.borrow_mut() += 1).expect("bind");
        let n = sizes.len() as u64;
        for size in &sizes {
            net.send(
                Addr::new(h0, Port(1)),
                Dest::Unicast(Addr::new(h1, Port(9))),
                Bytes::from(vec![0u8; *size]),
            );
        }
        sim.run();
        let st = net.stats();
        let dropped = st.drops(DropCause::LossModel)
            + st.drops(DropCause::Mtu)
            + st.drops(DropCause::TxOverflow);
        prop_assert_eq!(*delivered.borrow() + dropped, n, "conservation");
        // Transmitted = everything that passed MTU and the buffer.
        prop_assert_eq!(
            st.host(0).tx_packets + st.drops(DropCause::Mtu) + st.drops(DropCause::TxOverflow),
            n
        );
    }

    #[test]
    fn delivery_is_fifo_per_sender(count in 2usize..50) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let h0 = b.host(lan);
        let h1 = b.host(lan);
        let net = b.build();
        let seen: Rc<RefCell<Vec<u64>>> = Rc::default();
        let s = seen.clone();
        net.bind(Addr::new(h1, Port(9)), move |dg| {
            let mut v = [0u8; 8];
            v.copy_from_slice(&dg.payload[..8]);
            s.borrow_mut().push(u64::from_le_bytes(v));
        })
        .expect("bind");
        for i in 0..count as u64 {
            net.send(
                Addr::new(h0, Port(1)),
                Dest::Unicast(Addr::new(h1, Port(9))),
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
        sim.run();
        let got = seen.borrow().clone();
        prop_assert_eq!(got.len(), count);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO violated: {:?}", got);
    }

    #[test]
    fn delivery_time_matches_analytic_formula(payload in 0usize..1400, lat_us in 1u64..2000) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let cfg = SegmentConfig {
            bandwidth_bps: 100_000_000.0,
            latency: Duration::from_micros(lat_us),
            mtu: 1500,
            tx_buffer: Duration::from_millis(50),
        };
        let lan = b.lan(cfg);
        let h0 = b.host(lan);
        let h1 = b.host(lan);
        let net = b.build();
        let at: Rc<RefCell<Option<SimTime>>> = Rc::default();
        let a = at.clone();
        let sim2 = sim.clone();
        net.bind(Addr::new(h1, Port(9)), move |_| *a.borrow_mut() = Some(sim2.now()))
            .expect("bind");
        net.send(
            Addr::new(h0, Port(1)),
            Dest::Unicast(Addr::new(h1, Port(9))),
            Bytes::from(vec![0u8; payload]),
        );
        sim.run();
        let wire = dbsm_net::wire_bytes(payload) as f64;
        let expect_ns = wire * 8.0 / 100e6 * 1e9 + lat_us as f64 * 1e3;
        let got = at.borrow().expect("delivered").as_nanos() as f64;
        prop_assert!((got - expect_ns).abs() < 1000.0, "got {got}ns expect {expect_ns}ns");
    }

    #[test]
    fn multicast_fans_out_to_all_members(members in 2usize..10) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let hosts: Vec<HostId> = (0..members).map(|_| b.host(lan)).collect();
        let net = b.build();
        let group = dbsm_net::GroupId(3);
        let count: Rc<RefCell<u64>> = Rc::default();
        for h in &hosts {
            net.join_group(*h, group);
            let c = count.clone();
            net.bind(Addr::new(*h, Port(9)), move |_| *c.borrow_mut() += 1).expect("bind");
        }
        net.send(Addr::new(hosts[0], Port(1)), Dest::Multicast(group, Port(9)), Bytes::new());
        sim.run();
        // Everyone but the sender receives exactly one copy; one frame on
        // the wire regardless of group size.
        prop_assert_eq!(*count.borrow(), members as u64 - 1);
        prop_assert_eq!(net.stats().host(0).tx_packets, 1);
    }
}

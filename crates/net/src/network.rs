//! The network state machine: segments, hosts, sockets, transmission and
//! delivery. This plays the role SSFNet plays in the paper (§2.1): a
//! configurable model of NICs, links and protocol endpoints, with event
//! logging.
//!
//! ## Transmission model
//!
//! Each segment is a shared channel (classic Ethernet bus or a full-duplex
//! point-to-point pair). A transmission occupies the channel for
//! `wire_bytes × 8 / bandwidth`, transmissions queue FIFO (modelled by a
//! `busy_until` watermark), and delivery happens one propagation latency
//! after serialization completes. If the backlog behind the watermark
//! exceeds the configured buffer (expressed in time), the packet is dropped —
//! drop-tail queueing. Frames above the MTU are dropped and counted: the
//! paper found SSFNet did *not* enforce the Ethernet MTU for UDP and had to
//! restrict packet sizes; we enforce it so misconfigured protocols fail
//! loudly in the same way the real system would.

use crate::addr::{Addr, GroupId, HostId, Port};
use crate::loss::LossModel;
use crate::monitor::{DropCause, TrafficStats};
use crate::packet::{wire_bytes, Datagram, Dest};
use bytes::Bytes;
use dbsm_sim::{Sim, SimTime, Trace, TraceKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

/// Configuration of one network segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Link bandwidth in bits per second (e.g. `100_000_000` for Fast
    /// Ethernet, the paper's test network).
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: Duration,
    /// Maximum frame size (payload + headers) in bytes.
    pub mtu: usize,
    /// Maximum transmit backlog, expressed as channel time; packets that
    /// would queue beyond this are dropped (drop-tail).
    pub tx_buffer: Duration,
}

impl SegmentConfig {
    /// A 100 Mbps switched Ethernet LAN with 50 µs latency and 1500-byte MTU
    /// — the paper's test environment (§4.1).
    pub fn fast_ethernet() -> Self {
        SegmentConfig {
            bandwidth_bps: 100_000_000.0,
            latency: Duration::from_micros(50),
            mtu: 1500,
            tx_buffer: Duration::from_millis(20),
        }
    }

    /// A wide-area point-to-point link: configurable rate and delay, larger
    /// buffer (routers buffer more than NICs).
    pub fn wan(bandwidth_bps: f64, latency: Duration) -> Self {
        SegmentConfig { bandwidth_bps, latency, mtu: 1500, tx_buffer: Duration::from_millis(100) }
    }

    fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

/// Kind of segment: a shared multicast-capable LAN or a point-to-point link.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SegmentKind {
    /// Shared bus: one channel, multicast delivers to all attached hosts.
    Lan { members: Vec<HostId> },
    /// Full-duplex pair: one channel per direction, no multicast.
    P2p { a: HostId, b: HostId },
}

struct Segment {
    config: SegmentConfig,
    kind: SegmentKind,
    /// Channel watermark(s): LAN uses `busy[0]`; P2P uses one per direction
    /// (index 0 = a→b, 1 = b→a).
    busy_until: [SimTime; 2],
}

impl Segment {
    fn channel_index(&self, from: HostId) -> usize {
        match &self.kind {
            SegmentKind::Lan { .. } => 0,
            SegmentKind::P2p { a, .. } => usize::from(from != *a),
        }
    }
}

type Handler = Rc<RefCell<dyn FnMut(Datagram)>>;

/// Receive-side duplicate-delivery fault: each arriving packet is
/// redelivered (1..=`max_copies` extra copies) with probability `p`.
struct DupModel {
    p: f64,
    max_copies: u8,
    rng: SmallRng,
}

struct HostState {
    down: bool,
    /// Stacked receive-side loss models: a packet is dropped if *any* of
    /// them says so. Every model sees every arrival (no short-circuit), so
    /// stateful schedules advance identically whether or not another model
    /// already dropped the packet.
    losses: Vec<Box<dyn LossModel>>,
    dup: Option<DupModel>,
    sockets: HashMap<Port, Handler>,
    groups: HashSet<GroupId>,
    /// Segments this host is attached to, in attachment order.
    segments: Vec<usize>,
}

struct NetState {
    segments: Vec<Segment>,
    hosts: Vec<HostState>,
    stats: TrafficStats,
    /// Active partition: host id → segment group. Hosts absent from the map
    /// (or in different groups) cannot reach each other. `None` = healed.
    partition: Option<HashMap<u16, u32>>,
}

/// Error binding a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The port already has a socket bound on this host.
    PortInUse(Port),
    /// Unknown host id.
    NoSuchHost(HostId),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::PortInUse(p) => write!(f, "port {} already bound", p.0),
            BindError::NoSuchHost(h) => write!(f, "no such host {h}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Handle to the simulated network. Clones share state.
///
/// Constructed through [`NetworkBuilder`](crate::NetworkBuilder).
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    state: Rc<RefCell<NetState>>,
    trace: Trace,
}

impl Network {
    pub(crate) fn from_parts(
        sim: Sim,
        segments: Vec<(SegmentConfig, Vec<HostId>, bool)>,
        n_hosts: usize,
        trace: Trace,
    ) -> Self {
        let mut hosts: Vec<HostState> = (0..n_hosts)
            .map(|_| HostState {
                down: false,
                losses: Vec::new(),
                dup: None,
                sockets: HashMap::new(),
                groups: HashSet::new(),
                segments: Vec::new(),
            })
            .collect();
        let mut segs = Vec::new();
        for (idx, (config, members, p2p)) in segments.into_iter().enumerate() {
            for h in &members {
                hosts[h.0 as usize].segments.push(idx);
            }
            let kind = if p2p {
                assert_eq!(members.len(), 2, "point-to-point link needs exactly two hosts");
                SegmentKind::P2p { a: members[0], b: members[1] }
            } else {
                SegmentKind::Lan { members }
            };
            segs.push(Segment { config, kind, busy_until: [SimTime::ZERO; 2] });
        }
        let state =
            NetState { segments: segs, hosts, stats: TrafficStats::new(n_hosts), partition: None };
        Network { sim, state: Rc::new(RefCell::new(state)), trace }
    }

    /// The simulation this network is attached to.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.state.borrow().hosts.len()
    }

    /// Binds a receive handler at `addr`. The handler runs at delivery time;
    /// it may send packets and schedule events.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::PortInUse`] if the port is taken, or
    /// [`BindError::NoSuchHost`] for an unknown host.
    pub fn bind(
        &self,
        addr: Addr,
        handler: impl FnMut(Datagram) + 'static,
    ) -> Result<(), BindError> {
        let mut st = self.state.borrow_mut();
        let host =
            st.hosts.get_mut(addr.host.0 as usize).ok_or(BindError::NoSuchHost(addr.host))?;
        if host.sockets.contains_key(&addr.port) {
            return Err(BindError::PortInUse(addr.port));
        }
        host.sockets.insert(addr.port, Rc::new(RefCell::new(handler)));
        Ok(())
    }

    /// Removes the socket at `addr`, if any.
    pub fn unbind(&self, addr: Addr) {
        let mut st = self.state.borrow_mut();
        if let Some(h) = st.hosts.get_mut(addr.host.0 as usize) {
            h.sockets.remove(&addr.port);
        }
    }

    /// Joins `host` to a multicast group.
    pub fn join_group(&self, host: HostId, group: GroupId) {
        self.state.borrow_mut().hosts[host.0 as usize].groups.insert(group);
    }

    /// Removes `host` from a multicast group.
    pub fn leave_group(&self, host: HostId, group: GroupId) {
        self.state.borrow_mut().hosts[host.0 as usize].groups.remove(&group);
    }

    /// Installs a receive-side loss model on a host (fault injection),
    /// replacing any previously installed models. Use
    /// [`Network::add_loss`] to stack models instead.
    pub fn set_loss(&self, host: HostId, model: Box<dyn LossModel>) {
        self.state.borrow_mut().hosts[host.0 as usize].losses = vec![model];
    }

    /// Stacks an additional receive-side loss model on a host: a packet is
    /// dropped if *any* installed model drops it, and every model observes
    /// every arrival (stateful burst schedules advance regardless of the
    /// other models' verdicts). This is how composed fault plans — e.g.
    /// random loss on top of a correlated burst — coexist on one site.
    pub fn add_loss(&self, host: HostId, model: Box<dyn LossModel>) {
        self.state.borrow_mut().hosts[host.0 as usize].losses.push(model);
    }

    /// Installs the duplicate-delivery fault on a host: each packet arriving
    /// at `host` is redelivered — 1..=`max_copies` extra copies, spaced
    /// 50 µs apart — with probability `p`. Copies traverse the receive path
    /// like any packet (the loss model applies to each independently), so
    /// the protocol above must absorb them.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `max_copies` is zero.
    pub fn set_duplication(&self, host: HostId, p: f64, max_copies: u8, seed: u64) {
        assert!((0.0..=1.0).contains(&p), "duplication probability out of range: {p}");
        assert!(max_copies >= 1, "max_copies must be at least 1");
        self.state.borrow_mut().hosts[host.0 as usize].dup =
            Some(DupModel { p, max_copies, rng: SmallRng::seed_from_u64(seed) });
    }

    /// Splits the network into isolated partition segments: two hosts can
    /// exchange packets only if they are in the same group. Hosts listed in
    /// no group are isolated from everyone. Packets still in flight across a
    /// new partition boundary are dropped at delivery time, modelling the
    /// switch cutting over. Replaces any earlier partition.
    pub fn set_partition(&self, groups: &[Vec<HostId>]) {
        let mut map = HashMap::new();
        for (gi, group) in groups.iter().enumerate() {
            for h in group {
                let prev = map.insert(h.0, gi as u32);
                assert!(prev.is_none(), "host {h} listed in two partition groups");
            }
        }
        self.state.borrow_mut().partition = Some(map);
    }

    /// Heals an active partition: all hosts can reach each other again.
    pub fn clear_partition(&self) {
        self.state.borrow_mut().partition = None;
    }

    /// True if an active partition separates `a` from `b`.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        Self::split(&self.state.borrow(), a, b)
    }

    fn split(st: &NetState, a: HostId, b: HostId) -> bool {
        match &st.partition {
            None => false,
            Some(map) => match (map.get(&a.0), map.get(&b.0)) {
                (Some(ga), Some(gb)) => ga != gb,
                // An unlisted host sits in no segment: unreachable.
                _ => true,
            },
        }
    }

    /// Marks a host up or down. A down host neither sends nor receives.
    pub fn set_host_down(&self, host: HostId, down: bool) {
        self.state.borrow_mut().hosts[host.0 as usize].down = down;
    }

    /// True if the host is marked down.
    pub fn is_host_down(&self, host: HostId) -> bool {
        self.state.borrow().hosts[host.0 as usize].down
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.state.borrow().stats.clone()
    }

    /// Sends `payload` from `from` to `dest`. Losses, MTU violations and
    /// queue overflows are recorded in [`stats`](Network::stats) rather than
    /// reported to the caller — exactly the feedback a UDP sender gets.
    pub fn send(&self, from: Addr, dest: Dest, payload: Bytes) {
        let now = self.sim.now();
        let wire = wire_bytes(payload.len());
        // Phase 1: admission + serialization under the borrow.
        let deliveries: Vec<(Addr, Option<GroupId>, SimTime)> = {
            let mut st = self.state.borrow_mut();
            if st.hosts[from.host.0 as usize].down {
                st.stats.on_drop(DropCause::HostDown);
                return;
            }
            let seg_idx = match self.route(&st, from.host, &dest) {
                Some(i) => i,
                None => {
                    st.stats.on_drop(DropCause::NoRoute);
                    self.trace.record_with(now, TraceKind::PacketDropped, || {
                        format!("{from}->{dest:?}: no route")
                    });
                    return;
                }
            };
            let seg = &st.segments[seg_idx];
            let mtu = seg.config.mtu;
            let ch = seg.channel_index(from.host);
            let backlog = seg.busy_until[ch].saturating_duration_since(now);
            let tx_buffer = seg.config.tx_buffer;
            let start = seg.busy_until[ch].max(now);
            let finish = start + seg.config.serialization(wire);
            let arrive = finish + seg.config.latency;
            if wire > mtu {
                st.stats.on_drop(DropCause::Mtu);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{dest:?}: frame {wire}B exceeds MTU {mtu}")
                });
                return;
            }
            if backlog > tx_buffer {
                st.stats.on_drop(DropCause::TxOverflow);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{dest:?}: tx overflow ({backlog:?} backlog)")
                });
                return;
            }
            st.segments[seg_idx].busy_until[ch] = finish;
            st.stats.on_tx(from.host.0 as usize, wire);
            self.trace.record_with(now, TraceKind::PacketSent, || {
                format!("{from}->{dest:?} {wire}B arrive={arrive}")
            });
            // Resolve receiver set.
            match dest {
                Dest::Unicast(to) => vec![(to, None, arrive)],
                Dest::Multicast(group, port) => {
                    let members: Vec<HostId> = match &st.segments[seg_idx].kind {
                        SegmentKind::Lan { members } => members.clone(),
                        SegmentKind::P2p { a, b } => vec![*a, *b],
                    };
                    members
                        .into_iter()
                        .filter(|h| *h != from.host)
                        .filter(|h| st.hosts[h.0 as usize].groups.contains(&group))
                        .map(|h| (Addr::new(h, port), Some(group), arrive))
                        .collect()
                }
            }
        };
        // Phase 2: schedule deliveries (outside the borrow).
        for (to, group, arrive) in deliveries {
            let this = self.clone();
            let payload = payload.clone();
            self.sim
                .schedule_at(arrive, move || this.deliver(from, to, group, payload, wire, false));
        }
    }

    /// Picks the segment shared by `from` and the destination.
    fn route(&self, st: &NetState, from: HostId, dest: &Dest) -> Option<usize> {
        let from_segs = &st.hosts[from.0 as usize].segments;
        match dest {
            Dest::Unicast(to) => {
                let to_segs = &st.hosts.get(to.host.0 as usize)?.segments;
                from_segs.iter().find(|s| to_segs.contains(s)).copied()
            }
            // Multicast goes out on the first LAN the sender is attached to.
            Dest::Multicast(..) => from_segs
                .iter()
                .find(|s| matches!(st.segments[**s].kind, SegmentKind::Lan { .. }))
                .copied(),
        }
    }

    fn deliver(
        &self,
        from: Addr,
        to: Addr,
        group: Option<GroupId>,
        payload: Bytes,
        wire: usize,
        dup: bool,
    ) {
        let now = self.sim.now();
        let (handler, copies): (Option<Handler>, u32) = {
            let mut st = self.state.borrow_mut();
            if Self::split(&st, from.host, to.host) {
                st.stats.on_drop(DropCause::Partition);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{to}: partition")
                });
                return;
            }
            let host = &mut st.hosts[to.host.0 as usize];
            if host.down {
                st.stats.on_drop(DropCause::HostDown);
                return;
            }
            // Duplicate draw happens *before* the loss model and only for
            // originals: the network redelivers regardless of whether this
            // copy is then lost, but copies do not multiply further.
            let draw = |d: &mut DupModel| {
                if d.rng.gen_bool(d.p) {
                    u32::from(d.rng.gen_range(1..=d.max_copies))
                } else {
                    0
                }
            };
            let copies = if dup { 0 } else { host.dup.as_mut().map_or(0, draw) };
            if copies > 0 {
                st.stats.on_dup(u64::from(copies));
            }
            let host = &mut st.hosts[to.host.0 as usize];
            let mut lost = false;
            for model in &mut host.losses {
                // No short-circuit: every model sees every packet.
                lost |= model.should_drop(now, wire);
            }
            if lost {
                st.stats.on_drop(DropCause::LossModel);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{to}: loss model")
                });
                (None, copies)
            } else {
                match host.sockets.get(&to.port) {
                    Some(h) => {
                        let h = h.clone();
                        st.stats.on_rx(to.host.0 as usize, wire);
                        self.trace.record_with(now, TraceKind::PacketDelivered, || {
                            format!("{from}->{to} {wire}B{}", if dup { " (dup)" } else { "" })
                        });
                        (Some(h), copies)
                    }
                    None => {
                        st.stats.on_drop(DropCause::NoSocket);
                        (None, copies)
                    }
                }
            }
        };
        for c in 1..=copies {
            let this = self.clone();
            let payload = payload.clone();
            self.sim.schedule_in(Duration::from_micros(50 * u64::from(c)), move || {
                this.deliver(from, to, group, payload, wire, true)
            });
        }
        if let Some(h) = handler {
            let dg = Datagram { from, to, group, payload };
            (h.borrow_mut())(dg);
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Network")
            .field("hosts", &st.hosts.len())
            .field("segments", &st.segments.len())
            .finish()
    }
}

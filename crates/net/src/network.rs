//! The network state machine: segments, hosts, sockets, transmission and
//! delivery. This plays the role SSFNet plays in the paper (§2.1): a
//! configurable model of NICs, links and protocol endpoints, with event
//! logging.
//!
//! ## Transmission model
//!
//! Each segment is a shared channel (classic Ethernet bus or a full-duplex
//! point-to-point pair). A transmission occupies the channel for
//! `wire_bytes × 8 / bandwidth`, transmissions queue FIFO (modelled by a
//! `busy_until` watermark), and delivery happens one propagation latency
//! after serialization completes. If the backlog behind the watermark
//! exceeds the configured buffer (expressed in time), the packet is dropped —
//! drop-tail queueing. Frames above the MTU are dropped and counted: the
//! paper found SSFNet did *not* enforce the Ethernet MTU for UDP and had to
//! restrict packet sizes; we enforce it so misconfigured protocols fail
//! loudly in the same way the real system would.

use crate::addr::{Addr, GroupId, HostId, Port};
use crate::loss::{LossModel, NoLoss};
use crate::monitor::{DropCause, TrafficStats};
use crate::packet::{wire_bytes, Datagram, Dest};
use bytes::Bytes;
use dbsm_sim::{Sim, SimTime, Trace, TraceKind};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

/// Configuration of one network segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Link bandwidth in bits per second (e.g. `100_000_000` for Fast
    /// Ethernet, the paper's test network).
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: Duration,
    /// Maximum frame size (payload + headers) in bytes.
    pub mtu: usize,
    /// Maximum transmit backlog, expressed as channel time; packets that
    /// would queue beyond this are dropped (drop-tail).
    pub tx_buffer: Duration,
}

impl SegmentConfig {
    /// A 100 Mbps switched Ethernet LAN with 50 µs latency and 1500-byte MTU
    /// — the paper's test environment (§4.1).
    pub fn fast_ethernet() -> Self {
        SegmentConfig {
            bandwidth_bps: 100_000_000.0,
            latency: Duration::from_micros(50),
            mtu: 1500,
            tx_buffer: Duration::from_millis(20),
        }
    }

    /// A wide-area point-to-point link: configurable rate and delay, larger
    /// buffer (routers buffer more than NICs).
    pub fn wan(bandwidth_bps: f64, latency: Duration) -> Self {
        SegmentConfig { bandwidth_bps, latency, mtu: 1500, tx_buffer: Duration::from_millis(100) }
    }

    fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

/// Kind of segment: a shared multicast-capable LAN or a point-to-point link.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SegmentKind {
    /// Shared bus: one channel, multicast delivers to all attached hosts.
    Lan { members: Vec<HostId> },
    /// Full-duplex pair: one channel per direction, no multicast.
    P2p { a: HostId, b: HostId },
}

struct Segment {
    config: SegmentConfig,
    kind: SegmentKind,
    /// Channel watermark(s): LAN uses `busy[0]`; P2P uses one per direction
    /// (index 0 = a→b, 1 = b→a).
    busy_until: [SimTime; 2],
}

impl Segment {
    fn channel_index(&self, from: HostId) -> usize {
        match &self.kind {
            SegmentKind::Lan { .. } => 0,
            SegmentKind::P2p { a, .. } => usize::from(from != *a),
        }
    }
}

type Handler = Rc<RefCell<dyn FnMut(Datagram)>>;

struct HostState {
    down: bool,
    loss: Box<dyn LossModel>,
    sockets: HashMap<Port, Handler>,
    groups: HashSet<GroupId>,
    /// Segments this host is attached to, in attachment order.
    segments: Vec<usize>,
}

struct NetState {
    segments: Vec<Segment>,
    hosts: Vec<HostState>,
    stats: TrafficStats,
}

/// Error binding a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The port already has a socket bound on this host.
    PortInUse(Port),
    /// Unknown host id.
    NoSuchHost(HostId),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::PortInUse(p) => write!(f, "port {} already bound", p.0),
            BindError::NoSuchHost(h) => write!(f, "no such host {h}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Handle to the simulated network. Clones share state.
///
/// Constructed through [`NetworkBuilder`](crate::NetworkBuilder).
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    state: Rc<RefCell<NetState>>,
    trace: Trace,
}

impl Network {
    pub(crate) fn from_parts(
        sim: Sim,
        segments: Vec<(SegmentConfig, Vec<HostId>, bool)>,
        n_hosts: usize,
        trace: Trace,
    ) -> Self {
        let mut hosts: Vec<HostState> = (0..n_hosts)
            .map(|_| HostState {
                down: false,
                loss: Box::new(NoLoss),
                sockets: HashMap::new(),
                groups: HashSet::new(),
                segments: Vec::new(),
            })
            .collect();
        let mut segs = Vec::new();
        for (idx, (config, members, p2p)) in segments.into_iter().enumerate() {
            for h in &members {
                hosts[h.0 as usize].segments.push(idx);
            }
            let kind = if p2p {
                assert_eq!(members.len(), 2, "point-to-point link needs exactly two hosts");
                SegmentKind::P2p { a: members[0], b: members[1] }
            } else {
                SegmentKind::Lan { members }
            };
            segs.push(Segment { config, kind, busy_until: [SimTime::ZERO; 2] });
        }
        let state = NetState { segments: segs, hosts, stats: TrafficStats::new(n_hosts) };
        Network { sim, state: Rc::new(RefCell::new(state)), trace }
    }

    /// The simulation this network is attached to.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.state.borrow().hosts.len()
    }

    /// Binds a receive handler at `addr`. The handler runs at delivery time;
    /// it may send packets and schedule events.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::PortInUse`] if the port is taken, or
    /// [`BindError::NoSuchHost`] for an unknown host.
    pub fn bind(
        &self,
        addr: Addr,
        handler: impl FnMut(Datagram) + 'static,
    ) -> Result<(), BindError> {
        let mut st = self.state.borrow_mut();
        let host =
            st.hosts.get_mut(addr.host.0 as usize).ok_or(BindError::NoSuchHost(addr.host))?;
        if host.sockets.contains_key(&addr.port) {
            return Err(BindError::PortInUse(addr.port));
        }
        host.sockets.insert(addr.port, Rc::new(RefCell::new(handler)));
        Ok(())
    }

    /// Removes the socket at `addr`, if any.
    pub fn unbind(&self, addr: Addr) {
        let mut st = self.state.borrow_mut();
        if let Some(h) = st.hosts.get_mut(addr.host.0 as usize) {
            h.sockets.remove(&addr.port);
        }
    }

    /// Joins `host` to a multicast group.
    pub fn join_group(&self, host: HostId, group: GroupId) {
        self.state.borrow_mut().hosts[host.0 as usize].groups.insert(group);
    }

    /// Removes `host` from a multicast group.
    pub fn leave_group(&self, host: HostId, group: GroupId) {
        self.state.borrow_mut().hosts[host.0 as usize].groups.remove(&group);
    }

    /// Installs a receive-side loss model on a host (fault injection).
    pub fn set_loss(&self, host: HostId, model: Box<dyn LossModel>) {
        self.state.borrow_mut().hosts[host.0 as usize].loss = model;
    }

    /// Marks a host up or down. A down host neither sends nor receives.
    pub fn set_host_down(&self, host: HostId, down: bool) {
        self.state.borrow_mut().hosts[host.0 as usize].down = down;
    }

    /// True if the host is marked down.
    pub fn is_host_down(&self, host: HostId) -> bool {
        self.state.borrow().hosts[host.0 as usize].down
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.state.borrow().stats.clone()
    }

    /// Sends `payload` from `from` to `dest`. Losses, MTU violations and
    /// queue overflows are recorded in [`stats`](Network::stats) rather than
    /// reported to the caller — exactly the feedback a UDP sender gets.
    pub fn send(&self, from: Addr, dest: Dest, payload: Bytes) {
        let now = self.sim.now();
        let wire = wire_bytes(payload.len());
        // Phase 1: admission + serialization under the borrow.
        let deliveries: Vec<(Addr, Option<GroupId>, SimTime)> = {
            let mut st = self.state.borrow_mut();
            if st.hosts[from.host.0 as usize].down {
                st.stats.on_drop(DropCause::HostDown);
                return;
            }
            let seg_idx = match self.route(&st, from.host, &dest) {
                Some(i) => i,
                None => {
                    st.stats.on_drop(DropCause::NoRoute);
                    self.trace.record_with(now, TraceKind::PacketDropped, || {
                        format!("{from}->{dest:?}: no route")
                    });
                    return;
                }
            };
            let seg = &st.segments[seg_idx];
            let mtu = seg.config.mtu;
            let ch = seg.channel_index(from.host);
            let backlog = seg.busy_until[ch].saturating_duration_since(now);
            let tx_buffer = seg.config.tx_buffer;
            let start = seg.busy_until[ch].max(now);
            let finish = start + seg.config.serialization(wire);
            let arrive = finish + seg.config.latency;
            if wire > mtu {
                st.stats.on_drop(DropCause::Mtu);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{dest:?}: frame {wire}B exceeds MTU {mtu}")
                });
                return;
            }
            if backlog > tx_buffer {
                st.stats.on_drop(DropCause::TxOverflow);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{dest:?}: tx overflow ({backlog:?} backlog)")
                });
                return;
            }
            st.segments[seg_idx].busy_until[ch] = finish;
            st.stats.on_tx(from.host.0 as usize, wire);
            self.trace.record_with(now, TraceKind::PacketSent, || {
                format!("{from}->{dest:?} {wire}B arrive={arrive}")
            });
            // Resolve receiver set.
            match dest {
                Dest::Unicast(to) => vec![(to, None, arrive)],
                Dest::Multicast(group, port) => {
                    let members: Vec<HostId> = match &st.segments[seg_idx].kind {
                        SegmentKind::Lan { members } => members.clone(),
                        SegmentKind::P2p { a, b } => vec![*a, *b],
                    };
                    members
                        .into_iter()
                        .filter(|h| *h != from.host)
                        .filter(|h| st.hosts[h.0 as usize].groups.contains(&group))
                        .map(|h| (Addr::new(h, port), Some(group), arrive))
                        .collect()
                }
            }
        };
        // Phase 2: schedule deliveries (outside the borrow).
        for (to, group, arrive) in deliveries {
            let this = self.clone();
            let payload = payload.clone();
            self.sim.schedule_at(arrive, move || this.deliver(from, to, group, payload, wire));
        }
    }

    /// Picks the segment shared by `from` and the destination.
    fn route(&self, st: &NetState, from: HostId, dest: &Dest) -> Option<usize> {
        let from_segs = &st.hosts[from.0 as usize].segments;
        match dest {
            Dest::Unicast(to) => {
                let to_segs = &st.hosts.get(to.host.0 as usize)?.segments;
                from_segs.iter().find(|s| to_segs.contains(s)).copied()
            }
            // Multicast goes out on the first LAN the sender is attached to.
            Dest::Multicast(..) => from_segs
                .iter()
                .find(|s| matches!(st.segments[**s].kind, SegmentKind::Lan { .. }))
                .copied(),
        }
    }

    fn deliver(&self, from: Addr, to: Addr, group: Option<GroupId>, payload: Bytes, wire: usize) {
        let now = self.sim.now();
        let handler: Option<Handler> = {
            let mut st = self.state.borrow_mut();
            let host = &mut st.hosts[to.host.0 as usize];
            if host.down {
                st.stats.on_drop(DropCause::HostDown);
                return;
            }
            if host.loss.should_drop(now, wire) {
                st.stats.on_drop(DropCause::LossModel);
                self.trace.record_with(now, TraceKind::PacketDropped, || {
                    format!("{from}->{to}: loss model")
                });
                return;
            }
            match host.sockets.get(&to.port) {
                Some(h) => {
                    let h = h.clone();
                    st.stats.on_rx(to.host.0 as usize, wire);
                    self.trace.record_with(now, TraceKind::PacketDelivered, || {
                        format!("{from}->{to} {wire}B")
                    });
                    Some(h)
                }
                None => {
                    st.stats.on_drop(DropCause::NoSocket);
                    None
                }
            }
        };
        if let Some(h) = handler {
            let dg = Datagram { from, to, group, payload };
            (h.borrow_mut())(dg);
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Network")
            .field("hosts", &st.hosts.len())
            .field("segments", &st.segments.len())
            .finish()
    }
}

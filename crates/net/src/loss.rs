//! Message-loss models, applied on packet *reception* as in the paper
//! (§5.3: "each message is discarded upon reception with the specified
//! probability"), so that loss is independent at each receiver — the
//! property that makes random loss so damaging to stability detection.

use dbsm_sim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Decides whether an arriving packet is discarded.
///
/// Implementations are deterministic given their seed, so fault-injection
/// runs are reproducible.
pub trait LossModel {
    /// Returns `true` if the packet arriving at `now` with the given wire
    /// size must be dropped.
    fn should_drop(&mut self, now: SimTime, wire_bytes: usize) -> bool;
}

/// Never drops (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        false
    }
}

/// Drops each packet independently with probability `p` — the paper's
/// *Random loss* fault, modelling transmission errors.
#[derive(Debug, Clone)]
pub struct RandomLoss {
    p: f64,
    rng: SmallRng,
}

impl RandomLoss {
    /// Creates a random-loss model dropping with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
        RandomLoss { p, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl LossModel for RandomLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        self.rng.gen_bool(self.p)
    }
}

/// Alternates between *receive* and *discard* periods of random duration —
/// the paper's *Bursty loss* fault, modelling network congestion.
///
/// Period lengths are drawn uniformly in `[0, 2·mean)` (mean-preserving, as
/// the paper specifies "bursts of average length … uniformly distributed").
/// The discard-period mean is chosen so the *long-run loss fraction* equals
/// the requested rate; e.g. 5 % loss in bursts averaging 5 packets.
#[derive(Debug, Clone)]
pub struct BurstyLoss {
    dropping: bool,
    /// Packets remaining in the current period.
    remaining: u32,
    mean_burst: f64,
    mean_gap: f64,
    rng: SmallRng,
}

impl BurstyLoss {
    /// Creates a bursty-loss model with overall `loss_fraction` of packets
    /// dropped, in bursts averaging `mean_burst_len` packets.
    ///
    /// # Panics
    ///
    /// Panics if `loss_fraction` is not in `(0, 1)` or `mean_burst_len == 0`.
    pub fn new(loss_fraction: f64, mean_burst_len: u32, seed: u64) -> Self {
        assert!(loss_fraction > 0.0 && loss_fraction < 1.0, "loss fraction out of range");
        assert!(mean_burst_len > 0, "burst length must be positive");
        let mean_burst = f64::from(mean_burst_len);
        // loss = burst / (burst + gap)  =>  gap = burst * (1 - p) / p
        let mean_gap = mean_burst * (1.0 - loss_fraction) / loss_fraction;
        let mut m = BurstyLoss {
            dropping: false,
            remaining: 0,
            mean_burst,
            mean_gap,
            rng: SmallRng::seed_from_u64(seed),
        };
        m.next_period(false);
        m
    }

    fn next_period(&mut self, dropping: bool) {
        self.dropping = dropping;
        let mean = if dropping { self.mean_burst } else { self.mean_gap };
        // Uniform in [0, 2*mean): mean-preserving random period length.
        let len = self.rng.gen_range(0.0..2.0 * mean);
        self.remaining = len.round().max(1.0) as u32;
    }
}

impl LossModel for BurstyLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        while self.remaining == 0 {
            let flip = !self.dropping;
            self.next_period(flip);
        }
        self.remaining -= 1;
        self.dropping
    }
}

/// Drops everything after a given instant — building block for crash faults
/// (a crashed node stops interacting entirely; the fault crate also halts
/// its outgoing traffic and timers).
#[derive(Debug, Clone, Copy)]
pub struct DropAfter {
    at: SimTime,
}

impl DropAfter {
    /// Creates a model dropping all packets arriving at or after `at`.
    pub fn new(at: SimTime) -> Self {
        DropAfter { at }
    }
}

impl LossModel for DropAfter {
    fn should_drop(&mut self, now: SimTime, _wire_bytes: usize) -> bool {
        now >= self.at
    }
}

/// Helper: expected long-run loss fraction of a model, estimated by driving
/// it with `n` synthetic arrivals spaced `gap` apart. Used by tests and by
/// fault-plan validation.
pub fn measure_loss_rate(model: &mut dyn LossModel, n: u32, gap: Duration) -> f64 {
    let mut now = SimTime::ZERO;
    let mut dropped = 0u32;
    for _ in 0..n {
        if model.should_drop(now, 1000) {
            dropped += 1;
        }
        now += gap;
    }
    f64::from(dropped) / f64::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_never_drops() {
        assert_eq!(measure_loss_rate(&mut NoLoss, 1000, Duration::from_micros(1)), 0.0);
    }

    #[test]
    fn random_loss_matches_probability() {
        let mut m = RandomLoss::new(0.05, 42);
        let rate = measure_loss_rate(&mut m, 100_000, Duration::from_micros(1));
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn random_loss_extremes() {
        let mut never = RandomLoss::new(0.0, 1);
        assert_eq!(measure_loss_rate(&mut never, 1000, Duration::from_micros(1)), 0.0);
        let mut always = RandomLoss::new(1.0, 1);
        assert_eq!(measure_loss_rate(&mut always, 1000, Duration::from_micros(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn random_loss_rejects_bad_probability() {
        let _ = RandomLoss::new(1.5, 0);
    }

    #[test]
    fn bursty_loss_matches_long_run_rate() {
        let mut m = BurstyLoss::new(0.05, 5, 7);
        let rate = measure_loss_rate(&mut m, 200_000, Duration::from_micros(1));
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bursty_loss_drops_in_runs() {
        // Consecutive drops should be far more likely than under independent
        // loss at the same rate: count drop->drop transitions.
        let mut m = BurstyLoss::new(0.05, 5, 11);
        let mut prev = false;
        let mut drops = 0u32;
        let mut pairs = 0u32;
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let d = m.should_drop(now, 1000);
            if d {
                drops += 1;
                if prev {
                    pairs += 1;
                }
            }
            prev = d;
            now += Duration::from_micros(1);
        }
        let p_pair = f64::from(pairs) / f64::from(drops);
        // Under independent 5% loss p(drop | drop) ~= 0.05; bursts of mean 5
        // give ~0.8.
        assert!(p_pair > 0.5, "drop->drop fraction {p_pair}");
    }

    #[test]
    fn drop_after_cuts_off() {
        let mut m = DropAfter::new(SimTime::from_secs(1));
        assert!(!m.should_drop(SimTime::from_millis(999), 100));
        assert!(m.should_drop(SimTime::from_secs(1), 100));
        assert!(m.should_drop(SimTime::from_secs(2), 100));
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let mut a = RandomLoss::new(0.3, 9);
        let mut b = RandomLoss::new(0.3, 9);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            assert_eq!(a.should_drop(now, 1), b.should_drop(now, 1));
            now += Duration::from_micros(1);
        }
    }
}

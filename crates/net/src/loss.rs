//! Message-loss models, applied on packet *reception* as in the paper
//! (§5.3: "each message is discarded upon reception with the specified
//! probability"), so that loss is independent at each receiver — the
//! property that makes random loss so damaging to stability detection.

use dbsm_sim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Decides whether an arriving packet is discarded.
///
/// Implementations are deterministic given their seed, so fault-injection
/// runs are reproducible.
pub trait LossModel {
    /// Returns `true` if the packet arriving at `now` with the given wire
    /// size must be dropped.
    fn should_drop(&mut self, now: SimTime, wire_bytes: usize) -> bool;
}

/// Never drops (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        false
    }
}

/// Drops each packet independently with probability `p` — the paper's
/// *Random loss* fault, modelling transmission errors.
#[derive(Debug, Clone)]
pub struct RandomLoss {
    p: f64,
    rng: SmallRng,
}

impl RandomLoss {
    /// Creates a random-loss model dropping with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
        RandomLoss { p, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl LossModel for RandomLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        self.rng.gen_bool(self.p)
    }
}

/// Alternates between *receive* and *discard* periods of random duration —
/// the paper's *Bursty loss* fault, modelling network congestion.
///
/// Period lengths are drawn uniformly in `[0, 2·mean)` (mean-preserving, as
/// the paper specifies "bursts of average length … uniformly distributed").
/// The discard-period mean is chosen so the *long-run loss fraction* equals
/// the requested rate; e.g. 5 % loss in bursts averaging 5 packets.
#[derive(Debug, Clone)]
pub struct BurstyLoss {
    dropping: bool,
    /// Packets remaining in the current period.
    remaining: u32,
    mean_burst: f64,
    mean_gap: f64,
    rng: SmallRng,
}

impl BurstyLoss {
    /// Creates a bursty-loss model with overall `loss_fraction` of packets
    /// dropped, in bursts averaging `mean_burst_len` packets.
    ///
    /// # Panics
    ///
    /// Panics if `loss_fraction` is not in `(0, 1)` or `mean_burst_len == 0`.
    pub fn new(loss_fraction: f64, mean_burst_len: u32, seed: u64) -> Self {
        assert!(loss_fraction > 0.0 && loss_fraction < 1.0, "loss fraction out of range");
        assert!(mean_burst_len > 0, "burst length must be positive");
        let mean_burst = f64::from(mean_burst_len);
        // loss = burst / (burst + gap)  =>  gap = burst * (1 - p) / p
        let mean_gap = mean_burst * (1.0 - loss_fraction) / loss_fraction;
        let mut m = BurstyLoss {
            dropping: false,
            remaining: 0,
            mean_burst,
            mean_gap,
            rng: SmallRng::seed_from_u64(seed),
        };
        m.next_period(false);
        m
    }

    fn next_period(&mut self, dropping: bool) {
        self.dropping = dropping;
        let mean = if dropping { self.mean_burst } else { self.mean_gap };
        // Uniform in [0, 2*mean): mean-preserving random period length.
        let len = self.rng.gen_range(0.0..2.0 * mean);
        self.remaining = len.round().max(1.0) as u32;
    }
}

impl LossModel for BurstyLoss {
    fn should_drop(&mut self, _now: SimTime, _wire_bytes: usize) -> bool {
        while self.remaining == 0 {
            let flip = !self.dropping;
            self.next_period(flip);
        }
        self.remaining -= 1;
        self.dropping
    }
}

/// Drops everything inside pseudo-randomly chosen *time windows* — the
/// building block of the correlated-burst fault: simulated time is sliced
/// into `window`-long slots and each slot independently becomes a blackout
/// with probability `p`, during which **every** arriving packet is dropped.
///
/// Unlike [`BurstyLoss`], whose burst schedule advances with each packet
/// (and therefore decorrelates across receivers), the blackout decision here
/// is a pure function of `(seed, slot index)`: two models constructed with
/// the *same seed* black out in the *same windows*, no matter how much
/// traffic each one sees. Installing same-seed clones on several hosts
/// yields loss bursts that hit all of them simultaneously — the correlated
/// congestion events that stall stability detection at every site at once.
///
/// # Examples
///
/// ```
/// use dbsm_net::{LossModel, WindowedBurst};
/// use dbsm_sim::SimTime;
/// use std::time::Duration;
///
/// let mut a = WindowedBurst::new(Duration::from_millis(10), 0.2, 7);
/// let mut b = WindowedBurst::new(Duration::from_millis(10), 0.2, 7);
/// for ms in 0..200 {
///     let now = SimTime::from_millis(ms);
///     // Same seed => identical blackout schedule at both receivers.
///     assert_eq!(a.should_drop(now, 100), b.should_drop(now, 100));
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WindowedBurst {
    window_ns: u64,
    /// Blackout probability scaled to a 64-bit threshold.
    threshold: u64,
    seed: u64,
}

impl WindowedBurst {
    /// Creates a windowed-burst model: each `window`-long slot of simulated
    /// time is a total blackout with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `window` is zero.
    pub fn new(window: Duration, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "burst probability out of range: {p}");
        assert!(!window.is_zero(), "burst window must be positive");
        let threshold = if p >= 1.0 { u64::MAX } else { (p * u64::MAX as f64) as u64 };
        WindowedBurst { window_ns: window.as_nanos() as u64, threshold, seed }
    }

    /// True if the slot containing `now` is a blackout window.
    pub fn in_burst(&self, now: SimTime) -> bool {
        let slot = now.as_nanos() / self.window_ns;
        // SplitMix64 finalizer over (seed, slot): deterministic, stateless,
        // and identical for every same-seed clone.
        let mut z = self.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z <= self.threshold && self.threshold > 0
    }
}

impl LossModel for WindowedBurst {
    fn should_drop(&mut self, now: SimTime, _wire_bytes: usize) -> bool {
        self.in_burst(now)
    }
}

/// Drops everything after a given instant — building block for crash faults
/// (a crashed node stops interacting entirely; the fault crate also halts
/// its outgoing traffic and timers).
#[derive(Debug, Clone, Copy)]
pub struct DropAfter {
    at: SimTime,
}

impl DropAfter {
    /// Creates a model dropping all packets arriving at or after `at`.
    pub fn new(at: SimTime) -> Self {
        DropAfter { at }
    }
}

impl LossModel for DropAfter {
    fn should_drop(&mut self, now: SimTime, _wire_bytes: usize) -> bool {
        now >= self.at
    }
}

/// Helper: expected long-run loss fraction of a model, estimated by driving
/// it with `n` synthetic arrivals spaced `gap` apart. Used by tests and by
/// fault-plan validation.
pub fn measure_loss_rate(model: &mut dyn LossModel, n: u32, gap: Duration) -> f64 {
    let mut now = SimTime::ZERO;
    let mut dropped = 0u32;
    for _ in 0..n {
        if model.should_drop(now, 1000) {
            dropped += 1;
        }
        now += gap;
    }
    f64::from(dropped) / f64::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_never_drops() {
        assert_eq!(measure_loss_rate(&mut NoLoss, 1000, Duration::from_micros(1)), 0.0);
    }

    #[test]
    fn random_loss_matches_probability() {
        let mut m = RandomLoss::new(0.05, 42);
        let rate = measure_loss_rate(&mut m, 100_000, Duration::from_micros(1));
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn random_loss_extremes() {
        let mut never = RandomLoss::new(0.0, 1);
        assert_eq!(measure_loss_rate(&mut never, 1000, Duration::from_micros(1)), 0.0);
        let mut always = RandomLoss::new(1.0, 1);
        assert_eq!(measure_loss_rate(&mut always, 1000, Duration::from_micros(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn random_loss_rejects_bad_probability() {
        let _ = RandomLoss::new(1.5, 0);
    }

    #[test]
    fn bursty_loss_matches_long_run_rate() {
        let mut m = BurstyLoss::new(0.05, 5, 7);
        let rate = measure_loss_rate(&mut m, 200_000, Duration::from_micros(1));
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bursty_loss_drops_in_runs() {
        // Consecutive drops should be far more likely than under independent
        // loss at the same rate: count drop->drop transitions.
        let mut m = BurstyLoss::new(0.05, 5, 11);
        let mut prev = false;
        let mut drops = 0u32;
        let mut pairs = 0u32;
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let d = m.should_drop(now, 1000);
            if d {
                drops += 1;
                if prev {
                    pairs += 1;
                }
            }
            prev = d;
            now += Duration::from_micros(1);
        }
        let p_pair = f64::from(pairs) / f64::from(drops);
        // Under independent 5% loss p(drop | drop) ~= 0.05; bursts of mean 5
        // give ~0.8.
        assert!(p_pair > 0.5, "drop->drop fraction {p_pair}");
    }

    #[test]
    fn windowed_burst_long_run_rate_tracks_p() {
        let mut m = WindowedBurst::new(Duration::from_micros(100), 0.2, 3);
        let rate = measure_loss_rate(&mut m, 100_000, Duration::from_micros(7));
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn windowed_burst_is_all_or_nothing_per_window() {
        let m = WindowedBurst::new(Duration::from_millis(1), 0.3, 11);
        for w in 0..200u64 {
            let burst = m.in_burst(SimTime::from_millis(w));
            // Every instant inside the same window agrees with its start.
            for off in [1u64, 499, 999] {
                let t = SimTime::from_nanos(w * 1_000_000 + off * 1_000);
                assert_eq!(m.clone().should_drop(t, 64), burst, "window {w} offset {off}");
            }
        }
    }

    #[test]
    fn windowed_burst_correlates_across_same_seed_clones() {
        let mut a = WindowedBurst::new(Duration::from_millis(5), 0.25, 9);
        let mut b = a;
        let mut differs_from_other_seed = false;
        let c = WindowedBurst::new(Duration::from_millis(5), 0.25, 10);
        for ms in 0..2000u64 {
            let now = SimTime::from_millis(ms);
            assert_eq!(a.should_drop(now, 1), b.should_drop(now, 1), "same seed, same fate");
            if a.in_burst(now) != c.in_burst(now) {
                differs_from_other_seed = true;
            }
        }
        assert!(differs_from_other_seed, "different seeds must give different schedules");
    }

    #[test]
    fn windowed_burst_extremes() {
        let mut never = WindowedBurst::new(Duration::from_millis(1), 0.0, 1);
        assert_eq!(measure_loss_rate(&mut never, 1000, Duration::from_micros(10)), 0.0);
        let mut always = WindowedBurst::new(Duration::from_millis(1), 1.0, 1);
        assert_eq!(measure_loss_rate(&mut always, 1000, Duration::from_micros(10)), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn windowed_burst_rejects_bad_probability() {
        let _ = WindowedBurst::new(Duration::from_millis(1), 1.1, 0);
    }

    #[test]
    fn drop_after_cuts_off() {
        let mut m = DropAfter::new(SimTime::from_secs(1));
        assert!(!m.should_drop(SimTime::from_millis(999), 100));
        assert!(m.should_drop(SimTime::from_secs(1), 100));
        assert!(m.should_drop(SimTime::from_secs(2), 100));
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let mut a = RandomLoss::new(0.3, 9);
        let mut b = RandomLoss::new(0.3, 9);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            assert_eq!(a.should_drop(now, 1), b.should_drop(now, 1));
            now += Duration::from_micros(1);
        }
    }
}

//! Traffic accounting — the data behind Fig. 6(c) (network KB/s) and the
//! drop diagnostics used when analysing fault-injection runs.

use std::collections::HashMap;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Receiver-side loss model (random/bursty loss, crash).
    LossModel,
    /// Transmit backlog exceeded the NIC/channel buffer.
    TxOverflow,
    /// Frame larger than the segment MTU (we enforce the MTU SSFNet did not).
    Mtu,
    /// Destination host is down.
    HostDown,
    /// Destination port has no bound socket.
    NoSocket,
    /// No common segment between the two hosts.
    NoRoute,
    /// Sender and receiver are in different partition segments (the
    /// partition fault splits the network until it heals).
    Partition,
}

/// Per-host byte/packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostTraffic {
    /// Payload+header bytes transmitted onto a wire.
    pub tx_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes delivered to sockets on this host.
    pub rx_bytes: u64,
    /// Packets delivered.
    pub rx_packets: u64,
}

/// Aggregated network statistics.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    per_host: Vec<HostTraffic>,
    drops: HashMap<DropCause, u64>,
    dup_injected: u64,
}

impl TrafficStats {
    /// Creates counters for `n` hosts.
    pub fn new(n: usize) -> Self {
        TrafficStats {
            per_host: vec![HostTraffic::default(); n],
            drops: HashMap::new(),
            dup_injected: 0,
        }
    }

    pub(crate) fn on_tx(&mut self, host: usize, wire_bytes: usize) {
        let h = &mut self.per_host[host];
        h.tx_bytes += wire_bytes as u64;
        h.tx_packets += 1;
    }

    pub(crate) fn on_rx(&mut self, host: usize, wire_bytes: usize) {
        let h = &mut self.per_host[host];
        h.rx_bytes += wire_bytes as u64;
        h.rx_packets += 1;
    }

    pub(crate) fn on_drop(&mut self, cause: DropCause) {
        *self.drops.entry(cause).or_insert(0) += 1;
    }

    pub(crate) fn on_dup(&mut self, copies: u64) {
        self.dup_injected += copies;
    }

    /// Duplicate packet copies injected by the duplicate-delivery fault.
    pub fn duplicates_injected(&self) -> u64 {
        self.dup_injected
    }

    /// Counters for one host.
    pub fn host(&self, idx: usize) -> HostTraffic {
        self.per_host.get(idx).copied().unwrap_or_default()
    }

    /// Total bytes put on wires by all hosts.
    pub fn total_tx_bytes(&self) -> u64 {
        self.per_host.iter().map(|h| h.tx_bytes).sum()
    }

    /// Total bytes delivered to sockets.
    pub fn total_rx_bytes(&self) -> u64 {
        self.per_host.iter().map(|h| h.rx_bytes).sum()
    }

    /// Packets dropped for a given cause.
    pub fn drops(&self, cause: DropCause) -> u64 {
        self.drops.get(&cause).copied().unwrap_or(0)
    }

    /// All drops, any cause.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::new(2);
        s.on_tx(0, 100);
        s.on_tx(0, 50);
        s.on_rx(1, 100);
        s.on_drop(DropCause::Mtu);
        s.on_drop(DropCause::Mtu);
        assert_eq!(s.host(0).tx_bytes, 150);
        assert_eq!(s.host(0).tx_packets, 2);
        assert_eq!(s.host(1).rx_packets, 1);
        assert_eq!(s.drops(DropCause::Mtu), 2);
        assert_eq!(s.drops(DropCause::LossModel), 0);
        assert_eq!(s.total_tx_bytes(), 150);
        assert_eq!(s.total_drops(), 2);
    }

    #[test]
    fn unknown_host_is_zero() {
        let s = TrafficStats::new(1);
        assert_eq!(s.host(99), HostTraffic::default());
    }
}

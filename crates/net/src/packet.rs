//! Datagrams and on-the-wire framing.

use crate::addr::{Addr, GroupId, Port};
use bytes::Bytes;

/// Ethernet + IP + UDP framing overhead added to every payload, in bytes.
///
/// 14 (Ethernet header) + 20 (IPv4) + 8 (UDP). The Ethernet preamble and
/// inter-frame gap are folded into the link's effective bandwidth instead.
pub const HEADER_BYTES: usize = 42;

/// Minimum Ethernet frame size in bytes; shorter frames are padded.
pub const MIN_FRAME_BYTES: usize = 64;

/// A datagram as seen by a receiving socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender endpoint.
    pub from: Addr,
    /// Destination (the receiving socket's endpoint).
    pub to: Addr,
    /// Multicast group the datagram was addressed to, if any.
    pub group: Option<GroupId>,
    /// Application payload.
    pub payload: Bytes,
}

/// Destination of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// One receiver.
    Unicast(Addr),
    /// All members of a group on the sender's LAN, at the given port.
    Multicast(GroupId, Port),
}

/// Bytes occupying the wire for a payload of `payload_len` bytes.
pub fn wire_bytes(payload_len: usize) -> usize {
    (payload_len + HEADER_BYTES).max(MIN_FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_pads_small_frames() {
        assert_eq!(wire_bytes(0), MIN_FRAME_BYTES);
        assert_eq!(wire_bytes(10), MIN_FRAME_BYTES);
        assert_eq!(wire_bytes(100), 142);
    }
}

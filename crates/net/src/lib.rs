//! # dbsm-net — simulated network (the SSFNet role)
//!
//! Models the network environment of the paper's testbed (§2.1, §4.1):
//! shared-medium LAN segments (100 Mbps Fast Ethernet with latency, MTU and
//! drop-tail transmit buffers), point-to-point WAN links, UDP-like sockets,
//! IP multicast restricted to the local segment (the group-communication
//! prototype falls back to unicast across segments, as in §3.4), receive-side
//! loss models for fault injection (§5.3), and per-host traffic accounting
//! (Fig. 6c).
//!
//! The network is purely a *wire* model: CPU costs of sending/receiving are
//! charged by the protocol bridges in `dbsm-gcs` (the four CSRT overhead
//! parameters of §4.1), keeping the separation the paper draws between the
//! simulated environment and the real protocol code.
//!
//! # Examples
//!
//! ```
//! use dbsm_net::{NetworkBuilder, SegmentConfig, Addr, Port, Dest};
//! use dbsm_sim::Sim;
//! use bytes::Bytes;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sim = Sim::new();
//! let mut b = NetworkBuilder::new(&sim);
//! let lan = b.lan(SegmentConfig::fast_ethernet());
//! let h0 = b.host(lan);
//! let h1 = b.host(lan);
//! let net = b.build();
//!
//! let got = Rc::new(RefCell::new(Vec::new()));
//! let sink = got.clone();
//! net.bind(Addr::new(h1, Port(9)), move |dg| sink.borrow_mut().push(dg.payload.clone()))?;
//! net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::from_static(b"ping"));
//! sim.run();
//! assert_eq!(got.borrow().len(), 1);
//! # Ok::<(), dbsm_net::BindError>(())
//! ```

#![warn(missing_docs)]

mod addr;
mod builder;
mod loss;
mod monitor;
mod network;
mod packet;

pub use addr::{Addr, GroupId, HostId, Port};
pub use builder::{NetworkBuilder, SegmentHandle};
pub use loss::{
    measure_loss_rate, BurstyLoss, DropAfter, LossModel, NoLoss, RandomLoss, WindowedBurst,
};
pub use monitor::{DropCause, HostTraffic, TrafficStats};
pub use network::{BindError, Network, SegmentConfig};
pub use packet::{wire_bytes, Datagram, Dest, HEADER_BYTES, MIN_FRAME_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dbsm_sim::{Sim, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    fn two_host_lan() -> (Sim, Network, HostId, HostId) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let h0 = b.host(lan);
        let h1 = b.host(lan);
        (sim.clone(), b.build(), h0, h1)
    }

    fn collector(net: &Network, at: Addr) -> Rc<RefCell<Vec<(SimTime, Datagram)>>> {
        let got: Rc<RefCell<Vec<(SimTime, Datagram)>>> = Rc::default();
        let sink = got.clone();
        let sim = net.sim().clone();
        net.bind(at, move |dg| sink.borrow_mut().push((sim.now(), dg))).expect("bind");
        got
    }

    #[test]
    fn unicast_delivery_time_matches_analytic_model() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        let payload = Bytes::from(vec![0u8; 958]); // wire = 1000B
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), payload);
        sim.run();
        let (at, dg) = got.borrow()[0].clone();
        // 1000B at 100Mbps = 80us serialization + 50us latency.
        assert_eq!(at, SimTime::from_micros(130));
        assert_eq!(dg.payload.len(), 958);
        assert_eq!(dg.from, Addr::new(h0, Port(1)));
    }

    #[test]
    fn back_to_back_sends_serialize_on_the_channel() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        for _ in 0..2 {
            let payload = Bytes::from(vec![0u8; 958]);
            net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), payload);
        }
        sim.run();
        let times: Vec<SimTime> = got.borrow().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![SimTime::from_micros(130), SimTime::from_micros(210)]);
    }

    #[test]
    fn multicast_reaches_group_members_only() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let hosts: Vec<HostId> = (0..4).map(|_| b.host(lan)).collect();
        let net = b.build();
        let g = GroupId(5);
        // Hosts 1 and 2 join; host 3 does not. The sender's own copy is not
        // looped back (IP_MULTICAST_LOOP off, as the GCS prototype assumes).
        net.join_group(hosts[0], g);
        net.join_group(hosts[1], g);
        net.join_group(hosts[2], g);
        let got1 = collector(&net, Addr::new(hosts[1], Port(9)));
        let got2 = collector(&net, Addr::new(hosts[2], Port(9)));
        let got3 = collector(&net, Addr::new(hosts[3], Port(9)));
        net.send(
            Addr::new(hosts[0], Port(1)),
            Dest::Multicast(g, Port(9)),
            Bytes::from_static(b"m"),
        );
        sim.run();
        assert_eq!(got1.borrow().len(), 1);
        assert_eq!(got2.borrow().len(), 1);
        assert_eq!(got3.borrow().len(), 0);
        assert_eq!(got1.borrow()[0].1.group, Some(g));
        // One transmission on the wire regardless of receiver count.
        assert_eq!(net.stats().host(0).tx_packets, 1);
    }

    #[test]
    fn mtu_violations_are_dropped_and_counted() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        net.send(
            Addr::new(h0, Port(1)),
            Dest::Unicast(Addr::new(h1, Port(9))),
            Bytes::from(vec![0u8; 2000]),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(net.stats().drops(DropCause::Mtu), 1);
    }

    #[test]
    fn tx_overflow_drops_excess_packets() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        // 20ms buffer at 100Mbps fits 250 x 1000B frames; send 400.
        for _ in 0..400 {
            net.send(
                Addr::new(h0, Port(1)),
                Dest::Unicast(Addr::new(h1, Port(9))),
                Bytes::from(vec![0u8; 958]),
            );
        }
        sim.run();
        let delivered = got.borrow().len() as u64;
        let dropped = net.stats().drops(DropCause::TxOverflow);
        assert_eq!(delivered + dropped, 400);
        assert!(dropped > 100, "dropped {dropped}");
    }

    #[test]
    fn receive_loss_model_applies() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        net.set_loss(h1, Box::new(RandomLoss::new(1.0, 1)));
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(net.stats().drops(DropCause::LossModel), 1);
    }

    #[test]
    fn down_host_neither_sends_nor_receives() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        net.set_host_down(h1, true);
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(net.stats().drops(DropCause::HostDown), 1);

        net.set_host_down(h1, false);
        net.set_host_down(h0, true);
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert!(net.is_host_down(h0));
    }

    #[test]
    fn stacked_loss_models_compose_and_all_observe_traffic() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        // A drop-everything model stacked on a drop-nothing model: the
        // union drops everything; set_loss afterwards replaces the stack.
        net.add_loss(h1, Box::new(RandomLoss::new(0.0, 1)));
        net.add_loss(h1, Box::new(RandomLoss::new(1.0, 2)));
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got.borrow().len(), 0, "any stacked model may drop");
        assert_eq!(net.stats().drops(DropCause::LossModel), 1);
        net.set_loss(h1, Box::new(RandomLoss::new(0.0, 3)));
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got.borrow().len(), 1, "set_loss replaced the stack");
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_healed() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let hosts: Vec<HostId> = (0..3).map(|_| b.host(lan)).collect();
        let net = b.build();
        let got1 = collector(&net, Addr::new(hosts[1], Port(9)));
        let got2 = collector(&net, Addr::new(hosts[2], Port(9)));
        net.set_partition(&[vec![hosts[0], hosts[1]], vec![hosts[2]]]);
        assert!(!net.is_partitioned(hosts[0], hosts[1]));
        assert!(net.is_partitioned(hosts[0], hosts[2]));
        let from = Addr::new(hosts[0], Port(1));
        net.send(from, Dest::Unicast(Addr::new(hosts[1], Port(9))), Bytes::from_static(b"in"));
        net.send(from, Dest::Unicast(Addr::new(hosts[2], Port(9))), Bytes::from_static(b"out"));
        sim.run();
        assert_eq!(got1.borrow().len(), 1, "same segment delivers");
        assert_eq!(got2.borrow().len(), 0, "cross-segment dropped");
        assert_eq!(net.stats().drops(DropCause::Partition), 1);
        net.clear_partition();
        net.send(from, Dest::Unicast(Addr::new(hosts[2], Port(9))), Bytes::from_static(b"heal"));
        sim.run();
        assert_eq!(got2.borrow().len(), 1, "healed network delivers again");
    }

    #[test]
    fn partition_drops_packets_in_flight_at_the_split() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        // Sent pre-split, arriving (130us later) after the split lands.
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        let net2 = net.clone();
        sim.schedule_at(SimTime::from_micros(10), move || {
            net2.set_partition(&[vec![h0], vec![h1]]);
        });
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(net.stats().drops(DropCause::Partition), 1);
    }

    #[test]
    fn unlisted_hosts_are_isolated_by_a_partition() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let hosts: Vec<HostId> = (0..3).map(|_| b.host(lan)).collect();
        let net = b.build();
        net.set_partition(&[vec![hosts[0], hosts[1]]]);
        assert!(net.is_partitioned(hosts[0], hosts[2]));
        assert!(net.is_partitioned(hosts[2], hosts[1]));
        assert!(!net.is_partitioned(hosts[0], hosts[1]));
    }

    #[test]
    fn duplicate_delivery_injects_extra_copies() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        net.set_duplication(h1, 1.0, 2, 42);
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        let n = got.borrow().len();
        assert!((2..=3).contains(&n), "original + 1..=2 copies, got {n}");
        assert_eq!(net.stats().duplicates_injected(), n as u64 - 1);
        // Copies arrive after the original, 50us apart.
        let times: Vec<SimTime> = got.borrow().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn duplicates_do_not_multiply_and_zero_p_is_silent() {
        let (sim, net, h0, h1) = two_host_lan();
        let got = collector(&net, Addr::new(h1, Port(9)));
        net.set_duplication(h1, 0.0, 3, 1);
        for _ in 0..20 {
            net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        }
        sim.run();
        assert_eq!(got.borrow().len(), 20, "p=0 injects nothing");
        assert_eq!(net.stats().duplicates_injected(), 0);
    }

    #[test]
    fn unbound_port_counts_no_socket() {
        let (sim, net, h0, h1) = two_host_lan();
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(99))), Bytes::new());
        sim.run();
        assert_eq!(net.stats().drops(DropCause::NoSocket), 1);
    }

    #[test]
    fn bind_conflicts_are_errors() {
        let (_sim, net, _h0, h1) = two_host_lan();
        net.bind(Addr::new(h1, Port(9)), |_| {}).expect("first bind");
        let err = net.bind(Addr::new(h1, Port(9)), |_| {}).expect_err("duplicate");
        assert_eq!(err, BindError::PortInUse(Port(9)));
        let err = net.bind(Addr::new(HostId(42), Port(9)), |_| {}).expect_err("bad host");
        assert_eq!(err, BindError::NoSuchHost(HostId(42)));
        net.unbind(Addr::new(h1, Port(9)));
        net.bind(Addr::new(h1, Port(9)), |_| {}).expect("rebind after unbind");
    }

    #[test]
    fn cross_segment_unicast_without_route_is_dropped() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan1 = b.lan(SegmentConfig::fast_ethernet());
        let lan2 = b.lan(SegmentConfig::fast_ethernet());
        let h0 = b.host(lan1);
        let h1 = b.host(lan2);
        let net = b.build();
        net.bind(Addr::new(h1, Port(9)), |_| {}).expect("bind");
        net.send(Addr::new(h0, Port(1)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(net.stats().drops(DropCause::NoRoute), 1);
    }

    #[test]
    fn wan_p2p_link_carries_unicast_both_ways() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let h0 = b.isolated_host();
        let h1 = b.isolated_host();
        b.p2p(h0, h1, SegmentConfig::wan(10_000_000.0, Duration::from_millis(20)));
        let net = b.build();
        let got0 = collector(&net, Addr::new(h0, Port(9)));
        let got1 = collector(&net, Addr::new(h1, Port(9)));
        net.send(Addr::new(h0, Port(9)), Dest::Unicast(Addr::new(h1, Port(9))), Bytes::new());
        net.send(Addr::new(h1, Port(9)), Dest::Unicast(Addr::new(h0, Port(9))), Bytes::new());
        sim.run();
        assert_eq!(got0.borrow().len(), 1);
        assert_eq!(got1.borrow().len(), 1);
        // Full duplex: both directions see only their own serialization.
        // 64B at 10Mbps = 51.2us + 20ms latency.
        let expect = SimTime::ZERO + Duration::from_micros(51) + Duration::from_millis(20);
        let t0 = got0.borrow()[0].0;
        let t1 = got1.borrow()[0].0;
        assert!(t0.saturating_duration_since(expect) < Duration::from_micros(2));
        assert_eq!(t0, t1);
    }

    #[test]
    fn handlers_can_send_replies() {
        let (sim, net, h0, h1) = two_host_lan();
        let net2 = net.clone();
        net.bind(Addr::new(h1, Port(9)), move |dg| {
            net2.send(Addr::new(dg.to.host, Port(9)), Dest::Unicast(dg.from), dg.payload);
        })
        .expect("bind responder");
        let got = collector(&net, Addr::new(h0, Port(1)));
        net.send(
            Addr::new(h0, Port(1)),
            Dest::Unicast(Addr::new(h1, Port(9))),
            Bytes::from_static(b"x"),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 1, "round trip completed");
    }

    #[test]
    fn traffic_counters_track_bytes() {
        let (sim, net, h0, h1) = two_host_lan();
        let _got = collector(&net, Addr::new(h1, Port(9)));
        net.send(
            Addr::new(h0, Port(1)),
            Dest::Unicast(Addr::new(h1, Port(9))),
            Bytes::from(vec![0u8; 100]),
        );
        sim.run();
        assert_eq!(net.stats().host(0).tx_bytes, 142);
        assert_eq!(net.stats().host(1).rx_bytes, 142);
        assert_eq!(net.stats().total_tx_bytes(), 142);
    }
}

//! Topology construction.

use crate::addr::HostId;
use crate::network::{Network, SegmentConfig};
use dbsm_sim::{Sim, Trace};

/// Builds a [`Network`] topology: hosts attached to LAN segments and/or
/// point-to-point WAN links.
///
/// # Examples
///
/// ```
/// use dbsm_net::{NetworkBuilder, SegmentConfig};
/// use dbsm_sim::Sim;
///
/// let sim = Sim::new();
/// let mut b = NetworkBuilder::new(&sim);
/// let lan = b.lan(SegmentConfig::fast_ethernet());
/// let h0 = b.host(lan);
/// let h1 = b.host(lan);
/// let net = b.build();
/// assert_eq!(net.n_hosts(), 2);
/// # let _ = (h0, h1);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    sim: Sim,
    segments: Vec<(SegmentConfig, Vec<HostId>, bool)>,
    n_hosts: usize,
    trace: Trace,
}

/// Identifier of a segment under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHandle(usize);

impl NetworkBuilder {
    /// Starts building a topology on the given simulation.
    pub fn new(sim: &Sim) -> Self {
        NetworkBuilder {
            sim: sim.clone(),
            segments: Vec::new(),
            n_hosts: 0,
            trace: Trace::disabled(),
        }
    }

    /// Enables packet tracing with the given buffer capacity.
    pub fn trace(&mut self, trace: Trace) -> &mut Self {
        self.trace = trace;
        self
    }

    /// Adds a LAN segment.
    pub fn lan(&mut self, config: SegmentConfig) -> SegmentHandle {
        self.segments.push((config, Vec::new(), false));
        SegmentHandle(self.segments.len() - 1)
    }

    /// Adds a host attached to `segment`.
    pub fn host(&mut self, segment: SegmentHandle) -> HostId {
        let id = HostId(u16::try_from(self.n_hosts).expect("too many hosts"));
        self.n_hosts += 1;
        self.segments[segment.0].1.push(id);
        id
    }

    /// Adds a host with no initial attachment (attach later with
    /// [`attach`](NetworkBuilder::attach) or via [`p2p`](NetworkBuilder::p2p)).
    pub fn isolated_host(&mut self) -> HostId {
        let id = HostId(u16::try_from(self.n_hosts).expect("too many hosts"));
        self.n_hosts += 1;
        id
    }

    /// Attaches an existing host to an additional segment (multihoming).
    pub fn attach(&mut self, host: HostId, segment: SegmentHandle) -> &mut Self {
        self.segments[segment.0].1.push(host);
        self
    }

    /// Adds a full-duplex point-to-point link between two existing hosts
    /// (wide-area scenarios).
    pub fn p2p(&mut self, a: HostId, b: HostId, config: SegmentConfig) -> SegmentHandle {
        self.segments.push((config, vec![a, b], true));
        SegmentHandle(self.segments.len() - 1)
    }

    /// Finalizes the topology.
    pub fn build(self) -> Network {
        Network::from_parts(self.sim, self.segments, self.n_hosts, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_segment_topologies() {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan1 = b.lan(SegmentConfig::fast_ethernet());
        let lan2 = b.lan(SegmentConfig::fast_ethernet());
        let h0 = b.host(lan1);
        let h1 = b.host(lan2);
        let router = b.host(lan1);
        b.attach(router, lan2);
        b.p2p(h0, h1, SegmentConfig::wan(10_000_000.0, std::time::Duration::from_millis(20)));
        let net = b.build();
        assert_eq!(net.n_hosts(), 3);
    }
}

//! Addressing: hosts, ports, endpoints and multicast groups.

use std::fmt;

/// Identifier of a simulated host (dense index assigned by the builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u16);

/// A UDP-like port on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

/// A multicast group identifier (the role of a class-D IP address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u16);

/// A full endpoint: host + port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// Destination host.
    pub host: HostId,
    /// Destination port.
    pub port: Port,
}

impl Addr {
    /// Creates an endpoint.
    pub const fn new(host: HostId, port: Port) -> Self {
        Addr { host, port }
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(HostId(3), Port(7001)).to_string(), "h3:7001");
        assert_eq!(GroupId(1).to_string(), "g1");
        assert_eq!(HostId(2).to_string(), "h2");
    }
}

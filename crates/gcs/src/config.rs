//! Configuration of the group-communication stack.

use crate::types::NodeId;
use std::time::Duration;

/// The four CSRT calibration parameters (§4.1): "fixed and variable CPU
/// overhead when a message is sent and received", determined in the paper by
/// a network flooding benchmark. Charged by the simulation bridge; unused by
/// the native bridge (real cycles are spent there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Fixed CPU cost per send.
    pub send_fixed: Duration,
    /// CPU cost per sent byte, in nanoseconds.
    pub send_per_byte_ns: f64,
    /// Fixed CPU cost per receive.
    pub recv_fixed: Duration,
    /// CPU cost per received byte, in nanoseconds.
    pub recv_per_byte_ns: f64,
}

impl OverheadModel {
    /// Values calibrated against the paper's test system (1 GHz PIII): a
    /// single process saturates around 500–600 Mbit/s of 4 KB UDP writes
    /// (Fig. 3a), which decomposes to ≈18 µs fixed + ≈9 ns/byte on send and
    /// slightly more on receive.
    pub fn pentium3_1ghz() -> Self {
        OverheadModel {
            send_fixed: Duration::from_micros(18),
            send_per_byte_ns: 9.0,
            recv_fixed: Duration::from_micros(20),
            recv_per_byte_ns: 10.0,
        }
    }

    /// Cost of sending a packet of `bytes`.
    pub fn send_cost(&self, bytes: usize) -> Duration {
        self.send_fixed + Duration::from_nanos((self.send_per_byte_ns * bytes as f64) as u64)
    }

    /// Cost of receiving a packet of `bytes`.
    pub fn recv_cost(&self, bytes: usize) -> Duration {
        self.recv_fixed + Duration::from_nanos((self.recv_per_byte_ns * bytes as f64) as u64)
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::pentium3_1ghz()
    }
}

/// Sequencer announcement batching policy: how long the sequencer may hold
/// freshly made assignments before flushing them in one `SeqAnn` through the
/// reliable layer.
///
/// The flush window is consulted with the sequencer's current *backlog* —
/// assignments already waiting plus send-queue occupancy, i.e. the work
/// queued besides the assignment that triggered the consult. `Immediate` is
/// the paper-faithful prototype behaviour (one announcement per application
/// message); `Adaptive` flushes in one hop when idle and widens the window
/// toward `max` as backlog grows, so one announcement carries many
/// assignments exactly when announcement traffic would otherwise compete
/// with data for the sequencer's buffer share (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnBatchPolicy {
    /// Announce every assignment as soon as it is made.
    Immediate,
    /// Hold assignments for a fixed window regardless of load.
    Fixed(Duration),
    /// Backlog-proportional window: `min` per unit of backlog, capped at
    /// `max`; zero backlog flushes immediately.
    Adaptive {
        /// Window granted per unit of backlog (also the smallest armed
        /// window).
        min: Duration,
        /// Hard ceiling on the flush window.
        max: Duration,
    },
}

impl AnnBatchPolicy {
    /// Adaptive defaults calibrated for the LAN configuration: 500 µs per
    /// backlog unit, capped at 2 ms (the fixed window the ablation bench
    /// established as helpful under load). At the paper's 2000-client
    /// operating point the sequencer's unstable buffer keeps a handful of
    /// fragments in flight, so the window sits at the cap under load and
    /// collapses to an immediate flush at idle.
    pub fn adaptive_lan() -> Self {
        AnnBatchPolicy::Adaptive { min: Duration::from_micros(500), max: Duration::from_millis(2) }
    }

    /// The flush window to wait given `backlog` units of pending sequencer
    /// work; `None` means flush immediately.
    pub fn window(self, backlog: usize) -> Option<Duration> {
        match self {
            AnnBatchPolicy::Immediate => None,
            AnnBatchPolicy::Fixed(d) => (!d.is_zero()).then_some(d),
            AnnBatchPolicy::Adaptive { min, max } => {
                let ns = min.as_nanos().saturating_mul(backlog as u128).min(max.as_nanos());
                (ns > 0).then(|| Duration::from_nanos(ns as u64))
            }
        }
    }
}

/// Tunables of the group-communication prototype (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct GcsConfig {
    /// Number of nodes in the universe (initial view = all of them).
    pub n_nodes: usize,
    /// Maximum packet size on the wire, including protocol headers. The
    /// paper restricts packets to "a safe value" below the problematic
    /// 1000-byte boundary it found in SSFNet; we default to 1000 bytes.
    pub max_packet: usize,
    /// Stability gossip period.
    pub gossip_period: Duration,
    /// Heartbeat emission period.
    pub heartbeat_period: Duration,
    /// Failure-detector timeout: a silent member is suspected after this.
    pub failure_timeout: Duration,
    /// Gap age before the first NAK is sent.
    pub nak_delay: Duration,
    /// Spacing between repeated NAKs for the same gap.
    pub nak_retry: Duration,
    /// Total buffering available to the group, in fragments. Flow control
    /// grants each member an equal share ("the group protocol enforces
    /// fairness by ensuring that each process can only own a share of total
    /// available buffering", §5.3).
    pub total_buffer_frags: usize,
    /// Extra buffer share multiplier for the sequencer — the paper's
    /// "allocating a dedicated sequencer process" mitigation is modelled by
    /// granting the sequencer role a larger share. 1.0 = fair share.
    pub sequencer_share_boost: f64,
    /// Fixed sequencer override; `None` picks the view's lowest-id member.
    pub dedicated_sequencer: Option<NodeId>,
    /// Rate-based flow control during dissemination: bytes per second.
    pub send_rate_bytes_per_sec: f64,
    /// Token-bucket burst, in bytes.
    pub rate_burst_bytes: usize,
    /// Sequencer announcement batching policy.
    pub ann_policy: AnnBatchPolicy,
    /// Deliver only stable (received-by-all) messages — uniform total order.
    /// Costs latency; off by default, as in the prototype.
    pub uniform_delivery: bool,
    /// Also hand messages up *tentatively* the moment the reliable layer
    /// completes them, before their global order is known
    /// (`Upcall::Tentative`). Lets the application overlap order-independent
    /// work (e.g. speculative certification) with the total-order broadcast;
    /// off by default.
    pub tentative_delivery: bool,
    /// CPU cost charged per protocol event handled (synthetic profiling).
    pub proc_cost: Duration,
    /// CSRT send/receive overhead parameters (used by the simulation bridge).
    pub overhead: OverheadModel,
}

impl GcsConfig {
    /// Defaults for an `n`-member group on a LAN, calibrated to the paper's
    /// environment.
    pub fn lan(n_nodes: usize) -> Self {
        GcsConfig {
            n_nodes,
            max_packet: 1000,
            gossip_period: Duration::from_millis(25),
            heartbeat_period: Duration::from_millis(100),
            failure_timeout: Duration::from_millis(500),
            nak_delay: Duration::from_millis(5),
            nak_retry: Duration::from_millis(30),
            total_buffer_frags: 1536,
            sequencer_share_boost: 1.0,
            dedicated_sequencer: None,
            send_rate_bytes_per_sec: 8_000_000.0, // ~64 Mbit/s of goodput
            rate_burst_bytes: 64 * 1024,
            ann_policy: AnnBatchPolicy::Immediate,
            uniform_delivery: false,
            tentative_delivery: false,
            proc_cost: Duration::from_micros(2),
            overhead: OverheadModel::pentium3_1ghz(),
        }
    }

    /// Fair buffer share for one member, in fragments.
    pub fn buffer_share(&self, is_sequencer: bool) -> usize {
        let base = (self.total_buffer_frags / self.n_nodes.max(1)).max(4);
        if is_sequencer {
            ((base as f64) * self.sequencer_share_boost).round() as usize
        } else {
            base
        }
    }

    /// Maximum fragment payload bytes.
    pub fn frag_payload(&self) -> usize {
        use crate::wire::{DATA_OVERHEAD, ENVELOPE_OVERHEAD};
        self.max_packet
            .checked_sub(ENVELOPE_OVERHEAD + DATA_OVERHEAD)
            .expect("max_packet smaller than protocol headers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_costs_compose() {
        let o = OverheadModel::pentium3_1ghz();
        assert_eq!(o.send_cost(0), Duration::from_micros(18));
        assert_eq!(o.send_cost(1000), Duration::from_micros(27));
        assert!(o.recv_cost(100) > o.send_cost(100));
    }

    #[test]
    fn buffer_share_splits_fairly() {
        let mut c = GcsConfig::lan(3);
        assert_eq!(c.buffer_share(false), 512);
        c.sequencer_share_boost = 2.0;
        assert_eq!(c.buffer_share(true), 1024);
        assert_eq!(c.buffer_share(false), 512);
    }

    #[test]
    fn frag_payload_subtracts_headers() {
        let c = GcsConfig::lan(3);
        assert_eq!(c.frag_payload(), 1000 - 12 - 18);
    }

    #[test]
    fn ann_policy_windows() {
        assert_eq!(AnnBatchPolicy::Immediate.window(0), None);
        assert_eq!(AnnBatchPolicy::Immediate.window(100), None);
        let d = Duration::from_millis(2);
        assert_eq!(AnnBatchPolicy::Fixed(d).window(0), Some(d));
        assert_eq!(AnnBatchPolicy::Fixed(Duration::ZERO).window(9), None);
        let a = AnnBatchPolicy::Adaptive { min: Duration::from_micros(100), max: d };
        // Idle: one-hop flush, exactly like Immediate.
        assert_eq!(a.window(0), None);
        // Window widens with backlog...
        assert_eq!(a.window(1), Some(Duration::from_micros(100)));
        assert_eq!(a.window(5), Some(Duration::from_micros(500)));
        // ...up to the hard ceiling.
        assert_eq!(a.window(1_000_000), Some(d));
    }

    #[test]
    #[should_panic(expected = "smaller than protocol headers")]
    fn tiny_max_packet_rejected() {
        let mut c = GcsConfig::lan(3);
        c.max_packet = 4;
        let _ = c.frag_payload();
    }
}

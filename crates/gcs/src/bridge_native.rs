//! Bridge from the protocol abstraction to the native platform (§2.3): the
//! same [`Gcs`] code over `std::net::UdpSocket` and real time — the paper's
//! second implementation of the abstraction layer ("a bridge to the native
//! Java API", here the Rust standard library).
//!
//! The bridge is single-threaded: the caller drives it with
//! [`NativeBridge::step`] / [`NativeBridge::run_for`], which poll the socket
//! with a timeout derived from the earliest pending timer. Multicast is
//! realized as unicast fan-out so the bridge also works where IP multicast
//! is unavailable (loopback test rigs, most WANs) — the fallback the paper's
//! protocol prescribes for wide-area operation.

use crate::config::GcsConfig;
use crate::runtime::{ProtocolRuntime, TimerId, TimerKind};
use crate::stack::{Gcs, Upcall};
use crate::types::NodeId;
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Native deployment description.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// This node's id.
    pub me: NodeId,
    /// Socket addresses of every node, indexed by node id.
    pub peers: Vec<SocketAddr>,
    /// Protocol configuration.
    pub gcs: GcsConfig,
}

/// The native implementation of the protocol abstraction layer.
pub struct NativeBridge {
    gcs: Gcs,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    epoch: Instant,
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    timer_meta: Vec<Option<TimerKind>>, // indexed by timer id
    cancelled: HashSet<u64>,
    next_timer: u64,
    upcalls: Vec<Upcall>,
    buf: Vec<u8>,
}

struct NativeRt<'a> {
    socket: &'a UdpSocket,
    peers: &'a [SocketAddr],
    me: NodeId,
    epoch: Instant,
    timers: &'a mut BinaryHeap<Reverse<(Instant, u64)>>,
    timer_meta: &'a mut Vec<Option<TimerKind>>,
    cancelled: &'a mut HashSet<u64>,
    next_timer: &'a mut u64,
}

impl ProtocolRuntime for NativeRt<'_> {
    fn now_nanos(&mut self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn set_timer(&mut self, delay: Duration, kind: TimerKind) -> TimerId {
        let id = *self.next_timer;
        *self.next_timer += 1;
        let at = Instant::now() + delay;
        self.timers.push(Reverse((at, id)));
        if self.timer_meta.len() <= id as usize {
            self.timer_meta.resize(id as usize + 1, None);
        }
        self.timer_meta[id as usize] = Some(kind);
        TimerId(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    fn unicast(&mut self, to: NodeId, payload: Bytes) {
        // UDP semantics: errors (e.g. peer not yet bound) are dropped
        // packets, exactly what the reliability layer exists to mask.
        let _ = self.socket.send_to(&payload, self.peers[to.0 as usize]);
    }

    fn multicast(&mut self, payload: Bytes) {
        for (i, addr) in self.peers.iter().enumerate() {
            if i != self.me.0 as usize {
                let _ = self.socket.send_to(&payload, addr);
            }
        }
    }

    fn charge(&mut self, _cost: Duration) {
        // Real cycles are spent here; nothing to account.
    }
}

impl NativeBridge {
    /// Binds the node's socket and starts the protocol.
    ///
    /// # Errors
    ///
    /// Returns any socket-creation error.
    pub fn new(config: NativeConfig) -> io::Result<Self> {
        let me = config.me;
        let socket = UdpSocket::bind(config.peers[me.0 as usize])?;
        socket.set_nonblocking(false)?;
        let mut bridge = NativeBridge {
            gcs: Gcs::new(me, config.gcs),
            socket,
            peers: config.peers,
            epoch: Instant::now(),
            timers: BinaryHeap::new(),
            timer_meta: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            upcalls: Vec::new(),
            buf: vec![0u8; 65536],
        };
        bridge.with_gcs(|g, rt| g.on_start(rt));
        Ok(bridge)
    }

    /// The node this bridge serves.
    pub fn node(&self) -> NodeId {
        self.gcs.node()
    }

    /// Protocol metrics snapshot.
    pub fn metrics(&self) -> crate::stack::GcsMetrics {
        self.gcs.metrics()
    }

    /// Atomically multicasts an application payload.
    pub fn broadcast(&mut self, payload: Bytes) {
        self.with_gcs(|g, rt| g.broadcast(rt, payload));
    }

    /// Removes and returns upcalls accumulated since the last call.
    pub fn drain_upcalls(&mut self) -> Vec<Upcall> {
        std::mem::take(&mut self.upcalls)
    }

    fn with_gcs(&mut self, f: impl FnOnce(&mut Gcs, &mut dyn ProtocolRuntime)) {
        {
            let mut rt = NativeRt {
                socket: &self.socket,
                peers: &self.peers,
                me: self.gcs.node(),
                epoch: self.epoch,
                timers: &mut self.timers,
                timer_meta: &mut self.timer_meta,
                cancelled: &mut self.cancelled,
                next_timer: &mut self.next_timer,
            };
            f(&mut self.gcs, &mut rt);
        }
        self.upcalls.extend(self.gcs.drain_upcalls());
    }

    /// Fires due timers and waits up to `max_wait` for one packet.
    /// Returns `true` if any protocol activity happened.
    pub fn step(&mut self, max_wait: Duration) -> io::Result<bool> {
        let mut activity = false;
        // Fire all due timers.
        let now = Instant::now();
        loop {
            match self.timers.peek() {
                Some(Reverse((at, _))) if *at <= now => {
                    let Reverse((_, id)) = self.timers.pop().expect("peeked");
                    if self.cancelled.remove(&id) {
                        continue;
                    }
                    let Some(kind) = self.timer_meta.get(id as usize).copied().flatten() else {
                        continue;
                    };
                    self.with_gcs(|g, rt| g.on_timer(rt, kind));
                    activity = true;
                }
                _ => break,
            }
        }
        // Wait for a packet until the next timer or max_wait.
        let deadline = self
            .timers
            .peek()
            .map(|Reverse((at, _))| *at)
            .unwrap_or_else(|| now + max_wait)
            .min(now + max_wait);
        let wait = deadline.saturating_duration_since(Instant::now());
        self.socket.set_read_timeout(Some(wait.max(Duration::from_micros(100))))?;
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, _from)) => {
                let raw = Bytes::copy_from_slice(&self.buf[..n]);
                self.with_gcs(|g, rt| g.on_packet(rt, raw));
                activity = true;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
        Ok(activity)
    }

    /// Drives the bridge for `d` of wall-clock time.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from [`step`](NativeBridge::step).
    pub fn run_for(&mut self, d: Duration) -> io::Result<()> {
        let end = Instant::now() + d;
        while Instant::now() < end {
            let left = end.saturating_duration_since(Instant::now());
            self.step(left.min(Duration::from_millis(10)))?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for NativeBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeBridge").field("node", &self.gcs.node()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_config(n: usize, base_port: u16) -> Vec<NativeConfig> {
        let peers: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", base_port + i as u16).parse().expect("addr"))
            .collect();
        (0..n)
            .map(|i| NativeConfig {
                me: NodeId(i as u16),
                peers: peers.clone(),
                gcs: GcsConfig::lan(n),
            })
            .collect()
    }

    #[test]
    fn native_bridges_reach_total_order_on_loopback() {
        let configs = local_config(2, 42700);
        let mut a = NativeBridge::new(configs[0].clone()).expect("bind a");
        let mut b = NativeBridge::new(configs[1].clone()).expect("bind b");
        a.broadcast(Bytes::from_static(b"m1"));
        b.broadcast(Bytes::from_static(b"m2"));
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut da = Vec::new();
        let mut db = Vec::new();
        while Instant::now() < deadline && (da.len() < 2 || db.len() < 2) {
            let _ = a.step(Duration::from_millis(5));
            let _ = b.step(Duration::from_millis(5));
            da.extend(a.drain_upcalls().into_iter().filter_map(|u| match u {
                Upcall::Deliver { origin, payload, .. } => Some((origin, payload)),
                _ => None,
            }));
            db.extend(b.drain_upcalls().into_iter().filter_map(|u| match u {
                Upcall::Deliver { origin, payload, .. } => Some((origin, payload)),
                _ => None,
            }));
        }
        assert_eq!(da.len(), 2, "node a delivered");
        assert_eq!(da, db, "same total order on real sockets");
    }
}

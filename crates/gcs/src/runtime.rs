//! The protocol runtime abstraction (§2.3).
//!
//! "Protocol code is written targeting an abstraction layer which provides
//! job scheduling, clock access, and a simplified network interface in a
//! single-threaded environment. The abstract interface is then implemented
//! twice, first as a bridge to SSF, SSFNet, and the simulation runtime, and
//! then also as a bridge to the native Java API." Our two implementations
//! are [`SimBridge`](crate::SimBridge) (simulation) and
//! [`NativeBridge`](crate::NativeBridge) (`std::net` + a timer thread).

use crate::types::NodeId;
use bytes::Bytes;
use std::time::Duration;

/// Identifies a pending timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// Which logical timer fired — the protocol keys its periodic activities on
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Stability-detection gossip round.
    Gossip,
    /// Failure-detector heartbeat emission.
    Heartbeat,
    /// Failure-detector timeout scan.
    FailureCheck,
    /// Gap scan / NAK (re)transmission.
    NakCheck,
    /// Rate-based flow control: tokens available again.
    RateRefill,
    /// Sequencer announcement batch flush.
    AnnFlush,
    /// View-change coordinator resend.
    FlushResend,
    /// Rejoin: `JoinReq` retry at a joining node; grant-install resend at
    /// the granter.
    JoinRetry,
}

/// Services the protocol may use — its *only* window on the outside world.
///
/// The single-threaded contract: implementations invoke protocol entry
/// points sequentially, and the protocol only touches time, timers, and the
/// network through this trait. That is what lets the identical code run
/// under the simulation (where the bridge accounts CPU and virtual time) and
/// on a real network.
pub trait ProtocolRuntime {
    /// Current time in nanoseconds (virtual under simulation).
    fn now_nanos(&mut self) -> u64;

    /// Arms a timer; the protocol's `on_timer` runs with `kind` after
    /// `delay`.
    fn set_timer(&mut self, delay: Duration, kind: TimerKind) -> TimerId;

    /// Cancels a pending timer (no-op if it already fired).
    fn cancel_timer(&mut self, id: TimerId);

    /// Sends `payload` to one node.
    fn unicast(&mut self, to: NodeId, payload: Bytes);

    /// Sends `payload` to all group members — IP multicast where the
    /// network provides it, unicast fan-out otherwise (§3.4).
    fn multicast(&mut self, payload: Bytes);

    /// Declares simulated CPU cost (no-op on the native bridge, where real
    /// cycles are spent instead).
    fn charge(&mut self, cost: Duration);
}

//! # dbsm-gcs — the group-communication prototype (real code)
//!
//! The second "real implementation" component of the paper's testbed (§3.4):
//! an atomic multicast protocol built as two layers —
//!
//! 1. **view-synchronous reliable multicast**: IP-multicast dissemination
//!    with unicast fallback, window-based receiver-initiated NAK recovery,
//!    a scalable stability-detection gossip protocol (S/W/M rounds), and
//!    flow control combining a rate-based mechanism with per-process buffer
//!    shares;
//! 2. **total order** via a fixed sequencer chosen (and replaced on failure)
//!    through view synchrony.
//!
//! The protocol is written against the [`ProtocolRuntime`] abstraction
//! (§2.3) and, exactly as in the paper, runs unmodified in two worlds: under
//! the centralized simulation runtime ([`SimBridge`]) and on real UDP
//! sockets ([`NativeBridge`]).
//!
//! # Examples
//!
//! Driving a three-node group with the in-memory test harness:
//!
//! ```
//! use dbsm_gcs::{testkit::TestNet, GcsConfig, NodeId};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut net = TestNet::new(GcsConfig::lan(3));
//! net.broadcast(NodeId(0), Bytes::from_static(b"t1"));
//! net.broadcast(NodeId(1), Bytes::from_static(b"t2"));
//! net.run_for(Duration::from_secs(1));
//! let d0 = net.deliveries(NodeId(0));
//! let d1 = net.deliveries(NodeId(1));
//! assert_eq!(d0.len(), 2);
//! assert_eq!(d0, d1, "total order: same sequence everywhere");
//! ```

#![warn(missing_docs)]

mod bridge_native;
mod bridge_sim;
mod config;
mod runtime;
mod stability;
mod stack;
pub mod testkit;
mod types;
mod wire;

pub use bridge_native::{NativeBridge, NativeConfig};
pub use bridge_sim::SimBridge;
pub use config::{AnnBatchPolicy, GcsConfig, OverheadModel};
pub use runtime::{ProtocolRuntime, TimerId, TimerKind};
pub use stability::{Gossip, Stability};
pub use stack::{Gcs, GcsMetrics, Upcall};
pub use types::{NodeId, NodeSet, View, MAX_NODES};
pub use wire::{
    decode_seq_ann, encode_seq_ann, Envelope, Message, PayloadKind, SeqAssign, WireError, WireVote,
    DATA_OVERHEAD, ENVELOPE_OVERHEAD, SEQ_ASSIGN_WIRE, WIRE_VOTE_WIRE,
};

#[cfg(test)]
mod tests {
    use super::testkit::TestNet;
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    fn payload(tag: u64) -> Bytes {
        Bytes::from(tag.to_le_bytes().to_vec())
    }

    #[test]
    fn total_order_holds_with_interleaved_senders() {
        let mut net = TestNet::new(GcsConfig::lan(3));
        for round in 0..10u64 {
            for n in 0..3u16 {
                net.broadcast(NodeId(n), payload(round * 10 + u64::from(n)));
            }
            net.run_for(Duration::from_millis(5));
        }
        net.run_for(Duration::from_secs(2));
        let d0 = net.deliveries(NodeId(0));
        assert_eq!(d0.len(), 30, "all messages delivered");
        for n in 1..3u16 {
            assert_eq!(net.deliveries(NodeId(n)), d0, "node {n} agrees");
        }
    }

    #[test]
    fn delivery_includes_own_messages() {
        let mut net = TestNet::new(GcsConfig::lan(2));
        net.broadcast(NodeId(0), payload(7));
        net.run_for(Duration::from_secs(1));
        let d = net.deliveries(NodeId(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, NodeId(0));
    }

    #[test]
    fn loss_is_recovered_by_naks() {
        let mut net = TestNet::new(GcsConfig::lan(3));
        // Deterministically drop ~20% of packets.
        let mut count = 0u64;
        net.set_drop_fn(move |_, _, _| {
            count += 1;
            count.is_multiple_of(5)
        });
        for i in 0..20u64 {
            net.broadcast(NodeId((i % 3) as u16), payload(i));
            net.run_for(Duration::from_millis(2));
        }
        net.run_for(Duration::from_secs(5));
        let d0 = net.deliveries(NodeId(0));
        assert_eq!(d0.len(), 20, "reliability despite loss");
        assert_eq!(net.deliveries(NodeId(1)), d0);
        assert_eq!(net.deliveries(NodeId(2)), d0);
        let m0 = net.nodes[0].borrow().metrics();
        let m1 = net.nodes[1].borrow().metrics();
        assert!(m0.naks_sent + m1.naks_sent > 0, "recovery used NAKs");
    }

    #[test]
    fn large_messages_fragment_and_reassemble() {
        let mut net = TestNet::new(GcsConfig::lan(2));
        let big = Bytes::from(vec![0x5Au8; 5000]);
        net.broadcast(NodeId(0), big.clone());
        net.run_for(Duration::from_secs(1));
        let d = net.deliveries(NodeId(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, big);
    }

    #[test]
    fn stability_drains_send_buffers() {
        let mut net = TestNet::new(GcsConfig::lan(3));
        for i in 0..5u64 {
            net.broadcast(NodeId(0), payload(i));
        }
        net.run_for(Duration::from_secs(2));
        for n in 0..3 {
            assert_eq!(net.nodes[n].borrow().unstable_frags(), 0, "node {n} buffer drained");
        }
    }

    #[test]
    fn member_crash_triggers_view_change_and_consistency() {
        let mut net = TestNet::new(GcsConfig::lan(3));
        for i in 0..5u64 {
            net.broadcast(NodeId(2), payload(i));
        }
        net.run_for(Duration::from_millis(50));
        net.crash(NodeId(2));
        net.run_for(Duration::from_secs(3));
        // Survivors installed a 2-member view.
        for n in 0..2u16 {
            let v = net.nodes[n as usize].borrow().view();
            assert_eq!(v.members.len(), 2, "node {n} view {v}");
            assert!(!v.members.contains(NodeId(2)));
        }
        // And deliver identical sequences, including the dead node's
        // pre-crash messages.
        let d0 = net.deliveries(NodeId(0));
        let d1 = net.deliveries(NodeId(1));
        assert_eq!(d0, d1);
        assert_eq!(d0.len(), 5);
        // The group remains live.
        net.broadcast(NodeId(0), payload(99));
        net.run_for(Duration::from_secs(1));
        assert_eq!(net.deliveries(NodeId(0)).len(), 6);
        assert_eq!(net.deliveries(NodeId(1)).len(), 6);
    }

    #[test]
    fn sequencer_crash_fails_over() {
        let mut net = TestNet::new(GcsConfig::lan(3));
        assert_eq!(net.nodes[0].borrow().sequencer(), Some(NodeId(0)));
        net.broadcast(NodeId(1), payload(1));
        net.run_for(Duration::from_millis(50));
        net.crash(NodeId(0)); // the sequencer
        net.run_for(Duration::from_secs(3));
        // Node 1 is the new sequencer.
        assert_eq!(net.nodes[1].borrow().sequencer(), Some(NodeId(1)));
        // Messages broadcast after failover still get totally ordered.
        net.broadcast(NodeId(2), payload(2));
        net.broadcast(NodeId(1), payload(3));
        net.run_for(Duration::from_secs(2));
        let d1 = net.deliveries(NodeId(1));
        let d2 = net.deliveries(NodeId(2));
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 3);
    }

    #[test]
    fn flow_control_blocks_when_stability_stalls() {
        let mut cfg = GcsConfig::lan(3);
        cfg.total_buffer_frags = 30; // share of 10 per node
        let failure_timeout = cfg.failure_timeout;
        let mut net = TestNet::new(cfg);
        // Node 2 never receives anything: stability cannot complete while it
        // is still expected to vote.
        net.set_drop_fn(|_, to, _| to == NodeId(2));
        for i in 0..50u64 {
            net.broadcast(NodeId(1), payload(i));
        }
        // Observe the stall before the failure detector can reconfigure.
        net.run_for(failure_timeout.mul_f64(0.8));
        let m = net.nodes[1].borrow().metrics();
        assert!(m.blocked_ns > 0, "sender must have blocked: {m:?}");
        assert!(net.deliveries(NodeId(0)).len() < 50, "share caps in-flight traffic");
        // Past the timeout the starved node halts (it lost contact with a
        // majority: non-primary) and the survivors re-form and catch up —
        // the §5.3 block resolves through membership, not magic.
        net.run_for(Duration::from_secs(4));
        assert!(net.nodes[2].borrow().is_halted(), "starved minority node halts");
        let d0 = net.deliveries(NodeId(0));
        let d1 = net.deliveries(NodeId(1));
        assert_eq!(d0.len(), 50, "survivors drain the backlog after the view change");
        assert_eq!(d0, d1);
    }

    #[test]
    fn uniform_delivery_still_agrees() {
        let mut cfg = GcsConfig::lan(3);
        cfg.uniform_delivery = true;
        let mut net = TestNet::new(cfg);
        for i in 0..10u64 {
            net.broadcast(NodeId((i % 3) as u16), payload(i));
            net.run_for(Duration::from_millis(3));
        }
        net.run_for(Duration::from_secs(3));
        let d0 = net.deliveries(NodeId(0));
        assert_eq!(d0.len(), 10);
        assert_eq!(net.deliveries(NodeId(1)), d0);
        assert_eq!(net.deliveries(NodeId(2)), d0);
    }

    #[test]
    fn dedicated_sequencer_is_honoured() {
        let mut cfg = GcsConfig::lan(3);
        cfg.dedicated_sequencer = Some(NodeId(2));
        let mut net = TestNet::new(cfg);
        assert_eq!(net.nodes[0].borrow().sequencer(), Some(NodeId(2)));
        net.broadcast(NodeId(0), payload(1));
        net.run_for(Duration::from_secs(1));
        assert_eq!(net.deliveries(NodeId(1)).len(), 1);
    }

    #[test]
    fn metrics_count_traffic() {
        let mut net = TestNet::new(GcsConfig::lan(2));
        net.broadcast(NodeId(0), payload(1));
        net.run_for(Duration::from_secs(1));
        let m = net.nodes[0].borrow().metrics();
        assert_eq!(m.app_sent, 1);
        assert_eq!(m.delivered, 1);
        assert!(m.frags_sent >= 1);
        assert!(m.gossip_sent > 0);
    }

    #[test]
    fn ann_batching_still_orders() {
        for policy in
            [AnnBatchPolicy::Fixed(Duration::from_millis(5)), AnnBatchPolicy::adaptive_lan()]
        {
            let mut cfg = GcsConfig::lan(3);
            cfg.ann_policy = policy;
            let mut net = TestNet::new(cfg);
            for i in 0..12u64 {
                net.broadcast(NodeId((i % 3) as u16), payload(i));
            }
            net.run_for(Duration::from_secs(2));
            let d0 = net.deliveries(NodeId(0));
            assert_eq!(d0.len(), 12, "{policy:?}");
            assert_eq!(net.deliveries(NodeId(1)), d0, "{policy:?}");
            assert_eq!(net.deliveries(NodeId(2)), d0, "{policy:?}");
        }
    }

    #[test]
    fn adaptive_policy_flushes_in_one_hop_at_idle() {
        // At idle the adaptive policy must not tax latency: a lone message
        // is announced immediately and delivers within the same few network
        // hops as under `Immediate` — well before the 2 ms ceiling a fixed
        // window would wait out.
        let horizon = Duration::from_millis(1);
        for policy in [AnnBatchPolicy::Immediate, AnnBatchPolicy::adaptive_lan()] {
            // One lone message from a remote node, and one from the
            // sequencer itself (whose own just-sent fragments must count as
            // the carrier, not as backlog).
            for sender in [NodeId(1), NodeId(0)] {
                let mut cfg = GcsConfig::lan(3);
                cfg.ann_policy = policy;
                let mut net = TestNet::new(cfg);
                net.broadcast(sender, payload(7));
                net.run_for(horizon);
                for n in 0..3u16 {
                    assert_eq!(
                        net.deliveries(NodeId(n)).len(),
                        1,
                        "{policy:?} from {sender} at node {n}"
                    );
                }
            }
        }
        // The fixed window, by contrast, holds the announcement back.
        let mut cfg = GcsConfig::lan(3);
        cfg.ann_policy = AnnBatchPolicy::Fixed(Duration::from_millis(5));
        let mut net = TestNet::new(cfg);
        net.broadcast(NodeId(1), payload(7));
        net.run_for(horizon);
        for n in 0..3u16 {
            assert!(net.deliveries(NodeId(n)).is_empty(), "fixed window waits at node {n}");
        }
    }

    #[test]
    fn adaptive_batching_under_backpressure_sends_fewer_announcements() {
        // Choke the sequencer's send rate so its queue backs up: the
        // adaptive policy should widen the window and coalesce assignments
        // (or piggyback them), ending with measurably fewer SeqAnn messages
        // than one per application message.
        let run = |policy: AnnBatchPolicy| {
            let mut cfg = GcsConfig::lan(3);
            cfg.ann_policy = policy;
            cfg.send_rate_bytes_per_sec = 200_000.0;
            cfg.rate_burst_bytes = 2_000;
            let mut net = TestNet::new(cfg);
            // The sequencer itself pushes bulk traffic, keeping its send
            // queue occupied for the whole run...
            for i in 0..30u64 {
                net.broadcast(NodeId(0), Bytes::from(vec![i as u8; 2_000]));
            }
            // ...while a peer streams the messages to be ordered.
            for i in 0..30u64 {
                net.broadcast(NodeId(1), Bytes::from(vec![i as u8; 600]));
                net.run_for(Duration::from_micros(200));
            }
            net.run_for(Duration::from_secs(10));
            for n in 0..3u16 {
                assert_eq!(net.deliveries(NodeId(n)).len(), 60, "{policy:?} at node {n}");
            }
            let m = net.nodes[0].borrow().metrics();
            m
        };
        let imm = run(AnnBatchPolicy::Immediate);
        let ada = run(AnnBatchPolicy::Adaptive {
            min: Duration::from_millis(2),
            max: Duration::from_millis(50),
        });
        assert_eq!(imm.ann_sent, 60, "immediate: one announcement per message");
        assert_eq!(imm.ann_assigns, 60);
        assert_eq!(imm.ann_piggybacked, 0, "immediate never holds a batch to piggyback");
        assert!(
            ada.ann_sent < imm.ann_sent / 2,
            "adaptive must batch under backpressure: {} vs {}",
            ada.ann_sent,
            imm.ann_sent
        );
        assert_eq!(
            ada.ann_assigns + ada.ann_piggybacked,
            60,
            "every assignment is announced exactly once: {ada:?}"
        );
    }
}

//! A miniature deterministic harness for driving [`crate::Gcs`]
//! instances in unit and property tests, independent of the full simulation
//! stack. Packets and timers are processed in `(time, insertion)` order;
//! per-link drop functions inject loss; nodes can be crashed.
//!
//! This is *not* the paper's testbed (that is `dbsm-core` + `dbsm-sim`); it
//! exists so the protocol logic can be exercised in isolation.

use crate::config::GcsConfig;
use crate::runtime::{ProtocolRuntime, TimerId, TimerKind};
use crate::stack::{Gcs, Upcall};
use crate::types::NodeId;
use bytes::Bytes;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::time::Duration;

enum Event {
    Packet { to: NodeId, raw: Bytes },
    Timer { node: NodeId, kind: TimerKind, id: TimerId },
}

/// Per-link loss decision: `drop_fn(from, to, bytes) -> drop?`.
type DropFn = Box<dyn FnMut(NodeId, NodeId, &Bytes) -> bool>;

struct Shared {
    now: u64,
    next_ord: u64,
    next_timer: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: Vec<Option<Event>>,
    cancelled: HashSet<u64>,
    /// drop_fn(from, to, bytes) -> drop?
    drop_fn: DropFn,
    latency_ns: u64,
    crashed: HashSet<u16>,
}

impl Shared {
    fn push(&mut self, at: u64, ev: Event) {
        let ord = self.next_ord;
        self.next_ord += 1;
        let idx = self.events.len();
        self.events.push(Some(ev));
        self.queue.push(Reverse((at, ord, idx)));
    }
}

/// Deterministic in-memory test network for `n` [`Gcs`] nodes.
pub struct TestNet {
    shared: Rc<RefCell<Shared>>,
    /// The protocol instances under test.
    pub nodes: Vec<Rc<RefCell<Gcs>>>,
    /// Upcalls collected per node, in order.
    pub upcalls: Vec<Vec<Upcall>>,
}

struct TestRuntime {
    node: NodeId,
    n: usize,
    shared: Rc<RefCell<Shared>>,
}

impl ProtocolRuntime for TestRuntime {
    fn now_nanos(&mut self) -> u64 {
        self.shared.borrow().now
    }

    fn set_timer(&mut self, delay: Duration, kind: TimerKind) -> TimerId {
        let mut sh = self.shared.borrow_mut();
        let id = TimerId(sh.next_timer);
        sh.next_timer += 1;
        let at = sh.now + delay.as_nanos() as u64;
        sh.push(at, Event::Timer { node: self.node, kind, id });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.shared.borrow_mut().cancelled.insert(id.0);
    }

    fn unicast(&mut self, to: NodeId, payload: Bytes) {
        let mut sh = self.shared.borrow_mut();
        if sh.crashed.contains(&self.node.0) {
            return;
        }
        let drop = (sh.drop_fn)(self.node, to, &payload);
        if drop || sh.crashed.contains(&to.0) {
            return;
        }
        let at = sh.now + sh.latency_ns;
        sh.push(at, Event::Packet { to, raw: payload });
    }

    fn multicast(&mut self, payload: Bytes) {
        for j in 0..self.n {
            let to = NodeId(j as u16);
            if to != self.node {
                self.unicast(to, payload.clone());
            }
        }
    }

    fn charge(&mut self, _cost: Duration) {}
}

impl TestNet {
    /// Creates `n` nodes with the given config and starts them.
    pub fn new(cfg: GcsConfig) -> Self {
        let n = cfg.n_nodes;
        let shared = Rc::new(RefCell::new(Shared {
            now: 0,
            next_ord: 0,
            next_timer: 0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            cancelled: HashSet::new(),
            drop_fn: Box::new(|_, _, _| false),
            latency_ns: 100_000, // 100us
            crashed: HashSet::new(),
        }));
        let nodes: Vec<Rc<RefCell<Gcs>>> = (0..n)
            .map(|i| Rc::new(RefCell::new(Gcs::new(NodeId(i as u16), cfg.clone()))))
            .collect();
        let mut net = TestNet { shared, nodes, upcalls: vec![Vec::new(); n] };
        for i in 0..n {
            net.with_node(NodeId(i as u16), |g, rt| g.on_start(rt));
        }
        net
    }

    /// Installs a deterministic drop function `(from, to, bytes) -> drop?`.
    pub fn set_drop_fn(&mut self, f: impl FnMut(NodeId, NodeId, &Bytes) -> bool + 'static) {
        self.shared.borrow_mut().drop_fn = Box::new(f);
    }

    /// Crashes a node: it stops sending, receiving and processing timers.
    pub fn crash(&mut self, node: NodeId) {
        self.shared.borrow_mut().crashed.insert(node.0);
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.shared.borrow().now
    }

    fn with_node(&mut self, node: NodeId, f: impl FnOnce(&mut Gcs, &mut TestRuntime)) {
        let n = self.nodes.len();
        let g = self.nodes[node.0 as usize].clone();
        let mut rt = TestRuntime { node, n, shared: self.shared.clone() };
        let mut g = g.borrow_mut();
        f(&mut g, &mut rt);
        self.upcalls[node.0 as usize].extend(g.drain_upcalls());
    }

    /// Broadcasts an application payload from `node`.
    pub fn broadcast(&mut self, node: NodeId, payload: Bytes) {
        if self.shared.borrow().crashed.contains(&node.0) {
            return;
        }
        self.with_node(node, |g, rt| g.broadcast(rt, payload));
    }

    /// Casts a certification vote from `node` (see [`Gcs::cast_vote`]).
    pub fn cast_vote(&mut self, node: NodeId, origin: u16, txn: u64, conflict: Option<u64>) {
        if self.shared.borrow().crashed.contains(&node.0) {
            return;
        }
        self.with_node(node, |g, rt| g.cast_vote(rt, origin, txn, conflict));
    }

    /// Runs until the event queue is empty or `until_ns` is reached.
    pub fn run_until(&mut self, until_ns: u64) {
        loop {
            let next = {
                let mut sh = self.shared.borrow_mut();
                match sh.queue.pop() {
                    None => return,
                    Some(Reverse((at, _ord, idx))) => {
                        if at > until_ns {
                            sh.now = until_ns;
                            // Keep the event for later windows.
                            sh.queue.push(Reverse((at, _ord, idx)));
                            return;
                        }
                        sh.now = at;
                        sh.events[idx].take()
                    }
                }
            };
            match next {
                None => continue,
                Some(Event::Packet { to, raw }) => {
                    if self.shared.borrow().crashed.contains(&to.0) {
                        continue;
                    }
                    self.with_node(to, |g, rt| g.on_packet(rt, raw));
                }
                Some(Event::Timer { node, kind, id }) => {
                    {
                        let mut sh = self.shared.borrow_mut();
                        if sh.cancelled.remove(&id.0) || sh.crashed.contains(&node.0) {
                            continue;
                        }
                    }
                    self.with_node(node, |g, rt| g.on_timer(rt, kind));
                }
            }
        }
    }

    /// Runs for `d` more of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let until = self.now() + d.as_nanos() as u64;
        self.run_until(until);
    }

    /// The totally ordered `(origin, payload)` deliveries observed at `node`.
    pub fn deliveries(&self, node: NodeId) -> Vec<(NodeId, Bytes)> {
        self.deliveries_seq(node).into_iter().map(|(o, _, p)| (o, p)).collect()
    }

    /// Like [`TestNet::deliveries`] but including the assigned global
    /// sequence number: `(origin, global_seq, payload)`.
    pub fn deliveries_seq(&self, node: NodeId) -> Vec<(NodeId, u64, Bytes)> {
        self.upcalls[node.0 as usize]
            .iter()
            .filter_map(|u| match u {
                Upcall::Deliver { origin, global_seq, payload } => {
                    Some((*origin, *global_seq, payload.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Debug for TestNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestNet").field("nodes", &self.nodes.len()).finish()
    }
}

//! Basic group-communication types.

use std::fmt;

/// Identifier of a group member (dense, assigned by configuration).
///
/// The stack supports up to 64 members (membership sets travel as `u64`
/// bitmasks); the paper's experiments use at most 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Maximum number of group members.
pub const MAX_NODES: usize = 64;

/// A set of nodes, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates a set from a raw bitmask.
    pub const fn from_bits(bits: u64) -> Self {
        NodeSet(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Set containing nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_NODES, "at most {MAX_NODES} nodes");
        if n == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// Inserts a node.
    pub fn insert(&mut self, node: NodeId) {
        self.0 |= 1 << node.0;
    }

    /// Removes a node.
    pub fn remove(&mut self, node: NodeId) {
        self.0 &= !(1 << node.0);
    }

    /// Membership test.
    pub fn contains(self, node: NodeId) -> bool {
        self.0 & (1 << node.0) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union.
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// True if every member of `self` is in `other`.
    pub fn is_subset(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The lowest-numbered member, if any.
    pub fn min(self) -> Option<NodeId> {
        if self.is_empty() {
            None
        } else {
            Some(NodeId(self.0.trailing_zeros() as u16))
        }
    }

    /// Iterates members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(NodeId(i as u16))
            }
        })
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

/// A view: epoch number plus membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Current members.
    pub members: NodeSet,
}

impl View {
    /// The initial view over `n` nodes.
    pub fn initial(n: usize) -> Self {
        View { id: 0, members: NodeSet::first_n(n) }
    }

    /// The fixed sequencer of this view: its lowest-numbered member
    /// (§3.4: "view synchrony ensures that a single sequencer site is
    /// easily chosen and replaced when it fails").
    pub fn sequencer(&self) -> Option<NodeId> {
        self.members.min()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view{}{}", self.id, self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::first_n(3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId(0)));
        assert!(!s.contains(NodeId(3)));
        s.insert(NodeId(5));
        s.remove(NodeId(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(1), NodeId(2), NodeId(5)]);
        assert_eq!(s.min(), Some(NodeId(1)));
    }

    #[test]
    fn nodeset_algebra() {
        let a: NodeSet = [NodeId(0), NodeId(1)].into_iter().collect();
        let b: NodeSet = [NodeId(1), NodeId(2)].into_iter().collect();
        assert_eq!(a.union(b), NodeSet::first_n(3));
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert!(a.is_subset(NodeSet::first_n(2)));
        assert!(!NodeSet::first_n(3).is_subset(a));
    }

    #[test]
    fn full_set_of_64() {
        let s = NodeSet::first_n(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId(63)));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_nodes_rejected() {
        let _ = NodeSet::first_n(65);
    }

    #[test]
    fn view_sequencer_is_min_member() {
        let v = View::initial(3);
        assert_eq!(v.sequencer(), Some(NodeId(0)));
        let mut m = v.members;
        m.remove(NodeId(0));
        let v2 = View { id: 1, members: m };
        assert_eq!(v2.sequencer(), Some(NodeId(1)));
        assert_eq!(View { id: 2, members: NodeSet::EMPTY }.sequencer(), None);
    }

    #[test]
    fn display_formats() {
        let v = View::initial(2);
        assert_eq!(v.to_string(), "view0{n0,n1}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }
}

//! Scalable stability detection (§3.4, after Guo's gossip protocol).
//!
//! "Stability detection works in asynchronous rounds by gossiping (i) a
//! vector S of sequence numbers of known stable messages; (ii) a set W of
//! processes that have voted in the current round; and (iii) a vector M of
//! sequence numbers of messages already received by processes that have
//! voted in the current round. Each process updates this information by
//! adding its vote to W and ensuring that M includes only messages that have
//! already been received. When W includes all operational processes, S can
//! be updated with M."
//!
//! Rounds are tagged with an explicit round number so concurrent round
//! completions merge deterministically. The critical property the paper's
//! fault experiments exercise: **only contiguous prefixes become stable**,
//! so independent random loss at each receiver drags the common prefix — and
//! therefore garbage collection — down dramatically (§5.3).

use crate::types::{NodeId, NodeSet};

/// Per-node stability state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stability {
    me: NodeId,
    /// Operational processes expected to vote.
    members: NodeSet,
    /// Current round number.
    round: u64,
    /// Processes that have voted in the current round.
    w: NodeSet,
    /// Element-wise minimum of voters' contiguous-received vectors.
    m: Vec<u64>,
    /// Highest sequence number per sender known received by everyone.
    s: Vec<u64>,
}

/// A gossip message exchanged by the stability protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gossip {
    /// Round this vote belongs to.
    pub round: u64,
    /// Voters so far.
    pub w: NodeSet,
    /// Minimum received vector over the voters.
    pub m: Vec<u64>,
    /// Stable vector as known by the sender.
    pub s: Vec<u64>,
}

impl Stability {
    /// Creates stability state for `me` within a universe of `n` senders and
    /// the given operational membership.
    pub fn new(me: NodeId, n: usize, members: NodeSet) -> Self {
        Stability { me, members, round: 0, w: NodeSet::EMPTY, m: vec![u64::MAX; n], s: vec![0; n] }
    }

    /// The stable vector: `stable()[i]` is the highest sequence number of
    /// sender `i` known to be received by all operational processes
    /// (prefix-contiguous).
    pub fn stable(&self) -> &[u64] {
        &self.s
    }

    /// Current round number (diagnostic).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Produces this node's gossip for the current round, merging in its own
    /// vote: `received[i]` must be the node's *contiguous* received prefix
    /// for sender `i` (own messages count as received at send).
    pub fn make_gossip(&mut self, received: &[u64]) -> Gossip {
        self.vote(received);
        Gossip { round: self.round, w: self.w, m: self.m.clone(), s: self.s.clone() }
    }

    fn vote(&mut self, received: &[u64]) {
        self.w.insert(self.me);
        for (m, r) in self.m.iter_mut().zip(received) {
            *m = (*m).min(*r);
        }
        self.try_complete();
    }

    /// Merges a peer's gossip; returns `true` if the stable vector advanced
    /// (callers then garbage-collect buffers).
    pub fn on_gossip(&mut self, g: &Gossip, received: &[u64]) -> bool {
        let before = self.s.clone();
        // Adopt any newer stable knowledge unconditionally.
        for (s, gs) in self.s.iter_mut().zip(&g.s) {
            *s = (*s).max(*gs);
        }
        use std::cmp::Ordering;
        match g.round.cmp(&self.round) {
            Ordering::Greater => {
                // We are behind: adopt the newer round and add our vote.
                self.round = g.round;
                self.w = g.w;
                self.m = g.m.clone();
                self.vote(received);
            }
            Ordering::Equal => {
                self.w = self.w.union(g.w);
                for (m, gm) in self.m.iter_mut().zip(&g.m) {
                    *m = (*m).min(*gm);
                }
                self.vote(received);
            }
            Ordering::Less => {
                // Stale round: stable knowledge already merged above.
            }
        }
        self.s != before
    }

    /// Membership change: restrict the expected voter set (crashed members
    /// no longer gate stability) and restart the current round.
    pub fn set_members(&mut self, members: NodeSet) {
        self.members = members;
        self.round += 1;
        self.w = NodeSet::EMPTY;
        for m in &mut self.m {
            *m = u64::MAX;
        }
    }

    fn try_complete(&mut self) {
        if self.members.is_subset(self.w) && !self.members.is_empty() {
            for (s, m) in self.s.iter_mut().zip(&self.m) {
                if *m != u64::MAX {
                    *s = (*s).max(*m);
                }
            }
            self.round += 1;
            self.w = NodeSet::EMPTY;
            for m in &mut self.m {
                *m = u64::MAX;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Vec<Stability> {
        let members = NodeSet::first_n(n);
        (0..n).map(|i| Stability::new(NodeId(i as u16), n, members)).collect()
    }

    /// Drives one gossip exchange: every node gossips to every other.
    fn exchange(nodes: &mut [Stability], received: &[Vec<u64>]) {
        let gossips: Vec<Gossip> =
            nodes.iter_mut().enumerate().map(|(i, n)| n.make_gossip(&received[i])).collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            for (j, g) in gossips.iter().enumerate() {
                if i != j {
                    node.on_gossip(g, &received[i]);
                }
            }
        }
    }

    #[test]
    fn uniform_reception_becomes_stable_within_two_rounds() {
        let mut nodes = net(3);
        let received = vec![vec![10, 20, 30]; 3];
        exchange(&mut nodes, &received);
        exchange(&mut nodes, &received);
        for n in &nodes {
            assert_eq!(n.stable(), &[10, 20, 30], "node {:?}", n.me);
        }
    }

    #[test]
    fn stability_is_min_across_receivers() {
        let mut nodes = net(3);
        // Node 2 missed some of sender 0's messages: only 5 contiguous.
        let received = vec![vec![10, 20, 30], vec![10, 20, 30], vec![5, 20, 30]];
        exchange(&mut nodes, &received);
        exchange(&mut nodes, &received);
        for n in &nodes {
            assert_eq!(n.stable(), &[5, 20, 30]);
        }
    }

    #[test]
    fn stable_never_regresses() {
        let mut nodes = net(2);
        let high = vec![vec![10, 10]; 2];
        exchange(&mut nodes, &high);
        exchange(&mut nodes, &high);
        assert_eq!(nodes[0].stable(), &[10, 10]);
        // A later, lower received vector (cannot happen for contiguous
        // counters, but guard anyway) must not pull S down.
        let low = vec![vec![3, 3]; 2];
        exchange(&mut nodes, &low);
        exchange(&mut nodes, &low);
        assert_eq!(nodes[0].stable(), &[10, 10]);
    }

    #[test]
    fn missing_voter_blocks_stability() {
        let mut nodes = net(3);
        let received = vec![vec![10, 10, 10]; 3];
        // Only nodes 0 and 1 gossip; node 2 is silent (e.g. lossy link).
        for _ in 0..5 {
            let g0 = nodes[0].make_gossip(&received[0]);
            let g1 = nodes[1].make_gossip(&received[1]);
            nodes[0].on_gossip(&g1, &received[0]);
            nodes[1].on_gossip(&g0, &received[1]);
        }
        assert_eq!(nodes[0].stable(), &[0, 0, 0], "W never completes without node 2");
    }

    #[test]
    fn membership_change_unblocks_stability() {
        let mut nodes = net(3);
        let received = vec![vec![10, 10, 10]; 3];
        let survivors: NodeSet = [NodeId(0), NodeId(1)].into_iter().collect();
        nodes[0].set_members(survivors);
        nodes[1].set_members(survivors);
        for _ in 0..3 {
            let g0 = nodes[0].make_gossip(&received[0]);
            let g1 = nodes[1].make_gossip(&received[1]);
            nodes[0].on_gossip(&g1, &received[0]);
            nodes[1].on_gossip(&g0, &received[1]);
        }
        assert_eq!(nodes[0].stable(), &[10, 10, 10]);
        assert_eq!(nodes[1].stable(), &[10, 10, 10]);
    }

    #[test]
    fn rounds_advance_monotonically() {
        let mut nodes = net(2);
        let received = vec![vec![1, 1]; 2];
        let r0 = nodes[0].round();
        exchange(&mut nodes, &received);
        exchange(&mut nodes, &received);
        assert!(nodes[0].round() > r0);
        assert!(nodes[1].round() >= nodes[0].round().saturating_sub(1));
    }

    #[test]
    fn on_gossip_reports_advancement() {
        let mut nodes = net(2);
        let received = vec![vec![7, 7]; 2];
        let g0 = nodes[0].make_gossip(&received[0]);
        // Node 1 merging node 0's vote completes the round: S advances.
        let advanced = nodes[1].on_gossip(&g0, &received[1]);
        assert!(advanced);
        assert_eq!(nodes[1].stable(), &[7, 7]);
        // Re-merging the same stale gossip does not advance again.
        let advanced_again = nodes[1].on_gossip(&g0, &received[1]);
        assert!(!advanced_again);
    }
}

//! The group-communication stack (§3.4): view-synchronous reliable multicast
//! with window-based receiver-initiated recovery, scalable stability
//! detection, rate+window flow control, membership with flush/consensus view
//! changes under a primary-component rule, and fixed-sequencer total order.
//!
//! [`Gcs`] is a single-threaded state machine driven through
//! [`ProtocolRuntime`]; it is the *real code* the testbed exists to test.
//! Design choices called out by the paper are implemented faithfully, in
//! particular the ones behind its §5.3 findings:
//!
//! * each process owns only a *share* of the total buffer space;
//! * sequencer announcements travel through the same reliable layer and
//!   therefore consume the sequencer's share;
//! * stability (and hence garbage collection) advances only over the
//!   *contiguous* prefix received by *all* operational processes.
//!
//! Membership follows the **primary-component** rule: only a strict
//! majority of the current view may install the next one. A node that loses
//! contact with a majority (the small side of a partition, an isolated
//! sequencer) halts via [`Upcall::Excluded`] rather than forming a rump
//! view — the split-brain alternative would commit divergent histories. In
//! uniform-delivery mode the delivery gate covers the *order* too: a
//! message delivers only when both its content and the fragment that
//! carried its sequence assignment are stable, so no minority can act on an
//! ordering the primary component may re-make.
//!
//! Halting is no longer terminal: a crashed or excluded site may restart as
//! a fresh [`Gcs::rejoin`] instance, which announces itself with `JoinReq`
//! until the live primary component's lowest member grants admission at an
//! order-clean point ([`Upcall::ServeJoin`] at the granter primes the
//! application-level snapshot + delta-log state transfer) and a member-add
//! view install readmits it ([`Upcall::Rejoined`] at the joiner).

use crate::config::GcsConfig;
use crate::runtime::{ProtocolRuntime, TimerId, TimerKind};
use crate::stability::Stability;
use crate::types::{NodeId, NodeSet, View};
use crate::wire::{
    decode_seq_ann, encode_seq_ann, Envelope, Message, PayloadKind, SeqAssign, WireVote,
    ENVELOPE_OVERHEAD, SEQ_ASSIGN_WIRE, WIRE_VOTE_WIRE,
};
use bytes::{Bytes, BytesMut};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Events the stack hands to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Upcall {
    /// A message delivered in total order.
    Deliver {
        /// Originating node.
        origin: NodeId,
        /// Global (total-order) sequence number. Consecutive at every node,
        /// except for deterministically skipped orphans after a crash.
        global_seq: u64,
        /// The application payload.
        payload: Bytes,
    },
    /// A message whose content is reliably received but whose global order
    /// is not yet known — emitted (when
    /// [`GcsConfig::tentative_delivery`](crate::GcsConfig) is set) as soon
    /// as the reliable layer completes the message, before the sequencer's
    /// assignment arrives. The matching [`Upcall::Deliver`] always follows;
    /// applications use the head start for work that is safe to perform out
    /// of order, e.g. speculative certification overlapped with the
    /// total-order broadcast.
    Tentative {
        /// Originating node.
        origin: NodeId,
        /// The origin's message sequence number (pairs this tentative
        /// delivery with its later total-order delivery).
        msg_seq: u64,
        /// The application payload.
        payload: Bytes,
    },
    /// A new view was installed.
    ViewChange(View),
    /// This node was excluded from the view (e.g. falsely suspected under
    /// clock drift); it must halt. Survivors stay consistent.
    Excluded,
    /// This node (the lowest live member) admitted `joiner` and must serve
    /// its snapshot + delta-log state transfer. Emitted at the grant's
    /// order-clean point, *before* the member-add [`Upcall::ViewChange`]:
    /// the application's committed state at this instant is exactly what
    /// the joiner must receive — every global sequence number below the
    /// granted order base has been delivered here, and none above.
    ServeJoin {
        /// The rejoining node.
        joiner: NodeId,
    },
    /// Emitted at a rejoining node (built with [`Gcs::rejoin`]) once a
    /// grant was adopted: the stack is live in the new view, and the
    /// application must install the transferred state before acting on
    /// the deliveries that follow.
    Rejoined,
    /// A certification vote from `voter` (possibly this node, via loopback)
    /// surfaced by the reliable vote stream. Votes from one voter arrive in
    /// cast order; the application collects a covering quorum per
    /// transaction and decides by merging.
    Vote {
        /// The site that cast the vote.
        voter: NodeId,
        /// The verdict.
        vote: WireVote,
    },
}

/// Protocol counters (diagnostics for the fault-injection analysis, §5.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcsMetrics {
    /// Application messages submitted.
    pub app_sent: u64,
    /// Messages delivered in total order.
    pub delivered: u64,
    /// Data fragments transmitted (first time).
    pub frags_sent: u64,
    /// Data fragments received (non-duplicate).
    pub frags_received: u64,
    /// Duplicate fragments discarded.
    pub duplicates: u64,
    /// Retransmitted fragments sent.
    pub retrans_sent: u64,
    /// NAKs sent.
    pub naks_sent: u64,
    /// NAKs received.
    pub naks_received: u64,
    /// Gossip messages sent.
    pub gossip_sent: u64,
    /// Completed view changes.
    pub view_changes: u64,
    /// Cumulative nanoseconds the sender spent blocked by flow control with
    /// traffic pending — the paper's "whole system blocked temporarily
    /// waiting for garbage collection".
    pub blocked_ns: u64,
    /// Peak pending (flow-control-blocked) queue length.
    pub pending_peak: usize,
    /// `SeqAnn` announcement messages submitted to the reliable layer
    /// (sequencer only).
    pub ann_sent: u64,
    /// Assignments carried by those announcement messages.
    pub ann_assigns: u64,
    /// Assignments piggybacked on outgoing application fragments instead of
    /// costing a `SeqAnn` message of their own (sequencer only).
    pub ann_piggybacked: u64,
    /// Tentative (pre-total-order) deliveries handed up; 0 unless
    /// `tentative_delivery` is configured.
    pub tentative_delivered: u64,
    /// Certification votes transmitted (first time, standalone or
    /// piggybacked).
    pub votes_sent: u64,
    /// Certification votes received from peers (non-duplicate, surfaced in
    /// stream order).
    pub votes_received: u64,
    /// Votes carried in the MTU slack of outgoing data fragments instead of
    /// costing a standalone `Vote` message.
    pub votes_piggybacked: u64,
    /// Votes retransmitted by the heartbeat-driven reliability arm.
    pub vote_resends: u64,
}

#[derive(Debug, Clone)]
struct FragRecord {
    total: u16,
    idx: u16,
    kind: PayloadKind,
    /// Piggybacked sequencer assignments; part of the fragment's identity so
    /// retransmissions (own buffer and peers' retained caches) carry them.
    ann: Vec<SeqAssign>,
    /// Piggybacked certification votes; like `ann`, fragment identity.
    votes: Vec<WireVote>,
    payload: Bytes,
}

#[derive(Debug, Default)]
struct Assembler {
    first_seq: u64,
    total: u16,
    kind: PayloadKind,
    frags: Vec<Bytes>,
}

impl Assembler {
    /// Feeds the next in-order fragment; returns a complete message as
    /// `(first_seq, kind, payload)` when assembly finishes.
    fn feed(&mut self, seq: u64, rec: &FragRecord) -> Option<(u64, PayloadKind, Bytes)> {
        if rec.idx == 0 {
            self.first_seq = seq;
            self.total = rec.total;
            self.kind = rec.kind;
            self.frags.clear();
        } else if self.frags.len() != rec.idx as usize || self.total != rec.total {
            // Stream corruption would indicate a protocol bug: fragments
            // arrive in contiguous order by construction.
            debug_assert!(false, "fragment sequence corrupted");
            self.frags.clear();
            return None;
        }
        self.frags.push(rec.payload.clone());
        if self.frags.len() == self.total as usize {
            let payload = if self.frags.len() == 1 {
                self.frags.pop().expect("one fragment")
            } else {
                let mut b = BytesMut::with_capacity(self.frags.iter().map(Bytes::len).sum());
                for f in self.frags.drain(..) {
                    b.extend_from_slice(&f);
                }
                b.freeze()
            };
            Some((self.first_seq, self.kind, payload))
        } else {
            None
        }
    }
}

#[derive(Debug)]
struct RecvStream {
    /// All fragments `1..=contiguous` received and processed.
    contiguous: u64,
    /// Out-of-order fragments beyond the contiguous prefix.
    ooo: BTreeMap<u64, FragRecord>,
    /// Contiguously received but not-yet-stable fragments, kept so peers can
    /// be served retransmissions when the original sender is gone.
    retained: BTreeMap<u64, FragRecord>,
    /// Highest fragment known to exist in this stream (from data/heartbeats).
    highest_known: u64,
    /// When the current head gap was first noticed (ns); None = no gap.
    gap_since: Option<u64>,
    /// Last NAK emission for this stream (ns).
    last_nak: u64,
    /// Hard upper bound on delivery: set while flushing for streams of
    /// excluded members (ack snapshot, then the agreed cut).
    freeze_at: Option<u64>,
    asm: Assembler,
}

impl RecvStream {
    fn new() -> Self {
        RecvStream {
            contiguous: 0,
            ooo: BTreeMap::new(),
            retained: BTreeMap::new(),
            highest_known: 0,
            gap_since: None,
            last_nak: 0,
            freeze_at: None,
            asm: Assembler::default(),
        }
    }

    fn delivery_limit(&self) -> u64 {
        self.freeze_at.unwrap_or(u64::MAX)
    }
}

#[derive(Debug)]
struct SendState {
    /// Next fragment sequence number to assign (1-based).
    next_frag: u64,
    /// Own unstable fragments (for retransmission).
    buffer: BTreeMap<u64, FragRecord>,
    /// Messages admitted by the application but not yet transmitted
    /// (window/rate/flush blocked).
    pending: VecDeque<(PayloadKind, Bytes)>,
    /// Token bucket for rate-based flow control.
    tokens: f64,
    last_refill: u64,
    rate_timer: Option<TimerId>,
    /// Start of the current blocked period, if any.
    blocked_since: Option<u64>,
}

impl SendState {
    fn sent(&self) -> u64 {
        self.next_frag - 1
    }
}

/// An applied sequencer assignment awaiting delivery, remembering which
/// fragment carried it: uniform delivery must wait until the *order* is
/// stable too — an assignment known only to a minority (e.g. the sequencer
/// alone across a partition) may be re-made differently by the primary
/// component's next sequencer.
#[derive(Debug, Clone, Copy)]
struct AppliedAssign {
    origin: NodeId,
    msg_seq: u64,
    /// Stream that carried the assignment (the sequencer's `SeqAnn`
    /// fragment or the application fragment it piggybacked on).
    carrier: NodeId,
    /// The carrier's fragment sequence number within that stream.
    carrier_seq: u64,
}

#[derive(Debug)]
struct TotalOrder {
    /// Applied assignments for not-yet-delivered messages.
    by_gseq: BTreeMap<u64, AppliedAssign>,
    /// Reverse index of `by_gseq`.
    assigned: HashSet<(u16, u64)>,
    /// Reliably delivered application messages awaiting total-order delivery.
    store: HashMap<(u16, u64), StoredMsg>,
    /// Next global sequence number to deliver.
    next_deliver: u64,
    /// Highest global sequence number applied anywhere (from SeqAnn).
    max_applied: u64,
    /// Sequencer-local assignment counter.
    assign_counter: u64,
    /// Assignments made but not yet announced (batching mode).
    pending_ann: Vec<SeqAssign>,
    /// `(sender, msg_seq)` keys of `pending_ann`, for O(1) dedup on push.
    pending_keys: HashSet<(u16, u64)>,
    ann_timer: Option<TimerId>,
    /// Global sequence numbers that can never be delivered (their message
    /// died with its sender) — skipped deterministically by every survivor.
    skipped: HashSet<u64>,
}

#[derive(Debug)]
struct StoredMsg {
    payload: Bytes,
    /// Sequence number of the message's last fragment (for uniform mode).
    last_frag: u64,
}

/// Certification-vote exchange state: a lightweight reliable stream per
/// voter, independent of the data windows so verdicts never compete with
/// application traffic for the buffer share.
///
/// Sender side: votes get a monotone per-voter sequence number, sit in
/// `pending` until they either ride the MTU slack of an outgoing data
/// fragment or flush as a standalone [`Message::Vote`], and stay in
/// `outbox` until every current view member has cumulatively acked them
/// ([`Message::VoteAck`]); the heartbeat timer retransmits the unacked
/// suffix. Receiver side: per-voter contiguity tracking surfaces votes in
/// cast order exactly once.
#[derive(Debug)]
struct VoteState {
    /// Next vote sequence number to assign (1-based).
    next_seq: u64,
    /// Cast but not yet transmitted votes.
    pending: Vec<WireVote>,
    /// Transmitted votes not yet acked by every view member, keyed by seq.
    outbox: BTreeMap<u64, WireVote>,
    /// Per-peer cumulative ack of *our* vote stream.
    acked: Vec<u64>,
    /// Per-voter highest contiguously received vote sequence number.
    in_up_to: Vec<u64>,
    /// Per-voter out-of-order votes beyond the contiguous prefix.
    in_ooo: Vec<BTreeMap<u64, WireVote>>,
}

impl VoteState {
    fn new(n: usize) -> Self {
        VoteState {
            next_seq: 1,
            pending: Vec::new(),
            outbox: BTreeMap::new(),
            acked: vec![0; n],
            in_up_to: vec![0; n],
            in_ooo: (0..n).map(|_| BTreeMap::new()).collect(),
        }
    }
}

/// A grant issued to a rejoiner, retained so lost `JoinGrant`/`ViewInstall`
/// packets can be healed by resends (driven by `JoinReq` retries and a short
/// resend timer).
#[derive(Debug, Clone)]
struct GrantRecord {
    joiner: NodeId,
    new_view: u64,
    members: NodeSet,
    cut: Vec<u64>,
    order_base: u64,
    skipped: Vec<u64>,
    sequencer: NodeId,
}

#[derive(Debug)]
enum Phase {
    Stable,
    Flushing {
        new_view: u64,
        proposed: NodeSet,
        /// Coordinator only: received vectors collected so far.
        acks: HashMap<u16, Vec<u64>>,
        /// An install we received but whose cut we have not reached.
        pending_install: Option<(u64, NodeSet, Vec<u64>)>,
        /// Cut already sent (coordinator resends it instead of FlushReq).
        sent_install: Option<(NodeSet, Vec<u64>)>,
    },
}

/// The group-communication protocol instance of one node.
///
/// Drive it with [`Gcs::on_start`], [`Gcs::on_packet`], [`Gcs::on_timer`]
/// and [`Gcs::broadcast`]; collect [`Upcall`]s with [`Gcs::drain_upcalls`]
/// after every call. See the crate docs for a complete example.
#[derive(Debug)]
pub struct Gcs {
    me: NodeId,
    cfg: GcsConfig,
    view: View,
    phase: Phase,
    send: SendState,
    recv: Vec<RecvStream>,
    stab: Stability,
    to: TotalOrder,
    last_heard: Vec<u64>,
    suspected: NodeSet,
    upcalls: VecDeque<Upcall>,
    metrics: GcsMetrics,
    halted: bool,
    /// True while this instance is a rejoiner waiting for a `JoinGrant`.
    joining: bool,
    /// A joiner latched for admission at the next order-clean point (only
    /// ever set at the lowest live member).
    pending_join: Option<NodeId>,
    /// The last grant issued, kept for loss-healing resends.
    last_grant: Option<GrantRecord>,
    /// Remaining scheduled re-multicasts of the last grant's install.
    grant_resends: u8,
    /// Sticky sequencer: the role moves only when its holder leaves the
    /// membership, so a rejoiner (possibly the lowest-numbered node) never
    /// races a live sequencer.
    seq_node: NodeId,
    /// Certification-vote exchange state.
    votes: VoteState,
}

impl Gcs {
    /// Creates a node `me` of an `cfg.n_nodes`-member group. All nodes start
    /// in view 0 containing everyone.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the universe or the universe exceeds 64.
    pub fn new(me: NodeId, cfg: GcsConfig) -> Self {
        assert!((me.0 as usize) < cfg.n_nodes, "node id outside universe");
        let view = View::initial(cfg.n_nodes);
        let n = cfg.n_nodes;
        let seq_node = match cfg.dedicated_sequencer {
            Some(s) if view.members.contains(s) => s,
            _ => view.members.min().expect("nonempty universe"),
        };
        Gcs {
            me,
            view,
            phase: Phase::Stable,
            send: SendState {
                next_frag: 1,
                buffer: BTreeMap::new(),
                pending: VecDeque::new(),
                tokens: cfg.rate_burst_bytes as f64,
                last_refill: 0,
                rate_timer: None,
                blocked_since: None,
            },
            recv: (0..n).map(|_| RecvStream::new()).collect(),
            stab: Stability::new(me, n, view.members),
            to: TotalOrder {
                by_gseq: BTreeMap::new(),
                assigned: HashSet::new(),
                store: HashMap::new(),
                next_deliver: 1,
                max_applied: 0,
                assign_counter: 1,
                pending_ann: Vec::new(),
                pending_keys: HashSet::new(),
                ann_timer: None,
                skipped: HashSet::new(),
            },
            last_heard: vec![0; n],
            suspected: NodeSet::EMPTY,
            upcalls: VecDeque::new(),
            metrics: GcsMetrics::default(),
            cfg,
            halted: false,
            joining: false,
            pending_join: None,
            last_grant: None,
            grant_resends: 0,
            seq_node,
            votes: VoteState::new(n),
        }
    }

    /// Creates a *rejoining* instance for a node restarting after a crash
    /// or exclusion. It starts outside any view: [`Gcs::on_start`]
    /// multicasts a `JoinReq` (retried on a timer) until the live primary
    /// component's lowest member grants admission at an order-clean point,
    /// at which point the instance adopts the granted view and baselines,
    /// emits [`Upcall::ViewChange`] + [`Upcall::Rejoined`], and resumes
    /// normal operation. Its pre-crash tentative suffix is implicitly
    /// discarded (fresh state) — safe because halted commits are always a
    /// prefix of the primary component's.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the universe or the universe exceeds 64.
    pub fn rejoin(me: NodeId, cfg: GcsConfig) -> Self {
        let mut g = Gcs::new(me, cfg);
        g.joining = true;
        g
    }

    /// The node this instance runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Protocol counters.
    pub fn metrics(&self) -> GcsMetrics {
        let mut m = self.metrics;
        m.pending_peak = m.pending_peak.max(self.send.pending.len());
        m
    }

    /// Number of fragments held in the send buffer (unstable).
    pub fn unstable_frags(&self) -> usize {
        self.send.buffer.len()
    }

    /// True once this node has been excluded from the group.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// True while this instance is a rejoiner awaiting its grant.
    pub fn is_joining(&self) -> bool {
        self.joining
    }

    /// The node currently acting as sequencer. Sticky: the role moves only
    /// when its holder leaves the membership (a rejoined node never
    /// reclaims it mid-view, even a rejoined dedicated sequencer — two
    /// concurrently live sequencers would order divergently).
    pub fn sequencer(&self) -> Option<NodeId> {
        Some(self.seq_node)
    }

    fn i_am_sequencer(&self) -> bool {
        self.sequencer() == Some(self.me)
    }

    /// Removes and returns all queued upcalls. Call after every entry point.
    pub fn drain_upcalls(&mut self) -> Vec<Upcall> {
        self.upcalls.drain(..).collect()
    }

    /// Starts the protocol: arms the periodic timers and reports the
    /// initial view. A rejoining instance instead announces itself with a
    /// `JoinReq` and retries until granted.
    pub fn on_start(&mut self, rt: &mut dyn ProtocolRuntime) {
        let now = rt.now_nanos();
        self.last_heard = vec![now; self.cfg.n_nodes];
        self.send.last_refill = now;
        if self.joining {
            self.send_join_req(rt);
            rt.set_timer(self.cfg.heartbeat_period, TimerKind::JoinRetry);
            return;
        }
        rt.set_timer(self.cfg.gossip_period, TimerKind::Gossip);
        rt.set_timer(self.cfg.heartbeat_period, TimerKind::Heartbeat);
        rt.set_timer(self.cfg.failure_timeout, TimerKind::FailureCheck);
        rt.set_timer(self.cfg.nak_delay, TimerKind::NakCheck);
        self.upcalls.push_back(Upcall::ViewChange(self.view));
    }

    /// Atomically multicasts `payload` to the group. Delivery (including
    /// back to the caller) happens through [`Upcall::Deliver`] in total
    /// order. Never blocks: under flow-control pressure the message queues
    /// and [`GcsMetrics::blocked_ns`] accumulates. Dropped while halted or
    /// still joining (the application gates traffic on the rejoin anyway).
    pub fn broadcast(&mut self, rt: &mut dyn ProtocolRuntime, payload: Bytes) {
        if self.halted || self.joining {
            return;
        }
        self.metrics.app_sent += 1;
        self.enqueue_send(PayloadKind::App, payload);
        self.drain_sends(rt);
    }

    fn enqueue_send(&mut self, kind: PayloadKind, payload: Bytes) {
        self.send.pending.push_back((kind, payload));
        self.metrics.pending_peak = self.metrics.pending_peak.max(self.send.pending.len());
    }

    // ----- sending & flow control -------------------------------------

    fn frags_needed(&self, len: usize) -> u64 {
        let fp = self.cfg.frag_payload();
        (len.div_ceil(fp).max(1)) as u64
    }

    fn drain_sends(&mut self, rt: &mut dyn ProtocolRuntime) {
        if self.halted {
            return;
        }
        let now = rt.now_nanos();
        // Refill the rate bucket.
        let elapsed = now.saturating_sub(self.send.last_refill);
        self.send.last_refill = now;
        self.send.tokens = (self.send.tokens
            + self.cfg.send_rate_bytes_per_sec * elapsed as f64 / 1e9)
            .min(self.cfg.rate_burst_bytes as f64);

        while let Some((_kind, payload)) = self.send.pending.front() {
            if !matches!(self.phase, Phase::Stable) {
                self.note_blocked(now);
                return;
            }
            let k = self.frags_needed(payload.len());
            let share = self.cfg.buffer_share(self.i_am_sequencer()) as u64;
            let stable_self = self.stab.stable()[self.me.0 as usize];
            let in_flight = self.send.sent().saturating_sub(stable_self);
            if in_flight + k > share {
                // Window full: wait for stability to advance (§5.3 blocking).
                self.note_blocked(now);
                return;
            }
            if self.send.tokens < payload.len() as f64 {
                // Rate limited: wake up when enough tokens have accrued.
                let deficit = payload.len() as f64 - self.send.tokens;
                let wait = (deficit / self.cfg.send_rate_bytes_per_sec * 1e9).ceil() as u64;
                if self.send.rate_timer.is_none() {
                    let id = rt.set_timer(
                        std::time::Duration::from_nanos(wait.max(1)),
                        TimerKind::RateRefill,
                    );
                    self.send.rate_timer = Some(id);
                }
                self.note_blocked(now);
                return;
            }
            self.send.tokens -= payload.len() as f64;
            let (kind, payload) = self.send.pending.pop_front().expect("checked front");
            self.note_unblocked(now);
            self.transmit_message(rt, kind, payload);
        }
        self.note_unblocked(now);
    }

    fn note_blocked(&mut self, now: u64) {
        if self.send.pending.is_empty() {
            return;
        }
        // Accumulate incrementally so a long-lived block (the §5.3
        // pathology) is visible while it is still ongoing.
        if let Some(since) = self.send.blocked_since {
            self.metrics.blocked_ns += now.saturating_sub(since);
        }
        self.send.blocked_since = Some(now);
    }

    fn note_unblocked(&mut self, now: u64) {
        if let Some(since) = self.send.blocked_since.take() {
            self.metrics.blocked_ns += now.saturating_sub(since);
        }
    }

    fn transmit_message(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        kind: PayloadKind,
        payload: Bytes,
    ) {
        let fp = self.cfg.frag_payload();
        let total = self.frags_needed(payload.len()) as u16;
        for idx in 0..total {
            let lo = idx as usize * fp;
            let hi = (lo + fp).min(payload.len());
            let chunk = payload.slice(lo..hi);
            // The last fragment of an application message usually leaves MTU
            // slack: fill it with pending announcements (send-path drain
            // consult of the batching policy).
            let ann = if idx + 1 == total {
                self.take_piggyback(rt, kind, chunk.len())
            } else {
                Vec::new()
            };
            // Votes fill whatever slack the announcements left.
            let votes = if idx + 1 == total && kind == PayloadKind::App {
                let room = self
                    .cfg
                    .frag_payload()
                    .saturating_sub(chunk.len() + ann.len() * SEQ_ASSIGN_WIRE);
                self.take_vote_piggyback(room)
            } else {
                Vec::new()
            };
            let seq = self.send.next_frag;
            self.send.next_frag += 1;
            let rec = FragRecord { total, idx, kind, ann, votes, payload: chunk };
            self.send.buffer.insert(seq, rec.clone());
            let env = Envelope {
                sender: self.me,
                view: self.view.id,
                msg: Message::Data {
                    seq,
                    total_frags: total,
                    frag_idx: idx,
                    kind,
                    ann: rec.ann.clone(),
                    votes: rec.votes.clone(),
                    payload: rec.payload.clone(),
                    retrans: false,
                },
            };
            rt.multicast(env.encode());
            self.metrics.frags_sent += 1;
            // Loopback: count own fragment as received by self.
            self.on_fragment(rt, self.me, seq, rec);
        }
    }

    /// Drains as many pending announcements as fit in the MTU slack of an
    /// outgoing application fragment with `chunk_len` payload bytes. The
    /// carried assignments then cost zero extra messages; if the batch
    /// empties, the pending flush timer is disarmed.
    fn take_piggyback(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        kind: PayloadKind,
        chunk_len: usize,
    ) -> Vec<SeqAssign> {
        if kind != PayloadKind::App
            || self.to.pending_ann.is_empty()
            || !matches!(self.phase, Phase::Stable)
            || !self.i_am_sequencer()
        {
            return Vec::new();
        }
        let room = self.cfg.frag_payload().saturating_sub(chunk_len) / SEQ_ASSIGN_WIRE;
        let k = room.min(self.to.pending_ann.len());
        if k == 0 {
            return Vec::new();
        }
        let ann: Vec<SeqAssign> = self.to.pending_ann.drain(..k).collect();
        for a in &ann {
            self.to.pending_keys.remove(&(a.sender.0, a.msg_seq));
        }
        self.metrics.ann_piggybacked += ann.len() as u64;
        if self.to.pending_ann.is_empty() {
            if let Some(id) = self.to.ann_timer.take() {
                rt.cancel_timer(id);
            }
        }
        ann
    }

    // ----- certification votes ------------------------------------------

    /// Casts a certification verdict for transaction `(origin, txn)` into
    /// the group. The vote loops back to this node immediately (as
    /// [`Upcall::Vote`]) and reaches every peer reliably: it rides the MTU
    /// slack of outgoing data fragments when application traffic is queued,
    /// flushes as a standalone [`Message::Vote`] otherwise, and is
    /// retransmitted by the heartbeat until every view member acked it.
    /// Dropped while halted or still joining — a crashed voter simply goes
    /// silent and the survivors' votes cover its spans.
    pub fn cast_vote(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        origin: u16,
        txn: u64,
        conflict: Option<u64>,
    ) {
        if self.halted || self.joining {
            return;
        }
        let seq = self.votes.next_seq;
        self.votes.next_seq += 1;
        let vote = WireVote { seq, origin, txn, conflict };
        // Loopback: the local application always sees its own verdict.
        self.upcalls.push_back(Upcall::Vote { voter: self.me, vote });
        if self.view.members.len() <= 1 {
            return; // no peers to inform, and none will ever ack
        }
        self.votes.outbox.insert(seq, vote);
        self.votes.pending.push(vote);
        if self.send.pending.is_empty() {
            // No outgoing fragment to ride: flush standalone now. With
            // traffic queued the vote waits for the next fragment's slack
            // (the heartbeat arm is the straggler backstop).
            self.flush_votes(rt);
        }
    }

    /// The next sequence number this node's vote stream will assign. Every
    /// vote already cast carries a strictly smaller `seq`, so callers can
    /// use this value as a staleness threshold: votes below it predate the
    /// moment the snapshot was taken.
    pub fn vote_seq(&self) -> u64 {
        self.votes.next_seq
    }

    /// Most votes that fit one standalone `Vote` frame: envelope plus the
    /// base/count header, then [`WIRE_VOTE_WIRE`] per vote, all within
    /// `max_packet`. The network drops datagrams over the MTU, so a frame
    /// that overflows it is lost on every transmission — including the
    /// heartbeat retransmissions that are supposed to repair the loss.
    fn max_votes_per_frame(&self) -> usize {
        const VOTE_HEADER: usize = ENVELOPE_OVERHEAD + 8 + 2;
        (self.cfg.max_packet.saturating_sub(VOTE_HEADER) / WIRE_VOTE_WIRE)
            .clamp(1, u16::MAX as usize)
    }

    /// Transmits all pending votes as standalone `Vote` frames.
    fn flush_votes(&mut self, rt: &mut dyn ProtocolRuntime) {
        if self.votes.pending.is_empty() || self.halted || self.joining {
            return;
        }
        let max_chunk = self.max_votes_per_frame();
        let base = self.vote_base();
        while !self.votes.pending.is_empty() {
            let take = self.votes.pending.len().min(max_chunk);
            let chunk: Vec<WireVote> = self.votes.pending.drain(..take).collect();
            self.metrics.votes_sent += chunk.len() as u64;
            let env = Envelope {
                sender: self.me,
                view: self.view.id,
                msg: Message::Vote { base, votes: chunk },
            };
            rt.multicast(env.encode());
        }
    }

    /// The first un-garbage-collected sequence number of our vote stream.
    /// GC only advances past votes acked by *every* view member, so for an
    /// operational receiver a jump to this base is a no-op; a fresh
    /// rejoiner legitimately skips to it (pre-rejoin outcomes arrive with
    /// the state transfer).
    fn vote_base(&self) -> u64 {
        self.votes.outbox.keys().next().copied().unwrap_or(self.votes.next_seq)
    }

    /// Drains as many pending votes as fit in `room` payload bytes of an
    /// outgoing application fragment (the slack left after announcements).
    fn take_vote_piggyback(&mut self, room: usize) -> Vec<WireVote> {
        if self.votes.pending.is_empty() {
            return Vec::new();
        }
        let k = (room / WIRE_VOTE_WIRE).min(self.votes.pending.len());
        if k == 0 {
            return Vec::new();
        }
        let votes: Vec<WireVote> = self.votes.pending.drain(..k).collect();
        self.metrics.votes_sent += votes.len() as u64;
        self.metrics.votes_piggybacked += votes.len() as u64;
        votes
    }

    /// Feeds received votes from `from`'s stream: jump to `base` (0 = no
    /// jump), buffer out-of-order, surface the contiguous prefix exactly
    /// once, and cumulatively ack so the voter can garbage-collect.
    fn on_vote_frame(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        from: NodeId,
        base: u64,
        votes: Vec<WireVote>,
    ) {
        let j = from.0 as usize;
        let jump = base.saturating_sub(1);
        if jump > self.votes.in_up_to[j] {
            self.votes.in_up_to[j] = jump;
            self.votes.in_ooo[j] = self.votes.in_ooo[j].split_off(&(jump + 1));
        }
        for v in votes {
            if v.seq <= self.votes.in_up_to[j] || self.votes.in_ooo[j].contains_key(&v.seq) {
                continue; // duplicate
            }
            self.votes.in_ooo[j].insert(v.seq, v);
        }
        loop {
            let next = self.votes.in_up_to[j] + 1;
            let Some(v) = self.votes.in_ooo[j].remove(&next) else { break };
            self.votes.in_up_to[j] = next;
            self.metrics.votes_received += 1;
            self.upcalls.push_back(Upcall::Vote { voter: from, vote: v });
        }
        let env = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::VoteAck { up_to: self.votes.in_up_to[j] },
        };
        rt.unicast(from, env.encode());
    }

    fn on_vote_ack(&mut self, from: NodeId, up_to: u64) {
        let j = from.0 as usize;
        self.votes.acked[j] = self.votes.acked[j].max(up_to);
        self.gc_votes();
    }

    /// Garbage-collects the vote outbox up to the minimum cumulative ack
    /// over the *current* view's peers (re-evaluated after every install:
    /// a crashed receiver stops gating GC the moment it is excluded).
    fn gc_votes(&mut self) {
        let min = self
            .view
            .members
            .iter()
            .filter(|&m| m != self.me)
            .map(|m| self.votes.acked[m.0 as usize])
            .min();
        match min {
            None => self.votes.outbox.clear(),
            Some(min) => {
                // Pending (never-transmitted) votes always have sequence
                // numbers above any ack, so splitting cannot lose them.
                self.votes.outbox = self.votes.outbox.split_off(&(min + 1));
            }
        }
    }

    /// Heartbeat-driven reliability arm: retransmits the unacked suffix of
    /// the vote stream. Empty in the steady state — acks arrive within a
    /// round-trip — so this only fires on real loss or a stalled receiver.
    fn resend_votes(&mut self, rt: &mut dyn ProtocolRuntime) {
        // The pending suffix of the outbox has never been transmitted —
        // that is `flush_votes`' job, not a retransmission.
        let limit = self.votes.pending.first().map_or(u64::MAX, |v| v.seq);
        if self.votes.outbox.keys().next().is_none_or(|&first| first >= limit) {
            return;
        }
        const MAX_RESEND: usize = 256;
        let base = self.vote_base();
        let suffix: Vec<WireVote> =
            self.votes.outbox.range(..limit).map(|(_, v)| *v).take(MAX_RESEND).collect();
        self.metrics.vote_resends += suffix.len() as u64;
        // MTU-sized frames: an oversized retransmission would itself be
        // dropped, pinning the receivers' gap open forever. `base` is the
        // same for every frame — a receiver only jumps forward to it, and
        // the chunks are contiguous from there.
        for chunk in suffix.chunks(self.max_votes_per_frame()) {
            let env = Envelope {
                sender: self.me,
                view: self.view.id,
                msg: Message::Vote { base, votes: chunk.to_vec() },
            };
            rt.multicast(env.encode());
        }
    }

    // ----- receive path ------------------------------------------------

    /// Entry point for a raw packet from the network.
    pub fn on_packet(&mut self, rt: &mut dyn ProtocolRuntime, raw: Bytes) {
        if self.halted {
            return;
        }
        rt.charge(self.cfg.proc_cost);
        let env = match Envelope::decode(raw) {
            Ok(e) => e,
            Err(_) => return, // stray or corrupt packet: drop silently
        };
        if env.sender == self.me {
            return; // our own multicast looped back
        }
        let now = rt.now_nanos();
        if (env.sender.0 as usize) < self.last_heard.len() {
            self.last_heard[env.sender.0 as usize] = now;
        } else {
            return; // outside the universe
        }
        if self.joining {
            // A rejoiner is deaf to everything but its grant: it has no
            // view to interpret the traffic against yet.
            if let Message::JoinGrant { new_view, members, cut, order_base, skipped, sequencer } =
                env.msg
            {
                self.on_join_grant(rt, new_view, members, cut, order_base, skipped, sequencer);
            }
            return;
        }
        match env.msg {
            Message::Data { seq, total_frags, frag_idx, kind, ann, votes, payload, retrans } => {
                if retrans {
                    self.metrics.duplicates += 0; // counted below if truly dup
                }
                let rec =
                    FragRecord { total: total_frags, idx: frag_idx, kind, ann, votes, payload };
                self.on_fragment(rt, env.sender, seq, rec);
                self.try_complete_install(rt);
            }
            Message::Nak { target, ranges } => {
                self.metrics.naks_received += 1;
                self.answer_nak(rt, env.sender, target, &ranges);
            }
            Message::Gossip(g) => {
                let received = self.received_vec();
                if self.stab.on_gossip(&g, &received) {
                    self.on_stability_advance(rt);
                }
            }
            Message::Heartbeat { sent } => {
                let s = &mut self.recv[env.sender.0 as usize];
                s.highest_known = s.highest_known.max(sent);
            }
            Message::FlushReq { new_view, members } => {
                self.on_flush_req(rt, env.sender, new_view, members);
            }
            Message::FlushAck { new_view, received } => {
                self.on_flush_ack(rt, env.sender, new_view, received);
            }
            Message::ViewInstall { new_view, members, cut } => {
                self.on_view_install(rt, new_view, members, cut);
            }
            Message::JoinReq => {
                self.on_join_req(rt, env.sender);
            }
            Message::Vote { base, votes } => {
                self.on_vote_frame(rt, env.sender, base, votes);
            }
            Message::VoteAck { up_to } => {
                self.on_vote_ack(env.sender, up_to);
            }
            Message::JoinGrant { .. } => {
                // Duplicate grant after adoption (or a stray): ignore.
            }
        }
    }

    fn received_vec(&self) -> Vec<u64> {
        (0..self.cfg.n_nodes)
            .map(
                |j| {
                    if j == self.me.0 as usize {
                        self.send.sent()
                    } else {
                        self.recv[j].contiguous
                    }
                },
            )
            .collect()
    }

    fn on_fragment(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        from: NodeId,
        seq: u64,
        rec: FragRecord,
    ) {
        let j = from.0 as usize;
        let is_self = from == self.me;
        let stream = &mut self.recv[j];
        stream.highest_known = stream.highest_known.max(seq);
        if seq <= stream.contiguous || stream.ooo.contains_key(&seq) {
            self.metrics.duplicates += 1;
            return;
        }
        if !is_self {
            self.metrics.frags_received += 1;
        }
        stream.ooo.insert(seq, rec);
        self.advance_stream(rt, from);
    }

    /// Advances the contiguous prefix of `from`'s stream as far as buffered
    /// fragments and the flush freeze limit allow, delivering completed
    /// messages upward and maintaining gap bookkeeping.
    fn advance_stream(&mut self, rt: &mut dyn ProtocolRuntime, from: NodeId) {
        let j = from.0 as usize;
        let is_self = from == self.me;
        let mut completed: Vec<(u64, PayloadKind, Bytes)> = Vec::new();
        let mut anns: Vec<(SeqAssign, u64)> = Vec::new();
        let mut piggy_votes: Vec<WireVote> = Vec::new();
        {
            let stream = &mut self.recv[j];
            loop {
                let limit = stream.delivery_limit();
                if stream.contiguous >= limit {
                    break;
                }
                let next = stream.contiguous + 1;
                let Some(rec) = stream.ooo.remove(&next) else { break };
                stream.contiguous = next;
                if !is_self {
                    stream.retained.insert(next, rec.clone());
                }
                // Piggybacked assignments apply only once their carrier
                // fragment is consumed into the contiguous prefix: that is
                // the same flush/cut discipline `SeqAnn` messages obey, so a
                // beyond-cut straggler can never apply assignments at some
                // survivors and not others across a view change.
                anns.extend(rec.ann.iter().map(|a| (*a, next)));
                // Piggybacked votes feed the per-voter vote stream (own
                // votes already looped back at cast time).
                if !is_self {
                    piggy_votes.extend(rec.votes.iter().copied());
                }
                if let Some(msg) = stream.asm.feed(next, &rec) {
                    completed.push(msg);
                }
            }
            // Gap bookkeeping for the NAK machinery.
            let target = stream.highest_known.min(stream.delivery_limit());
            if stream.contiguous < target {
                if stream.gap_since.is_none() {
                    stream.gap_since = Some(rt.now_nanos());
                }
            } else {
                stream.gap_since = None;
            }
        }
        if !anns.is_empty() {
            for (a, carrier_seq) in anns {
                self.apply_assignment(a, from, carrier_seq);
            }
            self.try_deliver(rt);
        }
        if !piggy_votes.is_empty() {
            self.on_vote_frame(rt, from, 0, piggy_votes);
        }
        for (msg_seq, kind, payload) in completed {
            self.on_reliable_msg(rt, from, msg_seq, kind, payload);
        }
    }

    fn on_reliable_msg(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        origin: NodeId,
        msg_seq: u64,
        kind: PayloadKind,
        payload: Bytes,
    ) {
        match kind {
            PayloadKind::App => {
                let last_frag = msg_seq + self.frags_needed(payload.len()) - 1;
                if self.cfg.tentative_delivery {
                    // The content is final here — only its position in the
                    // total order is still unknown. `Bytes` clones share the
                    // buffer, so the head start costs no copy.
                    self.metrics.tentative_delivered += 1;
                    self.upcalls.push_back(Upcall::Tentative {
                        origin,
                        msg_seq,
                        payload: payload.clone(),
                    });
                }
                self.to.store.insert((origin.0, msg_seq), StoredMsg { payload, last_frag });
                if self.i_am_sequencer()
                    && matches!(self.phase, Phase::Stable)
                    && !self.to.assigned.contains(&(origin.0, msg_seq))
                {
                    self.assign(rt, origin, msg_seq);
                }
                self.try_deliver(rt);
            }
            PayloadKind::SeqAnn => {
                // The announcement's own last fragment is the order carrier:
                // uniform delivery waits for it to be stable as well.
                let carrier_seq = msg_seq + self.frags_needed(payload.len()) - 1;
                if let Ok(assigns) = decode_seq_ann(payload) {
                    for a in assigns {
                        self.apply_assignment(a, origin, carrier_seq);
                    }
                    self.try_deliver(rt);
                }
            }
        }
    }

    fn apply_assignment(&mut self, a: SeqAssign, carrier: NodeId, carrier_seq: u64) {
        if self.to.assigned.contains(&(a.sender.0, a.msg_seq))
            || a.global_seq < self.to.next_deliver
        {
            return;
        }
        self.to.assigned.insert((a.sender.0, a.msg_seq));
        self.to.by_gseq.insert(
            a.global_seq,
            AppliedAssign { origin: a.sender, msg_seq: a.msg_seq, carrier, carrier_seq },
        );
        self.to.max_applied = self.to.max_applied.max(a.global_seq);
        self.to.assign_counter = self.to.assign_counter.max(a.global_seq + 1);
    }

    fn assign(&mut self, rt: &mut dyn ProtocolRuntime, origin: NodeId, msg_seq: u64) {
        // Dedup on push: a re-`assign` after sequencer recovery must not
        // queue the same message twice in one batch (the duplicate would
        // waste a global sequence number on an entry every receiver drops).
        if !self.to.pending_keys.insert((origin.0, msg_seq)) {
            return;
        }
        let a = SeqAssign { sender: origin, msg_seq, global_seq: self.to.assign_counter };
        self.to.assign_counter += 1;
        self.to.pending_ann.push(a);
        // A sequencer-origin message is assigned through loopback right
        // after its own send, so its fragments are unavoidably still
        // unstable — they are the carrier of this assignment, not backlog.
        let carrier_frags = if origin == self.me {
            self.to.store.get(&(origin.0, msg_seq)).map_or(0, |m| m.last_frag - msg_seq + 1)
                as usize
        } else {
            0
        };
        self.schedule_ann(rt, carrier_frags);
    }

    /// Consults the batching policy for the queued announcements: flush now,
    /// or make sure a flush timer is armed. Called at assign time, with the
    /// triggering message's own fragment count as `carrier_frags`.
    fn schedule_ann(&mut self, rt: &mut dyn ProtocolRuntime, carrier_frags: usize) {
        if self.to.pending_ann.is_empty() {
            return;
        }
        // Backlog: queued sequencer work *besides* the assignment that
        // triggered the consult — batch-mates already waiting, untransmitted
        // messages, and unstable fragments still consuming the sequencer's
        // buffer share (the §5.3 resource announcements compete for). All
        // three drain to zero when the sequencer is idle and stability has
        // caught up, so the adaptive policy then flushes in one hop.
        let stable_self = self.stab.stable()[self.me.0 as usize];
        let in_flight =
            (self.send.sent().saturating_sub(stable_self) as usize).saturating_sub(carrier_frags);
        let backlog = (self.to.pending_ann.len() - 1) + self.send.pending.len() + in_flight;
        match self.cfg.ann_policy.window(backlog) {
            None => self.flush_ann(rt),
            Some(d) => {
                if self.to.ann_timer.is_none() {
                    self.to.ann_timer = Some(rt.set_timer(d, TimerKind::AnnFlush));
                }
            }
        }
    }

    fn flush_ann(&mut self, rt: &mut dyn ProtocolRuntime) {
        if let Some(id) = self.to.ann_timer.take() {
            rt.cancel_timer(id);
        }
        if self.to.pending_ann.is_empty() || !matches!(self.phase, Phase::Stable) {
            // Outside `Stable` the batch is retained; `install` then clears
            // it and its re-assignment pass rebuilds (and re-schedules, via
            // `assign`) every still-unassigned message — so a flush timer
            // fired mid-view-change strands nothing.
            return;
        }
        // One wire message per chunk keeps the u16 count field sound under
        // extreme backlog.
        const MAX_ANN_CHUNK: usize = 4096;
        while !self.to.pending_ann.is_empty() {
            let take = self.to.pending_ann.len().min(MAX_ANN_CHUNK);
            let chunk: Vec<SeqAssign> = self.to.pending_ann.drain(..take).collect();
            for a in &chunk {
                self.to.pending_keys.remove(&(a.sender.0, a.msg_seq));
            }
            self.metrics.ann_sent += 1;
            self.metrics.ann_assigns += chunk.len() as u64;
            self.enqueue_send(PayloadKind::SeqAnn, encode_seq_ann(&chunk));
        }
        self.drain_sends(rt);
    }

    fn try_deliver(&mut self, rt: &mut dyn ProtocolRuntime) {
        loop {
            let g = self.to.next_deliver;
            if self.to.skipped.remove(&g) {
                self.to.next_deliver += 1;
                continue;
            }
            let Some(&AppliedAssign { origin, msg_seq, carrier, carrier_seq }) =
                self.to.by_gseq.get(&g)
            else {
                break;
            };
            let Some(stored) = self.to.store.get(&(origin.0, msg_seq)) else { break };
            if self.cfg.uniform_delivery {
                // Uniform mode: deliver only once both the message *and its
                // ordering* are stable (received by all operational
                // members). Gating on the carrier keeps an isolated
                // sequencer from delivering an order the primary component
                // never saw and will re-make differently.
                let stable = self.stab.stable();
                if stable[origin.0 as usize] < stored.last_frag
                    || stable[carrier.0 as usize] < carrier_seq
                {
                    break;
                }
            }
            let stored = self.to.store.remove(&(origin.0, msg_seq)).expect("checked above");
            self.to.by_gseq.remove(&g);
            self.to.assigned.remove(&(origin.0, msg_seq));
            self.to.next_deliver += 1;
            self.metrics.delivered += 1;
            self.upcalls.push_back(Upcall::Deliver {
                origin,
                global_seq: g,
                payload: stored.payload,
            });
        }
        let _ = rt;
    }

    // ----- NAK / retransmission ----------------------------------------

    fn answer_nak(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        requester: NodeId,
        target: NodeId,
        ranges: &[(u64, u64)],
    ) {
        const MAX_ANSWER: usize = 64;
        let mut sent = 0usize;
        for &(from, to) in ranges {
            for seq in from..=to {
                if sent >= MAX_ANSWER {
                    return;
                }
                let rec = if target == self.me {
                    self.send.buffer.get(&seq).cloned()
                } else {
                    let s = &self.recv[target.0 as usize];
                    s.retained.get(&seq).cloned().or_else(|| s.ooo.get(&seq).cloned())
                };
                if let Some(rec) = rec {
                    let env = Envelope {
                        sender: target,
                        view: self.view.id,
                        msg: Message::Data {
                            seq,
                            total_frags: rec.total,
                            frag_idx: rec.idx,
                            kind: rec.kind,
                            ann: rec.ann,
                            votes: rec.votes,
                            payload: rec.payload,
                            retrans: true,
                        },
                    };
                    rt.unicast(requester, env.encode());
                    self.metrics.retrans_sent += 1;
                    sent += 1;
                }
            }
        }
    }

    fn nak_scan(&mut self, rt: &mut dyn ProtocolRuntime) {
        const MAX_RANGES: usize = 32;
        let now = rt.now_nanos();
        let nak_delay = self.cfg.nak_delay.as_nanos() as u64;
        let nak_retry = self.cfg.nak_retry.as_nanos() as u64;
        for j in 0..self.cfg.n_nodes {
            if j == self.me.0 as usize {
                continue;
            }
            let (ranges, target_alive) = {
                let stream = &self.recv[j];
                let limit = stream.highest_known.min(stream.delivery_limit());
                if stream.contiguous >= limit {
                    continue;
                }
                let Some(gap_since) = stream.gap_since else {
                    // Tail loss: no later fragment arrived; rely on the
                    // heartbeat-advertised length to open the gap clock.
                    self.recv[j].gap_since = Some(now);
                    continue;
                };
                if now.saturating_sub(gap_since) < nak_delay
                    || now.saturating_sub(stream.last_nak) < nak_retry
                {
                    continue;
                }
                let mut ranges: Vec<(u64, u64)> = Vec::new();
                let mut next = stream.contiguous + 1;
                for (&have, _) in stream.ooo.range(next..=limit) {
                    if have > next {
                        ranges.push((next, have - 1));
                        if ranges.len() >= MAX_RANGES {
                            break;
                        }
                    }
                    next = have + 1;
                }
                if ranges.len() < MAX_RANGES && next <= limit {
                    ranges.push((next, limit));
                }
                let alive = self.view.members.contains(NodeId(j as u16))
                    && !self.suspected.contains(NodeId(j as u16));
                (ranges, alive)
            };
            if ranges.is_empty() {
                continue;
            }
            self.recv[j].last_nak = now;
            self.metrics.naks_sent += 1;
            let msg = Message::Nak { target: NodeId(j as u16), ranges };
            let env = Envelope { sender: self.me, view: self.view.id, msg };
            if target_alive {
                rt.unicast(NodeId(j as u16), env.encode());
            } else {
                // Original sender is gone: ask the survivors.
                let encoded = env.encode();
                for m in self.view.members.iter() {
                    if m != self.me && m != NodeId(j as u16) {
                        rt.unicast(m, encoded.clone());
                    }
                }
            }
        }
    }

    // ----- stability ----------------------------------------------------

    fn on_stability_advance(&mut self, rt: &mut dyn ProtocolRuntime) {
        let stable = self.stab.stable().to_vec();
        // GC own send buffer and peers' retained caches.
        let own = stable[self.me.0 as usize];
        self.send.buffer = self.send.buffer.split_off(&(own + 1));
        for (j, s) in self.recv.iter_mut().enumerate() {
            let keep = stable[j] + 1;
            s.retained = s.retained.split_off(&keep);
        }
        if self.cfg.uniform_delivery {
            self.try_deliver(rt);
        }
        // Freed buffer share may unblock the sender.
        self.drain_sends(rt);
    }

    // ----- failure detection & view changes ------------------------------

    /// Primary-component rule: a membership may carry the group forward only
    /// if it is a strict majority of the current view. Minority components
    /// (e.g. the small side of a partition, or an isolated sequencer) halt
    /// instead of installing a view — two disjoint components that both kept
    /// committing would be a split-brain the safety check rightly flags.
    ///
    /// The majority is judged against this node's *local* view, which can be
    /// stale if it missed an intermediate install: such a node may halt on a
    /// proposal that is in fact a legitimate majority of the newer view. The
    /// rule deliberately errs on that side — halting is always safe (the
    /// halted node's commits stay a prefix), while proceeding on a stale
    /// denominator could admit two disjoint "majorities".
    fn is_primary(&self, members: NodeSet) -> bool {
        members.len() * 2 > self.view.members.len()
    }

    /// Halts this node — excluded by a view proposal, or a survivor that
    /// cannot prove it is in the primary component. Either way the
    /// application treats it as crashed; its commits stay a prefix of the
    /// primary component's.
    fn halt_excluded(&mut self) {
        self.halted = true;
        self.upcalls.push_back(Upcall::Excluded);
    }

    fn failure_scan(&mut self, rt: &mut dyn ProtocolRuntime) {
        let now = rt.now_nanos();
        let timeout = self.cfg.failure_timeout.as_nanos() as u64;
        let mut newly = false;
        for j in self.view.members.iter() {
            if j == self.me || self.suspected.contains(j) {
                continue;
            }
            if now.saturating_sub(self.last_heard[j.0 as usize]) > timeout {
                self.suspected.insert(j);
                newly = true;
            }
        }
        if newly {
            let alive = self.view.members.difference(self.suspected);
            if !self.is_primary(alive) {
                // We lost contact with a majority of the view: we are (at
                // best) in a minority partition segment. Halt.
                self.halt_excluded();
                return;
            }
            self.maybe_coordinate_flush(rt);
        }
    }

    fn maybe_coordinate_flush(&mut self, rt: &mut dyn ProtocolRuntime) {
        let survivors = self.view.members.difference(self.suspected);
        if survivors.min() != Some(self.me) {
            return; // not the coordinator
        }
        let next_view = match &self.phase {
            Phase::Stable => self.view.id + 1,
            Phase::Flushing { new_view, proposed, .. } => {
                if *proposed == survivors {
                    return; // already flushing this proposal
                }
                new_view + 1
            }
        };
        self.start_flush(rt, next_view, survivors);
    }

    fn start_flush(&mut self, rt: &mut dyn ProtocolRuntime, new_view: u64, proposed: NodeSet) {
        self.freeze_excluded(proposed);
        let mut acks = HashMap::new();
        acks.insert(self.me.0, self.received_vec());
        self.phase =
            Phase::Flushing { new_view, proposed, acks, pending_install: None, sent_install: None };
        let env = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::FlushReq { new_view, members: proposed },
        };
        rt.multicast(env.encode());
        rt.set_timer(self.cfg.heartbeat_period, TimerKind::FlushResend);
        self.check_flush_complete(rt);
    }

    /// Freezes delivery from members excluded by `proposed` at the current
    /// snapshot, so no survivor delivers messages beyond what will be in the
    /// agreed cut.
    fn freeze_excluded(&mut self, proposed: NodeSet) {
        for j in 0..self.cfg.n_nodes {
            let node = NodeId(j as u16);
            if node != self.me && self.view.members.contains(node) && !proposed.contains(node) {
                let s = &mut self.recv[j];
                if s.freeze_at.is_none() {
                    s.freeze_at = Some(s.contiguous);
                }
            }
        }
    }

    fn on_flush_req(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        coordinator: NodeId,
        new_view: u64,
        members: NodeSet,
    ) {
        if new_view <= self.view.id {
            return;
        }
        if let Phase::Flushing { new_view: cur, .. } = &self.phase {
            if new_view < *cur {
                return;
            }
        }
        if !members.contains(self.me) || !self.is_primary(members) {
            self.halt_excluded();
            return;
        }
        self.freeze_excluded(members);
        match &mut self.phase {
            Phase::Flushing { new_view: cur, proposed, .. } if *cur == new_view => {
                *proposed = members;
            }
            _ => {
                self.phase = Phase::Flushing {
                    new_view,
                    proposed: members,
                    acks: HashMap::new(),
                    pending_install: None,
                    sent_install: None,
                };
            }
        }
        let env = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::FlushAck { new_view, received: self.received_vec() },
        };
        rt.unicast(coordinator, env.encode());
    }

    fn on_flush_ack(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        sender: NodeId,
        new_view: u64,
        received: Vec<u64>,
    ) {
        let Phase::Flushing { new_view: cur, acks, .. } = &mut self.phase else { return };
        if *cur != new_view || received.len() != self.cfg.n_nodes {
            return;
        }
        acks.insert(sender.0, received);
        self.check_flush_complete(rt);
    }

    fn check_flush_complete(&mut self, rt: &mut dyn ProtocolRuntime) {
        let Phase::Flushing { new_view, proposed, acks, sent_install, .. } = &mut self.phase else {
            return;
        };
        if sent_install.is_some() {
            return;
        }
        let all_acked = proposed.iter().all(|m| acks.contains_key(&m.0));
        if !all_acked {
            return;
        }
        // Cut: for every stream, the maximum any survivor has received —
        // every survivor can reach it via retransmission from its peers.
        let n = self.cfg.n_nodes;
        let mut cut = vec![0u64; n];
        for v in acks.values() {
            for (c, r) in cut.iter_mut().zip(v) {
                *c = (*c).max(*r);
            }
        }
        let new_view = *new_view;
        let members = *proposed;
        *sent_install = Some((members, cut.clone()));
        let env = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::ViewInstall { new_view, members, cut: cut.clone() },
        };
        rt.multicast(env.encode());
        self.on_view_install(rt, new_view, members, cut);
    }

    fn on_view_install(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        new_view: u64,
        members: NodeSet,
        cut: Vec<u64>,
    ) {
        if new_view <= self.view.id || cut.len() != self.cfg.n_nodes {
            return;
        }
        if !members.contains(self.me) || !self.is_primary(members) {
            self.halt_excluded();
            return;
        }
        // Adopt the install (possibly without having seen the FlushReq).
        let acks = match std::mem::replace(&mut self.phase, Phase::Stable) {
            Phase::Flushing { acks, .. } => acks,
            Phase::Stable => HashMap::new(),
        };
        self.phase = Phase::Flushing {
            new_view,
            proposed: members,
            acks,
            pending_install: Some((new_view, members, cut)),
            sent_install: None,
        };
        self.try_complete_install(rt);
    }

    fn try_complete_install(&mut self, rt: &mut dyn ProtocolRuntime) {
        let Phase::Flushing { pending_install: Some((new_view, members, cut)), .. } = &self.phase
        else {
            return;
        };
        let (new_view, members, cut) = (*new_view, *members, cut.clone());
        // Raise the freeze limit of excluded streams to the agreed cut and
        // replay buffered fragments now allowed through; fragments still
        // missing will be NAKed from the survivors by nak_scan.
        let mut reached = true;
        // Index loop: `j` addresses both `cut` and `self.recv` while
        // `advance_stream` re-borrows `self` mutably.
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.cfg.n_nodes {
            let node = NodeId(j as u16);
            if node == self.me || members.contains(node) || !self.view.members.contains(node) {
                continue;
            }
            {
                let s = &mut self.recv[j];
                s.freeze_at = Some(cut[j]);
                s.highest_known = s.highest_known.max(cut[j]);
            }
            self.advance_stream(rt, node);
            if self.recv[j].contiguous < cut[j] {
                reached = false;
            }
        }
        // advance_stream may have delivered messages but cannot change the
        // phase; the pending install is still ours to complete.
        if reached {
            self.install(rt, new_view, members, cut);
        }
    }

    fn install(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        new_view: u64,
        members: NodeSet,
        cut: Vec<u64>,
    ) {
        // Drop undeliverable fragments beyond the cut for dead streams. A
        // message left partially assembled at the cut died with its sender
        // and can never complete anywhere — clear it, or it would block
        // rejoin grants (which require assembly-clean streams) forever.
        // Index loop: `j` addresses both `cut` and `self.recv`.
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.cfg.n_nodes {
            let node = NodeId(j as u16);
            if node == self.me || members.contains(node) {
                continue;
            }
            let s = &mut self.recv[j];
            s.ooo.clear();
            s.gap_since = None;
            s.freeze_at = Some(cut[j]);
            if s.contiguous >= cut[j] {
                s.asm = Assembler::default();
            }
        }
        // Newly added members (rejoiners): unfreeze their streams — their
        // new traffic continues the old fragment numbering past the freeze
        // point — and reset the failure detector so the fresh member is not
        // instantly re-suspected on pre-crash silence.
        let now = rt.now_nanos();
        for node in members.difference(self.view.members).iter() {
            let s = &mut self.recv[node.0 as usize];
            s.freeze_at = None;
            s.gap_since = None;
            s.asm = Assembler::default();
            self.last_heard[node.0 as usize] = now;
            // A rejoiner restarts its vote stream from seq 1: reset its
            // receive tracking, and zero its (stale-high) ack of ours so GC
            // cannot run ahead of what the fresh instance actually holds.
            let j = node.0 as usize;
            self.votes.acked[j] = 0;
            self.votes.in_up_to[j] = 0;
            self.votes.in_ooo[j].clear();
        }
        // Orphaned assignments: messages sequenced by the old view but whose
        // content died with its sender can never be delivered — skip their
        // global sequence numbers (identically at every survivor).
        let mut orphans: Vec<u64> = Vec::new();
        for (&g, aa) in &self.to.by_gseq {
            if !members.contains(aa.origin)
                && aa.origin != self.me
                && aa.msg_seq > cut[aa.origin.0 as usize]
            {
                orphans.push(g);
            }
        }
        for g in orphans {
            let aa = self.to.by_gseq.remove(&g).expect("listed above");
            self.to.assigned.remove(&(aa.origin.0, aa.msg_seq));
            self.to.skipped.insert(g);
        }
        // Announcements never sent can be re-assigned from scratch (with a
        // fresh flush timer: the old one belongs to the dropped batch).
        self.to.pending_ann.clear();
        self.to.pending_keys.clear();
        if let Some(id) = self.to.ann_timer.take() {
            rt.cancel_timer(id);
        }
        self.to.assign_counter = self.to.max_applied + 1;

        self.view = View { id: new_view, members };
        self.phase = Phase::Stable;
        self.suspected = self.suspected.difference(members);
        self.stab.set_members(members);
        // Excluded receivers stop gating vote GC the moment they are out.
        self.gc_votes();
        // Sticky sequencer: fail over only when the holder left. A
        // still-member dedicated sequencer is preferred on failover; a
        // *rejoined* one does not reclaim the role (it would race the
        // incumbent across the unsynchronized install instants).
        if !members.contains(self.seq_node) {
            self.seq_node = match self.cfg.dedicated_sequencer {
                Some(s) if members.contains(s) => s,
                _ => members.min().expect("installed view contains me"),
            };
        }
        self.metrics.view_changes += 1;
        self.upcalls.push_back(Upcall::ViewChange(self.view));

        // New sequencer sequences everything left unassigned,
        // deterministically ordered.
        if self.i_am_sequencer() {
            let mut unassigned: Vec<(u16, u64)> =
                self.to.store.keys().filter(|k| !self.to.assigned.contains(k)).copied().collect();
            unassigned.sort_unstable();
            for (origin, msg_seq) in unassigned {
                self.assign(rt, NodeId(origin), msg_seq);
            }
        }
        self.try_deliver(rt);
        self.drain_sends(rt);
    }

    // ----- rejoin --------------------------------------------------------

    /// Suspected nodes that are still members — the set that matters for
    /// flush coordination and grant admission (suspicions of already-removed
    /// nodes linger harmlessly in `suspected`).
    fn live_suspects(&self) -> NodeSet {
        NodeSet::from_bits(self.suspected.bits() & self.view.members.bits())
    }

    fn send_join_req(&mut self, rt: &mut dyn ProtocolRuntime) {
        let env = Envelope { sender: self.me, view: 0, msg: Message::JoinReq };
        rt.multicast(env.encode());
    }

    /// A restarted node asks to rejoin. Only the lowest live member grants;
    /// everyone else ignores the request. If the joiner is already a member
    /// (a previous grant or its install was lost on the wire), the stored
    /// grant is resent instead.
    fn on_join_req(&mut self, rt: &mut dyn ProtocolRuntime, joiner: NodeId) {
        if joiner == self.me || (joiner.0 as usize) >= self.cfg.n_nodes {
            return;
        }
        if self.view.members.contains(joiner) {
            self.resend_last_grant(rt, joiner);
            return;
        }
        if self.view.members.difference(self.suspected).min() != Some(self.me) {
            return;
        }
        if self.pending_join.is_none() {
            self.pending_join = Some(joiner);
        }
        self.try_grant_join(rt);
    }

    fn resend_last_grant(&mut self, rt: &mut dyn ProtocolRuntime, joiner: NodeId) {
        let Some(g) = self.last_grant.clone() else { return };
        // Only while the granted view is still current: past it, the joiner
        // went silent through a later flush and will be re-admitted fresh.
        if g.joiner != joiner || g.new_view != self.view.id {
            return;
        }
        let grant = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::JoinGrant {
                new_view: g.new_view,
                members: g.members,
                cut: g.cut.clone(),
                order_base: g.order_base,
                skipped: g.skipped.clone(),
                sequencer: g.sequencer,
            },
        };
        rt.unicast(joiner, grant.encode());
        let install = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::ViewInstall { new_view: g.new_view, members: g.members, cut: g.cut },
        };
        rt.multicast(install.encode());
    }

    /// Admits the latched joiner if this is an *order-clean* point: a
    /// stable phase with no live suspicions, and nothing reliably received
    /// anywhere in this node's streams still awaiting ordering or assembly.
    /// At such a point the received vector plus the next-to-deliver global
    /// sequence number fully describe the group state for a fresh member:
    /// every assignment or message content at or beyond those baselines
    /// travels in fragments beyond the cut, which the joiner will receive
    /// (or NAK) like any member. Called on every `JoinReq` and from the
    /// gossip timer, so a latched join lands within a beat of the group
    /// draining.
    fn try_grant_join(&mut self, rt: &mut dyn ProtocolRuntime) {
        let Some(joiner) = self.pending_join else { return };
        if self.view.members.contains(joiner) {
            self.pending_join = None;
            return;
        }
        if !matches!(self.phase, Phase::Stable) || !self.live_suspects().is_empty() {
            return;
        }
        let clean = self.to.store.is_empty()
            && self.to.by_gseq.is_empty()
            && self.to.pending_ann.is_empty()
            && self.recv.iter().all(|s| s.asm.frags.is_empty());
        if !clean {
            return;
        }
        // Clear the latch *before* the install below re-enters try_deliver —
        // and so a grant is never re-issued for the same latch.
        self.pending_join = None;
        let cut = self.received_vec();
        let new_view = self.view.id + 1;
        let mut members = self.view.members;
        members.insert(joiner);
        let order_base = self.to.next_deliver;
        let mut skipped: Vec<u64> =
            self.to.skipped.iter().copied().filter(|&g| g >= order_base).collect();
        skipped.sort_unstable();
        // The application serves the state transfer from exactly this
        // instant's committed state (everything below `order_base`).
        self.upcalls.push_back(Upcall::ServeJoin { joiner });
        let record = GrantRecord {
            joiner,
            new_view,
            members,
            cut: cut.clone(),
            order_base,
            skipped: skipped.clone(),
            sequencer: self.seq_node,
        };
        self.last_grant = Some(record);
        self.grant_resends = 2;
        rt.set_timer(self.cfg.heartbeat_period, TimerKind::JoinRetry);
        let grant = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::JoinGrant {
                new_view,
                members,
                cut: cut.clone(),
                order_base,
                skipped,
                sequencer: self.seq_node,
            },
        };
        rt.unicast(joiner, grant.encode());
        let install = Envelope {
            sender: self.me,
            view: self.view.id,
            msg: Message::ViewInstall { new_view, members, cut: cut.clone() },
        };
        rt.multicast(install.encode());
        // A member-add install needs no flush (no stream is being cut off):
        // adopt it locally through the normal install path.
        self.on_view_install(rt, new_view, members, cut);
    }

    /// The joiner adopts its grant: the granted view, per-stream fragment
    /// baselines (its own old stream continues where the group last saw
    /// it), and the total-order base. Stability restarts from scratch and
    /// catches up through gossip max-merge — it is *not* seeded with the
    /// cut, because group-wide stable never exceeds the granter's received
    /// vector, so seeding could over-promise and garbage-collect fragments
    /// a trailing survivor still needs.
    #[allow(clippy::too_many_arguments)]
    fn on_join_grant(
        &mut self,
        rt: &mut dyn ProtocolRuntime,
        new_view: u64,
        members: NodeSet,
        cut: Vec<u64>,
        order_base: u64,
        skipped: Vec<u64>,
        sequencer: NodeId,
    ) {
        if !self.joining || !members.contains(self.me) || cut.len() != self.cfg.n_nodes {
            return;
        }
        let now = rt.now_nanos();
        self.joining = false;
        self.view = View { id: new_view, members };
        self.seq_node = if members.contains(sequencer) {
            sequencer
        } else {
            members.min().expect("granted view contains me")
        };
        for (j, s) in self.recv.iter_mut().enumerate() {
            *s = RecvStream::new();
            s.contiguous = cut[j];
            s.highest_known = cut[j];
        }
        self.send.next_frag = cut[self.me.0 as usize] + 1;
        self.send.last_refill = now;
        self.to.next_deliver = order_base;
        self.to.max_applied = order_base.saturating_sub(1);
        self.to.assign_counter = order_base;
        self.to.skipped = skipped.into_iter().collect();
        self.stab = Stability::new(self.me, self.cfg.n_nodes, members);
        // Fresh vote state: the application resumes casting only after its
        // state transfer completes, and peers' `Vote` bases skip us past
        // their pre-rejoin streams.
        self.votes = VoteState::new(self.cfg.n_nodes);
        self.last_heard = vec![now; self.cfg.n_nodes];
        rt.set_timer(self.cfg.gossip_period, TimerKind::Gossip);
        rt.set_timer(self.cfg.heartbeat_period, TimerKind::Heartbeat);
        rt.set_timer(self.cfg.failure_timeout, TimerKind::FailureCheck);
        rt.set_timer(self.cfg.nak_delay, TimerKind::NakCheck);
        self.metrics.view_changes += 1;
        self.upcalls.push_back(Upcall::ViewChange(self.view));
        self.upcalls.push_back(Upcall::Rejoined);
    }

    // ----- timers --------------------------------------------------------

    /// Entry point for a fired timer.
    pub fn on_timer(&mut self, rt: &mut dyn ProtocolRuntime, kind: TimerKind) {
        if self.halted {
            return;
        }
        rt.charge(self.cfg.proc_cost);
        if self.joining {
            // A rejoiner runs nothing but its retry loop.
            if kind == TimerKind::JoinRetry {
                self.send_join_req(rt);
                rt.set_timer(self.cfg.heartbeat_period, TimerKind::JoinRetry);
            }
            return;
        }
        match kind {
            TimerKind::Gossip => {
                let received = self.received_vec();
                let g = self.stab.make_gossip(&received);
                let env = Envelope { sender: self.me, view: self.view.id, msg: Message::Gossip(g) };
                rt.multicast(env.encode());
                self.metrics.gossip_sent += 1;
                // Completing our own vote may already advance stability.
                self.on_stability_advance(rt);
                // A latched joiner admits at the next order-clean beat.
                self.try_grant_join(rt);
                rt.set_timer(self.cfg.gossip_period, TimerKind::Gossip);
            }
            TimerKind::Heartbeat => {
                let env = Envelope {
                    sender: self.me,
                    view: self.view.id,
                    msg: Message::Heartbeat { sent: self.send.sent() },
                };
                rt.multicast(env.encode());
                // Vote reliability rides the heartbeat: retransmit the
                // unacked suffix, then flush stragglers that found no
                // fragment slack to piggyback on.
                self.resend_votes(rt);
                self.flush_votes(rt);
                rt.set_timer(self.cfg.heartbeat_period, TimerKind::Heartbeat);
            }
            TimerKind::FailureCheck => {
                self.failure_scan(rt);
                rt.set_timer(self.cfg.failure_timeout, TimerKind::FailureCheck);
            }
            TimerKind::NakCheck => {
                self.nak_scan(rt);
                self.try_complete_install(rt);
                rt.set_timer(self.cfg.nak_delay, TimerKind::NakCheck);
            }
            TimerKind::RateRefill => {
                self.send.rate_timer = None;
                self.drain_sends(rt);
            }
            TimerKind::AnnFlush => {
                // The fired timer is spent: drop the handle first so
                // flush_ann does not issue a cancel for it (cancels of
                // already-fired ids accumulate forever in the native and
                // testkit runtimes' cancelled sets).
                self.to.ann_timer = None;
                self.flush_ann(rt);
            }
            TimerKind::FlushResend => {
                if let Phase::Flushing { new_view, proposed, sent_install, .. } = &self.phase {
                    let (new_view, proposed) = (*new_view, *proposed);
                    match sent_install.clone() {
                        Some((members, cut)) => {
                            let env = Envelope {
                                sender: self.me,
                                view: self.view.id,
                                msg: Message::ViewInstall { new_view, members, cut },
                            };
                            rt.multicast(env.encode());
                        }
                        None if self.view.members.difference(self.suspected).min()
                            == Some(self.me) =>
                        {
                            let env = Envelope {
                                sender: self.me,
                                view: self.view.id,
                                msg: Message::FlushReq { new_view, members: proposed },
                            };
                            rt.multicast(env.encode());
                        }
                        None => {}
                    }
                    rt.set_timer(self.cfg.heartbeat_period, TimerKind::FlushResend);
                }
            }
            TimerKind::JoinRetry => {
                // Granter side: re-multicast the grant's install a couple of
                // times so a survivor that lost the single install packet
                // still learns the new member (the joiner's own losses heal
                // through its JoinReq retries).
                if self.grant_resends > 0 {
                    self.grant_resends -= 1;
                    if let Some(g) = self.last_grant.clone() {
                        if g.new_view == self.view.id {
                            let env = Envelope {
                                sender: self.me,
                                view: self.view.id,
                                msg: Message::ViewInstall {
                                    new_view: g.new_view,
                                    members: g.members,
                                    cut: g.cut,
                                },
                            };
                            rt.multicast(env.encode());
                            rt.set_timer(self.cfg.heartbeat_period, TimerKind::JoinRetry);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnnBatchPolicy;
    use std::time::Duration;

    /// A transparent [`ProtocolRuntime`] recording everything the stack does,
    /// for driving single `Gcs` instances through exact event sequences the
    /// network harness cannot easily force (e.g. a flush timer firing in the
    /// middle of a view change).
    #[derive(Default)]
    struct MockRt {
        now: u64,
        next_timer: u64,
        armed: Vec<(TimerId, TimerKind)>,
        cancelled: Vec<TimerId>,
        sent: Vec<Bytes>,
    }

    impl ProtocolRuntime for MockRt {
        fn now_nanos(&mut self) -> u64 {
            self.now
        }

        fn set_timer(&mut self, _delay: Duration, kind: TimerKind) -> TimerId {
            let id = TimerId(self.next_timer);
            self.next_timer += 1;
            self.armed.push((id, kind));
            id
        }

        fn cancel_timer(&mut self, id: TimerId) {
            self.cancelled.push(id);
        }

        fn unicast(&mut self, _to: NodeId, payload: Bytes) {
            self.sent.push(payload);
        }

        fn multicast(&mut self, payload: Bytes) {
            self.sent.push(payload);
        }

        fn charge(&mut self, _cost: Duration) {}
    }

    fn fixed_cfg(n: usize, window: Duration) -> GcsConfig {
        let mut cfg = GcsConfig::lan(n);
        cfg.ann_policy = AnnBatchPolicy::Fixed(window);
        cfg
    }

    fn app_fragment(sender: NodeId, seq: u64, payload: &'static [u8]) -> Bytes {
        Envelope {
            sender,
            view: 0,
            msg: Message::Data {
                seq,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: Vec::new(),
                votes: Vec::new(),
                payload: Bytes::from_static(payload),
                retrans: false,
            },
        }
        .encode()
    }

    fn ann_timer_armed(g: &Gcs, rt: &MockRt) -> bool {
        g.to.ann_timer.is_some_and(|id| !rt.cancelled.contains(&id))
    }

    #[test]
    fn flush_timer_fired_mid_view_change_does_not_strand_the_batch() {
        // Regression for the stale-batch edge: the sequencer's flush timer
        // fires while a view change is in progress (outside `Phase::Stable`),
        // which used to leave the pending announcements with no armed timer.
        // On re-entry to `Stable` the batch must be re-scheduled.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(600)));
        g.on_start(&mut rt);
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"txn"));
        assert_eq!(g.to.pending_ann.len(), 1, "assignment queued for batching");
        assert!(ann_timer_armed(&g, &rt), "flush timer armed");

        // Node 1 coordinates a view change excluding node 2.
        let members: NodeSet = [NodeId(0), NodeId(1)].into_iter().collect();
        let req = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::FlushReq { new_view: 1, members },
        };
        g.on_packet(&mut rt, req.encode());
        // The armed flush timer fires mid-flush: the batch is retained but
        // its timer is gone — the stranded state under test.
        g.on_timer(&mut rt, TimerKind::AnnFlush);
        assert_eq!(g.to.pending_ann.len(), 1, "batch retained across the view change");
        assert!(!ann_timer_armed(&g, &rt), "timer consumed mid-flush");
        assert_eq!(g.metrics().ann_sent, 0, "nothing announced while flushing");

        let install = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::ViewInstall { new_view: 1, members, cut: vec![0, 1, 0] },
        };
        g.on_packet(&mut rt, install.encode());
        assert!(matches!(g.phase, Phase::Stable), "view installed");
        assert_eq!(g.to.pending_ann.len(), 1, "assignment re-queued by the new-view pass");
        assert!(ann_timer_armed(&g, &rt), "batch re-scheduled on re-entry to Stable");

        // The re-armed timer fires: the announcement goes out and the
        // message is delivered in total order.
        g.on_timer(&mut rt, TimerKind::AnnFlush);
        let m = g.metrics();
        assert_eq!((m.ann_sent, m.ann_assigns), (1, 1));
        assert!(rt.cancelled.is_empty(), "fired timers must not be cancelled (runtime set leak)");
        let delivered: Vec<_> = g
            .drain_upcalls()
            .into_iter()
            .filter_map(|u| match u {
                Upcall::Deliver { origin, global_seq, .. } => Some((origin, global_seq)),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![(NodeId(1), 1)]);
    }

    #[test]
    fn losing_the_majority_halts_instead_of_forming_a_rump_view() {
        // Primary-component rule: a node that suspects a majority of its
        // view (the small side of a partition) must halt, not install a
        // singleton view and keep sequencing — that is the split-brain that
        // would diverge commit logs.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(1)));
        g.on_start(&mut rt);
        // Silence from both peers for longer than the failure timeout.
        rt.now = 10 * g.cfg.failure_timeout.as_nanos() as u64;
        g.on_timer(&mut rt, TimerKind::FailureCheck);
        assert!(g.is_halted(), "minority survivor must halt");
        assert!(
            g.drain_upcalls().iter().any(|u| matches!(u, Upcall::Excluded)),
            "halt surfaces as Excluded"
        );
        assert_eq!(g.view().id, 0, "no rump view was installed");
    }

    #[test]
    fn majority_suspicion_still_reconfigures() {
        // Suspecting one node of three leaves a majority: the survivor
        // coordinates a flush instead of halting.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(1)));
        g.on_start(&mut rt);
        let t = 10 * g.cfg.failure_timeout.as_nanos() as u64;
        rt.now = t;
        // Node 1 keeps talking, node 2 stays silent.
        g.last_heard[1] = t;
        g.on_timer(&mut rt, TimerKind::FailureCheck);
        assert!(!g.is_halted());
        assert!(matches!(g.phase, Phase::Flushing { .. }), "flush towards {{0,1}} started");
    }

    #[test]
    fn minority_view_proposals_are_refused_by_halting() {
        // Defense in depth: even a received FlushReq / ViewInstall proposing
        // a non-primary membership (including us) halts the node.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(4, Duration::from_millis(1)));
        g.on_start(&mut rt);
        let members: NodeSet = [NodeId(0), NodeId(1)].into_iter().collect();
        let req = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::FlushReq { new_view: 1, members },
        };
        g.on_packet(&mut rt, req.encode());
        assert!(g.is_halted(), "2 of 4 is not a primary component");
    }

    #[test]
    fn uniform_delivery_waits_for_the_order_to_be_stable() {
        // Uniform mode gates on the carrier fragment of the assignment, not
        // just the message content: an assignment only this node has seen
        // must not deliver.
        let mut cfg = fixed_cfg(3, Duration::from_millis(5));
        cfg.uniform_delivery = true;
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(2), cfg);
        g.on_start(&mut rt);
        // Content: node 1's message, fragment 1.
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"m"));
        // Order: sequencer node 0's fragment 1 carries the assignment.
        let ann = Envelope {
            sender: NodeId(0),
            view: 0,
            msg: Message::Data {
                seq: 1,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: vec![SeqAssign { sender: NodeId(1), msg_seq: 1, global_seq: 1 }],
                votes: Vec::new(),
                payload: Bytes::from_static(b"carrier"),
                retrans: false,
            },
        };
        g.on_packet(&mut rt, ann.encode());
        assert!(
            !g.drain_upcalls().iter().any(|u| matches!(u, Upcall::Deliver { .. })),
            "nothing may deliver before content AND carrier are stable"
        );
        assert_eq!(g.to.by_gseq.len(), 1, "assignment applied, delivery gated");
        let aa = g.to.by_gseq[&1];
        assert_eq!((aa.origin, aa.msg_seq), (NodeId(1), 1));
        assert_eq!((aa.carrier, aa.carrier_seq), (NodeId(0), 1), "carrier recorded for the gate");
    }

    #[test]
    fn duplicate_assign_is_dropped_from_the_batch() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(2, Duration::from_millis(5)));
        g.on_start(&mut rt);
        g.assign(&mut rt, NodeId(1), 7);
        g.assign(&mut rt, NodeId(1), 7);
        assert_eq!(g.to.pending_ann.len(), 1, "duplicate dropped on push");
        assert_eq!(g.to.assign_counter, 2, "duplicate burned no global sequence number");
        g.assign(&mut rt, NodeId(1), 8);
        assert_eq!(g.to.pending_ann.len(), 2);
        assert_eq!(g.to.assign_counter, 3);
    }

    #[test]
    fn pending_announcements_piggyback_on_app_fragments() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(2, Duration::from_millis(10)));
        g.on_start(&mut rt);
        // A remote message is assigned and held for the batching window...
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"remote"));
        assert_eq!(g.to.pending_ann.len(), 1);
        // ...then the sequencer sends application traffic of its own: the
        // assignment rides the fragment's MTU slack, costing zero messages.
        g.broadcast(&mut rt, Bytes::from_static(b"own"));
        let m = g.metrics();
        assert_eq!(m.ann_piggybacked, 1, "assignment piggybacked");
        assert_eq!(m.ann_sent, 0, "no SeqAnn message spent");
        // The broadcast's own message was assigned at loopback *after* its
        // fragment left, so exactly that one assignment is waiting now.
        assert_eq!(g.to.pending_ann.len(), 1);
        assert_eq!(g.to.pending_ann[0].sender, NodeId(0));
        assert!(ann_timer_armed(&g, &rt), "fresh assignment re-armed the flush timer");
        // The carried assignment is on the wire...
        let carried = rt.sent.iter().any(|raw| {
            matches!(
                Envelope::decode(raw.clone()),
                Ok(Envelope { msg: Message::Data { ann, .. }, .. }) if !ann.is_empty()
            )
        });
        assert!(carried, "an outgoing fragment carries the assignment");
        // ...and applied through loopback: the remote message delivers.
        let delivered: Vec<_> = g
            .drain_upcalls()
            .into_iter()
            .filter_map(|u| match u {
                Upcall::Deliver { origin, global_seq, .. } => Some((origin, global_seq)),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![(NodeId(1), 1)]);
    }

    #[test]
    fn beyond_cut_piggyback_is_never_applied() {
        // Agreement discipline: assignments piggybacked on a fragment beyond
        // the agreed view-change cut must never be applied — they apply only
        // when the carrier joins the contiguous prefix, exactly like a
        // `SeqAnn` through the stream. A survivor that applied a beyond-cut
        // straggler while its peers did not would diverge after install.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(2), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        // Sequencer node 0's fragment seq 2 arrives out of order (seq 1
        // lost), carrying a piggybacked assignment.
        let frag = Envelope {
            sender: NodeId(0),
            view: 0,
            msg: Message::Data {
                seq: 2,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: vec![SeqAssign { sender: NodeId(1), msg_seq: 9, global_seq: 5 }],
                votes: Vec::new(),
                payload: Bytes::from_static(b"late"),
                retrans: false,
            },
        };
        g.on_packet(&mut rt, frag.encode());
        assert!(g.to.assigned.is_empty(), "out-of-order carrier: assignment must wait");
        assert_eq!(g.to.max_applied, 0);
        // Node 0 dies; node 1 coordinates a view change whose cut excludes
        // the straggler (no survivor acked fragment 1, let alone 2).
        let members: NodeSet = [NodeId(1), NodeId(2)].into_iter().collect();
        let req = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::FlushReq { new_view: 1, members },
        };
        g.on_packet(&mut rt, req.encode());
        let install = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::ViewInstall { new_view: 1, members, cut: vec![0, 0, 0] },
        };
        g.on_packet(&mut rt, install.encode());
        assert!(matches!(g.phase, Phase::Stable), "view installed");
        assert!(g.to.assigned.is_empty(), "beyond-cut assignment never applied");
        assert_eq!(g.to.max_applied, 0, "assign counters untouched by the dropped straggler");
    }

    #[test]
    fn piggyback_respects_mtu_slack() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(2, Duration::from_millis(10)));
        g.on_start(&mut rt);
        for i in 0..200 {
            g.assign(&mut rt, NodeId(1), i + 1);
        }
        // A payload one byte under the fragment limit leaves room for no
        // assignment at all; a tiny one carries as many as fit.
        let fp = g.cfg.frag_payload();
        g.broadcast(&mut rt, Bytes::from(vec![0u8; fp - 1]));
        assert_eq!(g.metrics().ann_piggybacked, 0, "no slack, no piggyback");
        g.broadcast(&mut rt, Bytes::from_static(b"x"));
        let max_fit = ((fp - 1) / SEQ_ASSIGN_WIRE) as u64;
        assert_eq!(g.metrics().ann_piggybacked, max_fit, "slack filled to the MTU");
        // Each broadcast's own message joins the batch at loopback: 200
        // seeded assignments + 2 own, minus what the second fragment carried.
        assert_eq!(g.to.pending_ann.len(), 202 - max_fit as usize, "rest stays batched");
        assert!(ann_timer_armed(&g, &rt), "remaining batch keeps its timer");
    }

    #[test]
    fn tentative_delivery_precedes_total_order_when_configured() {
        let mut rt = MockRt::default();
        let mut cfg = fixed_cfg(3, Duration::ZERO); // zero window: announce at once
        cfg.tentative_delivery = true;
        let mut g = Gcs::new(NodeId(0), cfg);
        g.on_start(&mut rt);
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"txn"));
        let ups = g.drain_upcalls();
        let tent = ups.iter().position(|u| {
            matches!(u, Upcall::Tentative { origin, msg_seq, payload }
                if *origin == NodeId(1) && *msg_seq == 1 && payload.as_ref() == b"txn")
        });
        let deliv = ups.iter().position(|u| {
            matches!(u, Upcall::Deliver { origin, payload, .. }
                if *origin == NodeId(1) && payload.as_ref() == b"txn")
        });
        assert!(tent.is_some(), "tentative upcall emitted: {ups:?}");
        assert!(deliv.is_some(), "total-order delivery still follows: {ups:?}");
        assert!(tent < deliv, "the head start precedes the total order");
        assert_eq!(g.metrics().tentative_delivered, 1);
        assert_eq!(g.metrics().delivered, 1);
    }

    #[test]
    fn tentative_delivery_covers_own_loopback_messages() {
        // The origin's own messages complete through the send-path loopback
        // rather than on_packet; they must get the same head start, since the
        // origin site speculates on its own transactions too.
        let mut rt = MockRt::default();
        let mut cfg = fixed_cfg(2, Duration::ZERO);
        cfg.tentative_delivery = true;
        let mut g = Gcs::new(NodeId(0), cfg);
        g.on_start(&mut rt);
        g.broadcast(&mut rt, Bytes::from_static(b"mine"));
        let ups = g.drain_upcalls();
        assert!(
            ups.iter()
                .any(|u| matches!(u, Upcall::Tentative { origin, .. } if *origin == NodeId(0))),
            "loopback message tentatively delivered: {ups:?}"
        );
        assert_eq!(g.metrics().tentative_delivered, 1);
    }

    /// Decodes everything `rt` sent, newest-last.
    fn sent_msgs(rt: &MockRt) -> Vec<Message> {
        rt.sent.iter().filter_map(|raw| Envelope::decode(raw.clone()).ok()).map(|e| e.msg).collect()
    }

    /// Drives `g` (node 0 of 3) through a view change that removes node 2:
    /// suspect it via the failure detector, then complete the flush with
    /// node 1's ack.
    fn remove_node_2(rt: &mut MockRt, g: &mut Gcs) {
        rt.now += 10 * g.cfg.failure_timeout.as_nanos() as u64;
        g.last_heard[1] = rt.now;
        g.on_timer(rt, TimerKind::FailureCheck);
        assert!(matches!(g.phase, Phase::Flushing { .. }), "flush started");
        let ack = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::FlushAck { new_view: 1, received: g.received_vec() },
        };
        g.on_packet(rt, ack.encode());
        assert!(matches!(g.phase, Phase::Stable), "view installed");
        assert_eq!(g.view().members.len(), 2);
    }

    #[test]
    fn join_req_is_granted_at_an_order_clean_point() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        remove_node_2(&mut rt, &mut g);
        g.drain_upcalls();

        // Node 2 restarts and asks to rejoin; the group is idle, so the
        // grant is immediate.
        let req = Envelope { sender: NodeId(2), view: 0, msg: Message::JoinReq };
        g.on_packet(&mut rt, req.encode());
        let ups = g.drain_upcalls();
        let serve = ups.iter().position(|u| *u == Upcall::ServeJoin { joiner: NodeId(2) });
        let vc =
            ups.iter().position(|u| matches!(u, Upcall::ViewChange(v) if v.members.len() == 3));
        assert!(serve.is_some(), "granter serves the transfer: {ups:?}");
        assert!(vc.is_some(), "member-add view installed: {ups:?}");
        assert!(serve < vc, "transfer is primed before the new view");
        assert_eq!(g.view().id, 2);
        assert_eq!(g.sequencer(), Some(NodeId(0)), "sequencer role unchanged");
        let msgs = sent_msgs(&rt);
        assert!(
            msgs.iter().any(|m| matches!(m, Message::JoinGrant { new_view: 2, .. })),
            "grant unicast: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| matches!(m, Message::ViewInstall { new_view: 2, members, .. }
                    if members.len() == 3)),
            "member-add install multicast: {msgs:?}"
        );
        assert!(g.recv[2].freeze_at.is_none(), "rejoined stream unfrozen");
    }

    #[test]
    fn grant_waits_until_the_order_is_clean() {
        // An application message whose announcement is still batched keeps
        // the group order-dirty: the join latches and is granted only once
        // the message has delivered (checked at the gossip beat).
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(600)));
        g.on_start(&mut rt);
        remove_node_2(&mut rt, &mut g);
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"txn"));
        assert!(!g.to.store.is_empty(), "undelivered message in the store");

        let req = Envelope { sender: NodeId(2), view: 0, msg: Message::JoinReq };
        g.on_packet(&mut rt, req.encode());
        assert_eq!(g.pending_join, Some(NodeId(2)), "join latched, not granted");
        assert!(!sent_msgs(&rt).iter().any(|m| matches!(m, Message::JoinGrant { .. })));

        // The batch flushes, the message delivers, and the next gossip beat
        // admits the joiner.
        g.on_timer(&mut rt, TimerKind::AnnFlush);
        assert!(g.to.store.is_empty(), "message delivered");
        g.on_timer(&mut rt, TimerKind::Gossip);
        assert_eq!(g.pending_join, None);
        let grant = sent_msgs(&rt).into_iter().find_map(|m| match m {
            Message::JoinGrant { order_base, .. } => Some(order_base),
            _ => None,
        });
        assert_eq!(grant, Some(2), "order base covers the delivered message");
        assert_eq!(g.view().members.len(), 3);
    }

    #[test]
    fn repeated_join_req_resends_the_stored_grant() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        remove_node_2(&mut rt, &mut g);
        let req = Envelope { sender: NodeId(2), view: 0, msg: Message::JoinReq };
        g.on_packet(&mut rt, req.encode());
        assert_eq!(g.view().id, 2);
        let grants_before =
            sent_msgs(&rt).iter().filter(|m| matches!(m, Message::JoinGrant { .. })).count();
        // The grant was lost: the joiner keeps retrying, and each retry
        // resends the stored grant + install instead of re-granting.
        g.on_packet(&mut rt, req.encode());
        let msgs = sent_msgs(&rt);
        let grants = msgs.iter().filter(|m| matches!(m, Message::JoinGrant { .. })).count();
        assert_eq!(grants, grants_before + 1, "stored grant resent");
        assert_eq!(g.view().id, 2, "no second view change");
        let ups = g.drain_upcalls();
        assert_eq!(
            ups.iter().filter(|u| matches!(u, Upcall::ServeJoin { .. })).count(),
            1,
            "transfer served once: {ups:?}"
        );
    }

    #[test]
    fn joiner_adopts_the_granted_baselines() {
        let mut rt = MockRt::default();
        let mut g = Gcs::rejoin(NodeId(2), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        assert!(g.is_joining());
        assert!(
            sent_msgs(&rt).iter().any(|m| matches!(m, Message::JoinReq)),
            "rejoiner announces itself"
        );
        assert!(g.drain_upcalls().is_empty(), "no view reported while joining");
        // Deaf to regular traffic while joining.
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"early"));
        assert_eq!(g.metrics().frags_received, 0);

        let grant = Envelope {
            sender: NodeId(1),
            view: 3,
            msg: Message::JoinGrant {
                new_view: 4,
                members: NodeSet::first_n(3),
                cut: vec![5, 7, 4],
                order_base: 9,
                skipped: vec![11],
                sequencer: NodeId(1),
            },
        };
        g.on_packet(&mut rt, grant.encode());
        assert!(!g.is_joining());
        assert_eq!(g.view(), View { id: 4, members: NodeSet::first_n(3) });
        assert_eq!(g.sequencer(), Some(NodeId(1)), "adopts the sticky sequencer");
        assert_eq!(g.to.next_deliver, 9);
        assert_eq!(g.send.next_frag, 5, "own stream resumes past the cut");
        assert_eq!(g.recv[0].contiguous, 5);
        assert_eq!(g.recv[1].contiguous, 7);
        let ups = g.drain_upcalls();
        assert_eq!(
            ups,
            vec![
                Upcall::ViewChange(View { id: 4, members: NodeSet::first_n(3) }),
                Upcall::Rejoined
            ]
        );
        // A duplicate grant is ignored.
        let dup = Envelope {
            sender: NodeId(1),
            view: 4,
            msg: Message::JoinGrant {
                new_view: 5,
                members: NodeSet::first_n(3),
                cut: vec![0, 0, 0],
                order_base: 1,
                skipped: Vec::new(),
                sequencer: NodeId(1),
            },
        };
        g.on_packet(&mut rt, dup.encode());
        assert_eq!(g.view().id, 4, "duplicate grant ignored");
        // Post-rejoin traffic flows: node 1's next fragment (8) continues
        // its stream, and the skipped orphan is honoured.
        g.on_packet(&mut rt, app_fragment(NodeId(1), 8, b"txn"));
        let ann = Envelope {
            sender: NodeId(1),
            view: 4,
            msg: Message::Data {
                seq: 9,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: vec![
                    SeqAssign { sender: NodeId(1), msg_seq: 8, global_seq: 9 },
                    SeqAssign { sender: NodeId(1), msg_seq: 9, global_seq: 10 },
                ],
                votes: Vec::new(),
                payload: Bytes::from_static(b"txn2"),
                retrans: false,
            },
        };
        g.on_packet(&mut rt, ann.encode());
        let delivered: Vec<u64> = g
            .drain_upcalls()
            .into_iter()
            .filter_map(|u| match u {
                Upcall::Deliver { global_seq, .. } => Some(global_seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![9, 10], "delivery resumes from the order base");
        assert_eq!(g.to.next_deliver, 12, "skipped orphan 11 deterministically jumped");
    }

    #[test]
    fn rejoined_dedicated_sequencer_does_not_reclaim_the_role() {
        let mut cfg = fixed_cfg(3, Duration::from_millis(5));
        cfg.dedicated_sequencer = Some(NodeId(2));
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), cfg);
        g.on_start(&mut rt);
        assert_eq!(g.sequencer(), Some(NodeId(2)), "dedicated sequencer honoured");
        remove_node_2(&mut rt, &mut g);
        assert_eq!(g.sequencer(), Some(NodeId(0)), "failover to the lowest member");
        let req = Envelope { sender: NodeId(2), view: 0, msg: Message::JoinReq };
        g.on_packet(&mut rt, req.encode());
        assert_eq!(g.view().members.len(), 3);
        assert_eq!(g.sequencer(), Some(NodeId(0)), "rejoiner does not reclaim mid-view");
    }

    #[test]
    fn tentative_delivery_is_off_by_default() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::ZERO));
        g.on_start(&mut rt);
        g.on_packet(&mut rt, app_fragment(NodeId(1), 1, b"txn"));
        let ups = g.drain_upcalls();
        assert!(
            !ups.iter().any(|u| matches!(u, Upcall::Tentative { .. })),
            "no tentative upcalls unless configured: {ups:?}"
        );
        assert_eq!(g.metrics().tentative_delivered, 0);
        assert_eq!(g.metrics().delivered, 1, "normal delivery unaffected");
    }

    fn vote_upcalls(ups: &[Upcall]) -> Vec<(NodeId, WireVote)> {
        ups.iter()
            .filter_map(|u| match u {
                Upcall::Vote { voter, vote } => Some((*voter, *vote)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cast_vote_loops_back_and_flushes_standalone() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        g.cast_vote(&mut rt, 1, 7, None);
        g.cast_vote(&mut rt, 2, 3, Some(41));
        let ups = g.drain_upcalls();
        let votes = vote_upcalls(&ups);
        assert_eq!(votes.len(), 2, "both verdicts looped back: {ups:?}");
        assert_eq!(votes[0].0, NodeId(0));
        assert_eq!(votes[0].1, WireVote { seq: 1, origin: 1, txn: 7, conflict: None });
        assert_eq!(votes[1].1, WireVote { seq: 2, origin: 2, txn: 3, conflict: Some(41) });
        // Idle sender: each cast flushed immediately as a standalone frame.
        let wire: Vec<_> = sent_msgs(&rt)
            .into_iter()
            .filter_map(|m| match m {
                Message::Vote { base, votes } => Some((base, votes)),
                _ => None,
            })
            .collect();
        assert_eq!(wire.len(), 2, "one Vote frame per cast at an idle sender");
        assert_eq!(wire[0].0, 1, "nothing GC'd: base is the stream start");
        assert_eq!(g.metrics().votes_sent, 2);
        assert_eq!(g.metrics().votes_piggybacked, 0);
        assert_eq!(g.votes.outbox.len(), 2, "retained until every peer acks");
    }

    #[test]
    fn received_votes_surface_in_stream_order_and_are_acked() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        let v1 = WireVote { seq: 1, origin: 1, txn: 1, conflict: None };
        let v2 = WireVote { seq: 2, origin: 1, txn: 2, conflict: Some(9) };
        // Seq 2 arrives first: buffered, not surfaced.
        let early = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::Vote { base: 1, votes: vec![v2] },
        };
        g.on_packet(&mut rt, early.encode());
        assert!(vote_upcalls(&g.drain_upcalls()).is_empty(), "gap holds the stream");
        // Seq 1 closes the gap: both surface, in cast order.
        let fill = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::Vote { base: 1, votes: vec![v1] },
        };
        g.on_packet(&mut rt, fill.encode());
        let votes = vote_upcalls(&g.drain_upcalls());
        assert_eq!(votes, vec![(NodeId(1), v1), (NodeId(1), v2)]);
        assert_eq!(g.metrics().votes_received, 2);
        // A duplicate is dropped, and every frame is answered with the
        // cumulative ack.
        g.on_packet(&mut rt, fill.encode());
        assert!(vote_upcalls(&g.drain_upcalls()).is_empty(), "duplicate dropped");
        let acks: Vec<_> = sent_msgs(&rt)
            .into_iter()
            .filter_map(|m| match m {
                Message::VoteAck { up_to } => Some(up_to),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![0, 2, 2], "cumulative ack after each frame");
    }

    #[test]
    fn votes_piggyback_on_outgoing_fragment_slack() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(2, Duration::from_millis(10)));
        g.on_start(&mut rt);
        // Seed pending votes directly (as if cast while traffic was queued).
        for seq in 1..=3u64 {
            let v = WireVote { seq, origin: 0, txn: seq, conflict: None };
            g.votes.outbox.insert(seq, v);
            g.votes.pending.push(v);
        }
        g.votes.next_seq = 4;
        g.broadcast(&mut rt, Bytes::from_static(b"txn"));
        let m = g.metrics();
        assert_eq!(m.votes_piggybacked, 3, "all three rode the fragment slack");
        assert_eq!(m.votes_sent, 3);
        let carried = sent_msgs(&rt)
            .into_iter()
            .any(|m| matches!(m, Message::Data { votes, .. } if votes.len() == 3));
        assert!(carried, "outgoing fragment carries the votes");
        assert!(g.votes.pending.is_empty());
        // No slack, no piggyback: a full fragment defers to the heartbeat.
        let v = WireVote { seq: 4, origin: 0, txn: 4, conflict: None };
        g.votes.outbox.insert(4, v);
        g.votes.pending.push(v);
        g.votes.next_seq = 5;
        let fp = g.cfg.frag_payload();
        g.broadcast(&mut rt, Bytes::from(vec![0u8; fp]));
        assert_eq!(g.metrics().votes_piggybacked, 3, "no room on a full fragment");
        assert_eq!(g.votes.pending.len(), 1);
        g.on_timer(&mut rt, TimerKind::Heartbeat);
        assert!(g.votes.pending.is_empty(), "heartbeat flushed the straggler");
        assert_eq!(g.metrics().votes_sent, 4);
    }

    #[test]
    fn unacked_votes_resend_until_acked_then_gc() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        g.cast_vote(&mut rt, 0, 1, None);
        assert_eq!(g.votes.outbox.len(), 1);
        g.on_timer(&mut rt, TimerKind::Heartbeat);
        assert_eq!(g.metrics().vote_resends, 1, "unacked vote retransmitted");
        // One peer acks: still gated by the other.
        let ack1 = Envelope { sender: NodeId(1), view: 0, msg: Message::VoteAck { up_to: 1 } };
        g.on_packet(&mut rt, ack1.encode());
        assert_eq!(g.votes.outbox.len(), 1, "slowest view member gates GC");
        let ack2 = Envelope { sender: NodeId(2), view: 0, msg: Message::VoteAck { up_to: 1 } };
        g.on_packet(&mut rt, ack2.encode());
        assert!(g.votes.outbox.is_empty(), "acked by all: GC'd");
        let before = g.metrics().vote_resends;
        g.on_timer(&mut rt, TimerKind::Heartbeat);
        assert_eq!(g.metrics().vote_resends, before, "nothing left to resend");
    }

    #[test]
    fn vote_frames_respect_the_packet_size_cap() {
        // A burst of votes cast while application traffic was queued
        // flushes at the next heartbeat; both that flush and the later
        // retransmissions must split into frames within `max_packet`. The
        // network drops oversized datagrams, so an oversized flush loses
        // the whole burst — and an oversized *retransmission* is dropped
        // on every heartbeat, pinning the receivers' stream gap open
        // forever and wedging every vote round behind it.
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        for seq in 1..=300u64 {
            let v = WireVote { seq, origin: 0, txn: seq, conflict: None };
            g.votes.outbox.insert(seq, v);
            g.votes.pending.push(v);
        }
        g.votes.next_seq = 301;
        rt.sent.clear();
        g.on_timer(&mut rt, TimerKind::Heartbeat);
        assert!(g.votes.pending.is_empty(), "heartbeat flushed the burst");
        let flushed: usize = sent_msgs(&rt)
            .into_iter()
            .filter_map(|m| match m {
                Message::Vote { votes, .. } => Some(votes.len()),
                _ => None,
            })
            .sum();
        assert_eq!(flushed, 300, "every vote of the burst went out");
        for raw in &rt.sent {
            assert!(raw.len() <= g.cfg.max_packet, "{} > max_packet", raw.len());
        }
        // Still unacked: the next heartbeat retransmits a bounded suffix,
        // again in frames the network will actually deliver.
        rt.sent.clear();
        g.on_timer(&mut rt, TimerKind::Heartbeat);
        assert_eq!(g.metrics().vote_resends, 256, "resend budget per beat");
        for raw in &rt.sent {
            assert!(raw.len() <= g.cfg.max_packet, "{} > max_packet", raw.len());
        }
    }

    #[test]
    fn view_change_drops_the_dead_receiver_from_vote_gc() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        g.cast_vote(&mut rt, 0, 1, None);
        // Node 1 acks; node 2 crashes without acking.
        let ack1 = Envelope { sender: NodeId(1), view: 0, msg: Message::VoteAck { up_to: 1 } };
        g.on_packet(&mut rt, ack1.encode());
        assert_eq!(g.votes.outbox.len(), 1, "dead receiver still gates GC");
        remove_node_2(&mut rt, &mut g);
        assert!(g.votes.outbox.is_empty(), "install re-evaluates GC against the new view");
    }

    #[test]
    fn vote_base_jump_skips_a_rejoiners_pre_crash_stream() {
        let mut rt = MockRt::default();
        let mut g = Gcs::new(NodeId(0), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        // A voter whose votes 1..=4 were GC'd before we rejoined announces
        // base 5: we adopt it rather than waiting forever for 1..=4.
        let v5 = WireVote { seq: 5, origin: 1, txn: 9, conflict: None };
        let frame = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::Vote { base: 5, votes: vec![v5] },
        };
        g.on_packet(&mut rt, frame.encode());
        let votes = vote_upcalls(&g.drain_upcalls());
        assert_eq!(votes, vec![(NodeId(1), v5)], "stream resumes at the base");
        // A straggler below the base is a duplicate of transferred state.
        let v4 = WireVote { seq: 4, origin: 1, txn: 8, conflict: None };
        let late = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::Vote { base: 5, votes: vec![v4] },
        };
        g.on_packet(&mut rt, late.encode());
        assert!(vote_upcalls(&g.drain_upcalls()).is_empty());
        assert_eq!(g.metrics().votes_received, 1);
    }

    #[test]
    fn rejoining_and_halted_nodes_do_not_vote() {
        let mut rt = MockRt::default();
        let mut g = Gcs::rejoin(NodeId(2), fixed_cfg(3, Duration::from_millis(5)));
        g.on_start(&mut rt);
        g.cast_vote(&mut rt, 2, 1, None);
        assert!(vote_upcalls(&g.drain_upcalls()).is_empty(), "joiner casts nothing");
        assert_eq!(g.metrics().votes_sent, 0);
        // A halted node neither casts nor processes votes.
        let mut h = Gcs::new(NodeId(0), fixed_cfg(4, Duration::from_millis(1)));
        h.on_start(&mut rt);
        let members: NodeSet = [NodeId(1), NodeId(2)].into_iter().collect();
        let req = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::FlushReq { new_view: 1, members },
        };
        h.on_packet(&mut rt, req.encode());
        assert!(h.is_halted());
        h.drain_upcalls();
        h.cast_vote(&mut rt, 0, 1, None);
        let frame = Envelope {
            sender: NodeId(1),
            view: 0,
            msg: Message::Vote {
                base: 1,
                votes: vec![WireVote { seq: 1, origin: 1, txn: 1, conflict: None }],
            },
        };
        h.on_packet(&mut rt, frame.encode());
        assert!(vote_upcalls(&h.drain_upcalls()).is_empty(), "halted node is silent");
    }
}

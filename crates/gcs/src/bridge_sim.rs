//! Bridge from the protocol abstraction to the centralized simulation
//! runtime (§2.3): the [`Gcs`] state machine runs as *real jobs* on a
//! simulated CPU, its packets travel the simulated network, its timers are
//! simulation events, and every send/receive charges the four CSRT overhead
//! parameters (§4.1).

use crate::config::GcsConfig;
use crate::runtime::{ProtocolRuntime, TimerId, TimerKind};
use crate::stack::{Gcs, Upcall};
use crate::types::NodeId;
use bytes::Bytes;
use dbsm_net::{Addr, Dest, GroupId, Network};
use dbsm_sim::{CpuBank, EventId, RealContext};
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// Handler invoked (inside the protocol's real job, so it can charge CPU)
/// for every upcall the stack produces.
pub type UpcallHandler = Box<dyn FnMut(&mut RealContext<'_>, Upcall)>;

struct Maps {
    next_timer: u64,
    timers: HashMap<u64, EventId>,
    handler: Option<UpcallHandler>,
    /// Set on crash injection: all activity ceases.
    dead: bool,
    /// Clock-drift fault (§5.3): scheduled events are postponed by this
    /// factor and measured durations scaled down by it. 1.0 = no fault.
    drift: f64,
    /// Scheduling-latency fault (§5.3): random extra delay added to events
    /// scheduled in the future.
    sched_latency: Option<(Duration, rand::rngs::SmallRng)>,
}

struct Shared {
    gcs: RefCell<Gcs>,
    /// Kept for [`SimBridge::revive`]: a restart builds a fresh
    /// [`Gcs::rejoin`] instance from the original configuration.
    cfg: GcsConfig,
    maps: RefCell<Maps>,
    net: Network,
    cpu: CpuBank,
    me: NodeId,
    addr: Addr,
    peers: Vec<Addr>,
    group: GroupId,
    overhead_send_fixed: Duration,
    overhead_send_per_byte_ns: f64,
    overhead_recv_fixed: Duration,
    overhead_recv_per_byte_ns: f64,
}

/// The simulation-side implementation of the protocol abstraction layer.
///
/// Construction wires a [`Gcs`] instance to a host of a simulated
/// [`Network`] and a [`CpuBank`]; [`SimBridge::start`] kicks the protocol
/// off. Clones share the same node.
#[derive(Clone)]
pub struct SimBridge {
    shared: Rc<Shared>,
}

struct SimRt<'a, 'b> {
    ctx: &'a mut RealContext<'b>,
    shared: &'a Rc<Shared>,
}

impl ProtocolRuntime for SimRt<'_, '_> {
    fn now_nanos(&mut self) -> u64 {
        self.ctx.now().as_nanos()
    }

    fn set_timer(&mut self, delay: Duration, kind: TimerKind) -> TimerId {
        let (id, delay) = {
            let mut maps = self.shared.maps.borrow_mut();
            let id = maps.next_timer;
            maps.next_timer += 1;
            // Fault injection: postpone by the drift rate, add random
            // scheduling latency.
            let mut d = dbsm_sim::scale_duration(delay, maps.drift);
            if let Some((max, rng)) = maps.sched_latency.as_mut() {
                let extra = rng.gen_range(0.0..1.0) * max.as_secs_f64();
                d += Duration::from_secs_f64(extra);
            }
            (id, d)
        };
        let bridge = SimBridge { shared: self.shared.clone() };
        let ev = self.ctx.schedule(delay, move || bridge.fire_timer(id, kind));
        self.shared.maps.borrow_mut().timers.insert(id, ev);
        TimerId(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        if let Some(ev) = self.shared.maps.borrow_mut().timers.remove(&id.0) {
            self.ctx.cancel(ev);
        }
    }

    fn unicast(&mut self, to: NodeId, payload: Bytes) {
        self.charge_send(payload.len());
        let from = self.shared.addr;
        let dest = Dest::Unicast(self.shared.peers[to.0 as usize]);
        let net = self.shared.net.clone();
        // The packet leaves the host at the current point *inside* the job
        // (start + Δ₁), per Fig. 1(b).
        self.ctx.schedule(Duration::ZERO, move || net.send(from, dest, payload));
    }

    fn multicast(&mut self, payload: Bytes) {
        self.charge_send(payload.len());
        let from = self.shared.addr;
        let dest = Dest::Multicast(self.shared.group, self.shared.addr.port);
        let net = self.shared.net.clone();
        self.ctx.schedule(Duration::ZERO, move || net.send(from, dest, payload));
    }

    fn charge(&mut self, cost: Duration) {
        let drift = self.shared.maps.borrow().drift;
        self.ctx.charge(dbsm_sim::scale_duration(cost, 1.0 / drift));
    }
}

impl SimRt<'_, '_> {
    fn charge_send(&mut self, bytes: usize) {
        let cost = self.shared.overhead_send_fixed
            + Duration::from_nanos((self.shared.overhead_send_per_byte_ns * bytes as f64) as u64);
        self.ctx.charge(cost);
    }
}

impl SimBridge {
    /// Creates a bridge for group member `me`, bound to `addr` on the
    /// simulated network, running protocol jobs on `cpu`. `peers[i]` is the
    /// address of node `i`; the bridge joins `group` for multicast.
    ///
    /// # Panics
    ///
    /// Panics if binding `addr` fails (configuration error).
    pub fn new(
        me: NodeId,
        cfg: GcsConfig,
        net: &Network,
        cpu: &CpuBank,
        addr: Addr,
        peers: Vec<Addr>,
        group: GroupId,
    ) -> Self {
        let overhead = cfg.overhead;
        let shared = Rc::new(Shared {
            gcs: RefCell::new(Gcs::new(me, cfg.clone())),
            cfg,
            maps: RefCell::new(Maps {
                next_timer: 0,
                timers: HashMap::new(),
                handler: None,
                dead: false,
                drift: 1.0,
                sched_latency: None,
            }),
            net: net.clone(),
            cpu: cpu.clone(),
            me,
            addr,
            peers,
            group,
            overhead_send_fixed: overhead.send_fixed,
            overhead_send_per_byte_ns: overhead.send_per_byte_ns,
            overhead_recv_fixed: overhead.recv_fixed,
            overhead_recv_per_byte_ns: overhead.recv_per_byte_ns,
        });
        net.join_group(addr.host, group);
        let weak = Rc::downgrade(&shared);
        net.bind(addr, move |dg| {
            if let Some(shared) = weak.upgrade() {
                SimBridge { shared }.on_datagram(dg.payload);
            }
        })
        .expect("bridge address must be free");
        SimBridge { shared }
    }

    /// Registers the upcall handler (deliveries, view changes).
    pub fn set_handler(&self, handler: UpcallHandler) {
        self.shared.maps.borrow_mut().handler = Some(handler);
    }

    /// The node this bridge serves.
    pub fn node(&self) -> NodeId {
        self.shared.me
    }

    /// Starts the protocol (arms timers, reports the initial view).
    pub fn start(&self) {
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            this.with_gcs(ctx, |gcs, rt| gcs.on_start(rt));
        }));
    }

    /// Atomically multicasts an application payload, submitting the protocol
    /// work as a real job.
    pub fn broadcast(&self, payload: Bytes) {
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            this.with_gcs(ctx, |gcs, rt| gcs.broadcast(rt, payload));
        }));
    }

    /// Like [`broadcast`](SimBridge::broadcast) but from code already running
    /// inside a real job (shares its CPU accounting).
    pub fn broadcast_in(&self, ctx: &mut RealContext<'_>, payload: Bytes) {
        self.with_gcs(ctx, |gcs, rt| gcs.broadcast(rt, payload));
    }

    /// Casts a certification vote (see [`Gcs::cast_vote`]), submitting the
    /// protocol work as a real job. Safe to call from inside an upcall
    /// handler: the job runs after the handler returns, so the loopback
    /// `Upcall::Vote` is dispatched instead of being silently dropped by the
    /// re-entrancy guard in `with_gcs`.
    pub fn cast_vote(&self, origin: u16, txn: u64, conflict: Option<u64>) {
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            this.with_gcs(ctx, |gcs, rt| gcs.cast_vote(rt, origin, txn, conflict));
        }));
    }

    /// Protocol metrics snapshot.
    pub fn metrics(&self) -> crate::stack::GcsMetrics {
        self.shared.gcs.borrow().metrics()
    }

    /// The next sequence number this node's vote stream will assign (see
    /// [`Gcs::vote_seq`]). Votes already cast sit strictly below it — the
    /// re-collection machinery uses this as the staleness threshold when a
    /// view change forces a vote round to be re-collected against a new
    /// span owner.
    pub fn vote_seq(&self) -> u64 {
        self.shared.gcs.borrow().vote_seq()
    }

    /// Current view.
    pub fn view(&self) -> crate::types::View {
        self.shared.gcs.borrow().view()
    }

    /// Clock-drift fault injection (§5.3): future events are postponed by
    /// `rate` and measured durations scaled down by it.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn set_clock_drift(&self, rate: f64) {
        assert!(rate > 0.0, "drift rate must be positive");
        self.shared.maps.borrow_mut().drift = rate;
    }

    /// Scheduling-latency fault injection (§5.3): adds a uniform random
    /// delay in `[0, max)` to every event scheduled in the future.
    pub fn set_sched_latency(&self, max: Duration, seed: u64) {
        self.shared.maps.borrow_mut().sched_latency =
            Some((max, rand::rngs::SmallRng::seed_from_u64(seed)));
    }

    /// Crash injection: silences the node instantly (no packets, no timers).
    pub fn kill(&self) {
        self.shared.maps.borrow_mut().dead = true;
        self.shared.net.set_host_down(self.shared.addr.host, true);
    }

    /// True if [`kill`](SimBridge::kill) was invoked (and the node has not
    /// been [revived](SimBridge::revive) since).
    pub fn is_dead(&self) -> bool {
        self.shared.maps.borrow().dead
    }

    /// Restart injection: brings a [killed](SimBridge::kill) node back as a
    /// *fresh* protocol incarnation that rejoins the group via
    /// [`Gcs::rejoin`] — announces itself, receives a grant, and resumes in
    /// the next view. All pre-crash volatile state is gone; timer ids from
    /// the previous incarnation are invalidated (their events fire into the
    /// void). No-op unless the node is dead.
    pub fn revive(&self) {
        {
            let mut maps = self.shared.maps.borrow_mut();
            if !maps.dead {
                return;
            }
            maps.dead = false;
            // Orphan every pre-crash timer: `fire_timer` skips ids absent
            // from the map. `next_timer` keeps counting, so new timers
            // never collide with orphaned ids.
            maps.timers.clear();
        }
        self.shared.net.set_host_down(self.shared.addr.host, false);
        *self.shared.gcs.borrow_mut() = Gcs::rejoin(self.shared.me, self.shared.cfg.clone());
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            this.with_gcs(ctx, |gcs, rt| gcs.on_start(rt));
        }));
    }

    fn on_datagram(&self, payload: Bytes) {
        if self.shared.maps.borrow().dead {
            return;
        }
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            // Receive overhead: the CSRT's fixed + per-byte parameters.
            let cost = this.shared.overhead_recv_fixed
                + Duration::from_nanos(
                    (this.shared.overhead_recv_per_byte_ns * payload.len() as f64) as u64,
                );
            ctx.charge(cost);
            this.with_gcs(ctx, |gcs, rt| gcs.on_packet(rt, payload));
        }));
    }

    fn fire_timer(&self, id: u64, kind: TimerKind) {
        if self.shared.maps.borrow().dead {
            return;
        }
        // A missing id means the timer belongs to a pre-restart incarnation
        // (orphaned by `revive`) — drop it.
        if self.shared.maps.borrow_mut().timers.remove(&id).is_none() {
            return;
        }
        let this = self.clone();
        self.shared.cpu.submit_real(Box::new(move |ctx| {
            this.with_gcs(ctx, |gcs, rt| gcs.on_timer(rt, kind));
        }));
    }

    fn with_gcs(
        &self,
        ctx: &mut RealContext<'_>,
        f: impl FnOnce(&mut Gcs, &mut dyn ProtocolRuntime),
    ) {
        if self.shared.maps.borrow().dead {
            return;
        }
        let upcalls = {
            let mut gcs = self.shared.gcs.borrow_mut();
            let mut rt = SimRt { ctx, shared: &self.shared };
            f(&mut gcs, &mut rt);
            gcs.drain_upcalls()
        };
        if upcalls.is_empty() {
            return;
        }
        // Dispatch with the handler temporarily taken out, so handlers can
        // re-enter the bridge (e.g. broadcast from a delivery).
        let mut handler = self.shared.maps.borrow_mut().handler.take();
        if let Some(h) = handler.as_mut() {
            for u in upcalls {
                h(ctx, u);
            }
        }
        let mut maps = self.shared.maps.borrow_mut();
        if maps.handler.is_none() {
            maps.handler = handler;
        }
    }
}

impl std::fmt::Debug for SimBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBridge").field("node", &self.shared.me).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsm_net::{NetworkBuilder, Port, SegmentConfig};
    use dbsm_sim::{ProfilerMode, Sim};

    /// Per-node log of `(sender, payload)` deliveries.
    type DeliveryLog = Rc<RefCell<Vec<Vec<(NodeId, Bytes)>>>>;

    /// Builds an n-node group over a simulated LAN; returns upcall logs.
    fn build(n: usize, cfg: GcsConfig) -> (Sim, Vec<SimBridge>, DeliveryLog, Network) {
        let sim = Sim::new();
        let mut b = NetworkBuilder::new(&sim);
        let lan = b.lan(SegmentConfig::fast_ethernet());
        let hosts: Vec<_> = (0..n).map(|_| b.host(lan)).collect();
        let net = b.build();
        let port = Port(7000);
        let peers: Vec<Addr> = hosts.iter().map(|h| Addr::new(*h, port)).collect();
        let group = GroupId(1);
        let delivered: DeliveryLog = Rc::new(RefCell::new(vec![Vec::new(); n]));
        let mut bridges = Vec::new();
        for i in 0..n {
            let cpu = CpuBank::new(&sim, 1, ProfilerMode::synthetic());
            let bridge = SimBridge::new(
                NodeId(i as u16),
                cfg.clone(),
                &net,
                &cpu,
                peers[i],
                peers.clone(),
                group,
            );
            let log = delivered.clone();
            bridge.set_handler(Box::new(move |_ctx, up| {
                if let Upcall::Deliver { origin, payload, .. } = up {
                    log.borrow_mut()[i].push((origin, payload));
                }
            }));
            bridge.start();
            bridges.push(bridge);
        }
        (sim, bridges, delivered, net)
    }

    #[test]
    fn end_to_end_total_order_over_simulated_lan() {
        let (sim, bridges, delivered, _net) = build(3, GcsConfig::lan(3));
        for i in 0..6u64 {
            let b = bridges[(i % 3) as usize].clone();
            sim.schedule_at(dbsm_sim::SimTime::from_millis(i), move || {
                b.broadcast(Bytes::from(i.to_le_bytes().to_vec()));
            });
        }
        sim.run_until(dbsm_sim::SimTime::from_secs(2));
        let logs = delivered.borrow();
        assert_eq!(logs[0].len(), 6);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[0], logs[2]);
    }

    #[test]
    fn protocol_work_charges_the_simulated_cpu() {
        let (sim, bridges, _delivered, _net) = build(2, GcsConfig::lan(2));
        bridges[0].broadcast(Bytes::from_static(b"x"));
        sim.run_until(dbsm_sim::SimTime::from_millis(500));
        let m = bridges[0].metrics();
        assert_eq!(m.app_sent, 1);
        assert_eq!(m.delivered, 1);
    }

    #[test]
    fn kill_silences_a_node_and_survivors_reconfigure() {
        let (sim, bridges, delivered, _net) = build(3, GcsConfig::lan(3));
        bridges[2].broadcast(Bytes::from_static(b"pre"));
        sim.run_until(dbsm_sim::SimTime::from_millis(200));
        bridges[2].kill();
        sim.run_until(dbsm_sim::SimTime::from_secs(3));
        assert_eq!(bridges[0].view().members.len(), 2, "view {:?}", bridges[0].view());
        {
            let logs = delivered.borrow();
            assert_eq!(logs[0], logs[1]);
            assert_eq!(logs[0].len(), 1);
        }
        bridges[0].broadcast(Bytes::from_static(b"post"));
        sim.run_until(dbsm_sim::SimTime::from_secs(4));
        let logs = delivered.borrow();
        assert_eq!(logs[0].len(), 2);
        assert_eq!(logs[0], logs[1]);
    }

    #[test]
    fn kill_then_revive_rejoins_and_delivers_new_messages() {
        let (sim, bridges, delivered, _net) = build(3, GcsConfig::lan(3));
        bridges[2].broadcast(Bytes::from_static(b"pre"));
        sim.run_until(dbsm_sim::SimTime::from_millis(200));
        bridges[2].kill();
        sim.run_until(dbsm_sim::SimTime::from_secs(3));
        assert_eq!(bridges[0].view().members.len(), 2, "crash removes the node");

        bridges[2].revive();
        sim.run_until(dbsm_sim::SimTime::from_secs(6));
        for b in &bridges {
            assert!(!b.is_dead());
            assert_eq!(b.view().members.len(), 3, "node {:?}: {:?}", b.node(), b.view());
        }
        assert_eq!(bridges[0].view(), bridges[2].view(), "rejoiner adopted the granted view");

        bridges[0].broadcast(Bytes::from_static(b"post"));
        sim.run_until(dbsm_sim::SimTime::from_secs(7));
        let logs = delivered.borrow();
        assert_eq!(logs[0].len(), 2);
        assert_eq!(logs[0], logs[1]);
        // "pre" was delivered by the first incarnation before the crash;
        // the fresh incarnation adds only post-rejoin traffic (catching up
        // on anything missed while dead is the application-level state
        // transfer's job).
        assert_eq!(
            logs[2].iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            vec![Bytes::from_static(b"pre"), Bytes::from_static(b"post")]
        );
    }

    #[test]
    fn delivery_under_receive_loss() {
        let (sim, bridges, delivered, net) = build(3, GcsConfig::lan(3));
        net.set_loss(dbsm_net::HostId(1), Box::new(dbsm_net::RandomLoss::new(0.05, 42)));
        for i in 0..30u64 {
            let b = bridges[(i % 3) as usize].clone();
            sim.schedule_at(dbsm_sim::SimTime::from_millis(i * 5), move || {
                b.broadcast(Bytes::from(i.to_le_bytes().to_vec()));
            });
        }
        sim.run_until(dbsm_sim::SimTime::from_secs(5));
        let logs = delivered.borrow();
        assert_eq!(logs[0].len(), 30);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[0], logs[2]);
    }
}

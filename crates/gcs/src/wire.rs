//! Wire format of the group-communication stack.
//!
//! Hand-rolled little-endian encoding over [`bytes`]; data payloads are
//! carried as zero-copy slices (§3.3's "avoids copying the contents of
//! buffers that are already marshaled").

use crate::stability::Gossip;
use crate::types::{NodeId, NodeSet};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Protocol magic byte.
const MAGIC: u8 = 0x5D;

/// What a reassembled reliable message contains, so the stack can route it
/// to the application or to the total-order module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PayloadKind {
    /// Application data (a marshalled certification request for the DBSM).
    #[default]
    App,
    /// Sequencer announcements (total-order metadata) — deliberately shipped
    /// through the *reliable* layer so they consume the sequencer's buffer
    /// share, reproducing the bottleneck analysed in §5.3.
    SeqAnn,
}

impl PayloadKind {
    fn to_byte(self) -> u8 {
        match self {
            PayloadKind::App => 0,
            PayloadKind::SeqAnn => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PayloadKind::App),
            1 => Some(PayloadKind::SeqAnn),
            _ => None,
        }
    }
}

/// One sequencer assignment: `(sender, sender_seq) -> global_seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqAssign {
    /// Originator of the message being ordered.
    pub sender: NodeId,
    /// The originator's message sequence number (first fragment).
    pub msg_seq: u64,
    /// Assigned global (total-order) sequence number.
    pub global_seq: u64,
}

/// One certification verdict on the wire: the voting site's span-restricted
/// answer for transaction `(origin, txn)`. Votes form a per-voter reliable
/// stream numbered by `seq`, resent until every view member acks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireVote {
    /// Position in the voter's vote stream (1-based, monotone).
    pub seq: u64,
    /// Site that originated the transaction being voted on.
    pub origin: u16,
    /// The origin site's transaction number.
    pub txn: u64,
    /// `Some(seq)` of the first conflicting committed write, else a clean
    /// span-restricted pass.
    pub conflict: Option<u64>,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A data fragment of the reliable multicast layer.
    Data {
        /// Fragment sequence number in the sender's stream.
        seq: u64,
        /// Number of fragments in the whole message.
        total_frags: u16,
        /// Index of this fragment within the message.
        frag_idx: u16,
        /// Payload routing tag.
        kind: PayloadKind,
        /// Sequencer assignments piggybacked in the packet's MTU slack —
        /// hot-path announcements that cost zero extra messages. Part of the
        /// fragment's identity: retransmissions carry the same batch.
        ann: Vec<SeqAssign>,
        /// Certification votes piggybacked after the announcements in the
        /// remaining MTU slack. Like `ann`, part of the fragment's identity.
        votes: Vec<WireVote>,
        /// Fragment bytes.
        payload: Bytes,
        /// True when this is a retransmission (metrics only).
        retrans: bool,
    },
    /// Receiver-initiated retransmission request: "I am missing fragments
    /// `ranges` of `target`'s stream" — unicast to whoever should resend.
    Nak {
        /// Whose stream has the gaps.
        target: NodeId,
        /// Inclusive `(from, to)` fragment ranges.
        ranges: Vec<(u64, u64)>,
    },
    /// Stability-detection gossip.
    Gossip(Gossip),
    /// Failure-detector heartbeat, carrying the sender's stream length so
    /// receivers can detect tail loss (gaps with no later fragment).
    Heartbeat {
        /// Fragments the sender has sent so far.
        sent: u64,
    },
    /// View change: coordinator asks members to stop sending and report
    /// their received vectors.
    FlushReq {
        /// Proposed new view number.
        new_view: u64,
        /// Proposed membership.
        members: NodeSet,
    },
    /// View change: member's answer with its contiguous received vector.
    FlushAck {
        /// Echoes the proposed view number.
        new_view: u64,
        /// Contiguous received fragment count per sender.
        received: Vec<u64>,
    },
    /// View change: coordinator installs the new view once every survivor
    /// can reach the cut.
    ViewInstall {
        /// New view number.
        new_view: u64,
        /// New membership.
        members: NodeSet,
        /// Message cut: fragment count per sender every survivor must reach
        /// before installing.
        cut: Vec<u64>,
    },
    /// Rejoin: a restarted node announces itself to the live primary
    /// component (multicast, retried until granted).
    JoinReq,
    /// Rejoin: the lowest live member admits the joiner at an order-clean
    /// point, shipping every baseline the fresh instance needs (unicast).
    JoinGrant {
        /// View the joiner becomes a member of.
        new_view: u64,
        /// Membership of that view (old members plus the joiner).
        members: NodeSet,
        /// Per-stream fragment baselines: the granter's received vector.
        /// The joiner resumes each stream (its own included) from here.
        cut: Vec<u64>,
        /// First global sequence number the joiner will deliver; everything
        /// below is covered by the application-level state transfer.
        order_base: u64,
        /// Deterministically skipped global sequence numbers at or above
        /// `order_base` (orphans of earlier view changes).
        skipped: Vec<u64>,
        /// The group's current (sticky) sequencer.
        sequencer: NodeId,
    },
    /// Standalone certification-vote batch (multicast) for verdicts that
    /// found no outgoing data fragment to ride on.
    Vote {
        /// The voter's first un-garbage-collected vote sequence number.
        /// Receivers jump their expectation forward to it: for operational
        /// members that is a no-op (GC waits for every member's ack), for a
        /// rejoiner it skips pre-rejoin votes whose outcomes arrived with
        /// the state transfer.
        base: u64,
        /// The votes, contiguous by `seq` within a batch.
        votes: Vec<WireVote>,
    },
    /// Cumulative acknowledgement of a voter's vote stream (unicast,
    /// receiver → voter): "I have every vote of yours up to `up_to`".
    VoteAck {
        /// Highest contiguously received vote sequence number.
        up_to: u64,
    },
}

/// Decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Unknown magic/kind/payload tag.
    BadTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated group-communication packet"),
            WireError::BadTag(t) => write!(f, "unrecognized tag {t:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An envelope: sender, view and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub sender: NodeId,
    /// Sender's view number when transmitting.
    pub view: u64,
    /// The message.
    pub msg: Message,
}

/// Fixed envelope overhead in bytes (magic, kind, sender, view).
pub const ENVELOPE_OVERHEAD: usize = 1 + 1 + 2 + 8;
/// Per-fragment data header beyond the envelope (includes both piggyback
/// counts: announcements and votes).
pub const DATA_OVERHEAD: usize = 8 + 2 + 2 + 1 + 1 + 2 + 2;
/// Wire size of one encoded [`SeqAssign`].
pub const SEQ_ASSIGN_WIRE: usize = 2 + 8 + 8;
/// Wire size of one encoded [`WireVote`] (seq, origin, txn, flag, conflict).
pub const WIRE_VOTE_WIRE: usize = 8 + 2 + 8 + 1 + 8;

fn put_seq_assign(b: &mut BytesMut, a: &SeqAssign) {
    b.put_u16_le(a.sender.0);
    b.put_u64_le(a.msg_seq);
    b.put_u64_le(a.global_seq);
}

fn get_seq_assign(buf: &mut Bytes) -> SeqAssign {
    SeqAssign {
        sender: NodeId(buf.get_u16_le()),
        msg_seq: buf.get_u64_le(),
        global_seq: buf.get_u64_le(),
    }
}

fn put_wire_vote(b: &mut BytesMut, v: &WireVote) {
    b.put_u64_le(v.seq);
    b.put_u16_le(v.origin);
    b.put_u64_le(v.txn);
    // Fixed-width option: flag byte + always-present value keeps the record
    // size constant so truncation checks stay a single multiply.
    b.put_u8(u8::from(v.conflict.is_some()));
    b.put_u64_le(v.conflict.unwrap_or(0));
}

fn get_wire_vote(buf: &mut Bytes) -> WireVote {
    let seq = buf.get_u64_le();
    let origin = buf.get_u16_le();
    let txn = buf.get_u64_le();
    let some = buf.get_u8() != 0;
    let val = buf.get_u64_le();
    WireVote { seq, origin, txn, conflict: some.then_some(val) }
}

impl Envelope {
    /// Encodes to a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(ENVELOPE_OVERHEAD + 64);
        b.put_u8(MAGIC);
        b.put_u8(self.kind_byte());
        b.put_u16_le(self.sender.0);
        b.put_u64_le(self.view);
        match &self.msg {
            Message::Data { seq, total_frags, frag_idx, kind, ann, votes, payload, retrans } => {
                b.put_u64_le(*seq);
                b.put_u16_le(*total_frags);
                b.put_u16_le(*frag_idx);
                b.put_u8(kind.to_byte());
                b.put_u8(u8::from(*retrans));
                b.put_u16_le(ann.len() as u16);
                b.put_u16_le(votes.len() as u16);
                for a in ann {
                    put_seq_assign(&mut b, a);
                }
                for v in votes {
                    put_wire_vote(&mut b, v);
                }
                b.put_slice(payload);
            }
            Message::Nak { target, ranges } => {
                b.put_u16_le(target.0);
                b.put_u16_le(ranges.len() as u16);
                for (from, to) in ranges {
                    b.put_u64_le(*from);
                    b.put_u64_le(*to);
                }
            }
            Message::Gossip(g) => {
                b.put_u64_le(g.round);
                b.put_u64_le(g.w.bits());
                b.put_u16_le(g.m.len() as u16);
                for v in &g.m {
                    b.put_u64_le(*v);
                }
                for v in &g.s {
                    b.put_u64_le(*v);
                }
            }
            Message::Heartbeat { sent } => {
                b.put_u64_le(*sent);
            }
            Message::FlushReq { new_view, members } => {
                b.put_u64_le(*new_view);
                b.put_u64_le(members.bits());
            }
            Message::FlushAck { new_view, received } => {
                b.put_u64_le(*new_view);
                b.put_u16_le(received.len() as u16);
                for v in received {
                    b.put_u64_le(*v);
                }
            }
            Message::ViewInstall { new_view, members, cut } => {
                b.put_u64_le(*new_view);
                b.put_u64_le(members.bits());
                b.put_u16_le(cut.len() as u16);
                for v in cut {
                    b.put_u64_le(*v);
                }
            }
            Message::JoinReq => {}
            Message::Vote { base, votes } => {
                b.put_u64_le(*base);
                b.put_u16_le(votes.len() as u16);
                for v in votes {
                    put_wire_vote(&mut b, v);
                }
            }
            Message::VoteAck { up_to } => {
                b.put_u64_le(*up_to);
            }
            Message::JoinGrant { new_view, members, cut, order_base, skipped, sequencer } => {
                b.put_u64_le(*new_view);
                b.put_u64_le(members.bits());
                b.put_u16_le(cut.len() as u16);
                for v in cut {
                    b.put_u64_le(*v);
                }
                b.put_u64_le(*order_base);
                b.put_u16_le(skipped.len() as u16);
                for v in skipped {
                    b.put_u64_le(*v);
                }
                b.put_u16_le(sequencer.0);
            }
        }
        b.freeze()
    }

    fn kind_byte(&self) -> u8 {
        match &self.msg {
            Message::Data { .. } => 0,
            Message::Nak { .. } => 1,
            Message::Gossip(_) => 2,
            Message::Heartbeat { .. } => 3,
            Message::FlushReq { .. } => 4,
            Message::FlushAck { .. } => 5,
            Message::ViewInstall { .. } => 6,
            Message::JoinReq => 7,
            Message::JoinGrant { .. } => 8,
            Message::Vote { .. } => 9,
            Message::VoteAck { .. } => 10,
        }
    }

    /// Decodes an envelope.
    ///
    /// # Errors
    ///
    /// [`WireError`] on short or mis-tagged input.
    pub fn decode(mut buf: Bytes) -> Result<Envelope, WireError> {
        if buf.len() < ENVELOPE_OVERHEAD {
            return Err(WireError::Truncated);
        }
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(WireError::BadTag(magic));
        }
        let kind = buf.get_u8();
        let sender = NodeId(buf.get_u16_le());
        let view = buf.get_u64_le();
        let msg = match kind {
            0 => {
                if buf.len() < DATA_OVERHEAD {
                    return Err(WireError::Truncated);
                }
                let seq = buf.get_u64_le();
                let total_frags = buf.get_u16_le();
                let frag_idx = buf.get_u16_le();
                let k = buf.get_u8();
                let retrans = buf.get_u8() != 0;
                let kind = PayloadKind::from_byte(k).ok_or(WireError::BadTag(k))?;
                let n_ann = buf.get_u16_le() as usize;
                let n_votes = buf.get_u16_le() as usize;
                if buf.len() < n_ann * SEQ_ASSIGN_WIRE + n_votes * WIRE_VOTE_WIRE {
                    return Err(WireError::Truncated);
                }
                let ann = (0..n_ann).map(|_| get_seq_assign(&mut buf)).collect();
                let votes = (0..n_votes).map(|_| get_wire_vote(&mut buf)).collect();
                Message::Data {
                    seq,
                    total_frags,
                    frag_idx,
                    kind,
                    ann,
                    votes,
                    payload: buf,
                    retrans,
                }
            }
            1 => {
                if buf.len() < 4 {
                    return Err(WireError::Truncated);
                }
                let target = NodeId(buf.get_u16_le());
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * 16 {
                    return Err(WireError::Truncated);
                }
                let ranges =
                    (0..n).map(|_| (buf.get_u64_le(), buf.get_u64_le())).collect::<Vec<_>>();
                Message::Nak { target, ranges }
            }
            2 => {
                if buf.len() < 18 {
                    return Err(WireError::Truncated);
                }
                let round = buf.get_u64_le();
                let w = NodeSet::from_bits(buf.get_u64_le());
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * 16 {
                    return Err(WireError::Truncated);
                }
                let m = (0..n).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                let s = (0..n).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                Message::Gossip(Gossip { round, w, m, s })
            }
            3 => {
                if buf.len() < 8 {
                    return Err(WireError::Truncated);
                }
                Message::Heartbeat { sent: buf.get_u64_le() }
            }
            4 => {
                if buf.len() < 16 {
                    return Err(WireError::Truncated);
                }
                Message::FlushReq {
                    new_view: buf.get_u64_le(),
                    members: NodeSet::from_bits(buf.get_u64_le()),
                }
            }
            5 => {
                if buf.len() < 10 {
                    return Err(WireError::Truncated);
                }
                let new_view = buf.get_u64_le();
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * 8 {
                    return Err(WireError::Truncated);
                }
                let received = (0..n).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                Message::FlushAck { new_view, received }
            }
            6 => {
                if buf.len() < 18 {
                    return Err(WireError::Truncated);
                }
                let new_view = buf.get_u64_le();
                let members = NodeSet::from_bits(buf.get_u64_le());
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * 8 {
                    return Err(WireError::Truncated);
                }
                let cut = (0..n).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                Message::ViewInstall { new_view, members, cut }
            }
            7 => Message::JoinReq,
            9 => {
                if buf.len() < 10 {
                    return Err(WireError::Truncated);
                }
                let base = buf.get_u64_le();
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * WIRE_VOTE_WIRE {
                    return Err(WireError::Truncated);
                }
                let votes = (0..n).map(|_| get_wire_vote(&mut buf)).collect();
                Message::Vote { base, votes }
            }
            10 => {
                if buf.len() < 8 {
                    return Err(WireError::Truncated);
                }
                Message::VoteAck { up_to: buf.get_u64_le() }
            }
            8 => {
                if buf.len() < 18 {
                    return Err(WireError::Truncated);
                }
                let new_view = buf.get_u64_le();
                let members = NodeSet::from_bits(buf.get_u64_le());
                let n = buf.get_u16_le() as usize;
                if buf.len() < n * 8 + 10 {
                    return Err(WireError::Truncated);
                }
                let cut = (0..n).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                let order_base = buf.get_u64_le();
                let k = buf.get_u16_le() as usize;
                if buf.len() < k * 8 + 2 {
                    return Err(WireError::Truncated);
                }
                let skipped = (0..k).map(|_| buf.get_u64_le()).collect::<Vec<_>>();
                let sequencer = NodeId(buf.get_u16_le());
                Message::JoinGrant { new_view, members, cut, order_base, skipped, sequencer }
            }
            other => return Err(WireError::BadTag(other)),
        };
        Ok(Envelope { sender, view, msg })
    }
}

/// Encodes a batch of sequencer assignments as a [`PayloadKind::SeqAnn`]
/// payload.
pub fn encode_seq_ann(assigns: &[SeqAssign]) -> Bytes {
    debug_assert!(assigns.len() <= u16::MAX as usize, "announcement batch exceeds wire count");
    let mut b = BytesMut::with_capacity(2 + assigns.len() * SEQ_ASSIGN_WIRE);
    b.put_u16_le(assigns.len() as u16);
    for a in assigns {
        put_seq_assign(&mut b, a);
    }
    b.freeze()
}

/// Decodes a [`PayloadKind::SeqAnn`] payload.
///
/// # Errors
///
/// [`WireError::Truncated`] when the declared count exceeds the buffer.
pub fn decode_seq_ann(mut buf: Bytes) -> Result<Vec<SeqAssign>, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    if buf.len() < n * SEQ_ASSIGN_WIRE {
        return Err(WireError::Truncated);
    }
    Ok((0..n).map(|_| get_seq_assign(&mut buf)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let env = Envelope { sender: NodeId(3), view: 7, msg };
        let back = Envelope::decode(env.encode()).expect("roundtrip");
        assert_eq!(back, env);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Message::Data {
            seq: 42,
            total_frags: 3,
            frag_idx: 1,
            kind: PayloadKind::App,
            ann: Vec::new(),
            votes: Vec::new(),
            payload: Bytes::from_static(b"hello"),
            retrans: false,
        });
        roundtrip(Message::Data {
            seq: 42,
            total_frags: 1,
            frag_idx: 0,
            kind: PayloadKind::SeqAnn,
            ann: Vec::new(),
            votes: Vec::new(),
            payload: Bytes::new(),
            retrans: true,
        });
        roundtrip(Message::Data {
            seq: 7,
            total_frags: 1,
            frag_idx: 0,
            kind: PayloadKind::App,
            ann: vec![
                SeqAssign { sender: NodeId(1), msg_seq: 3, global_seq: 9 },
                SeqAssign { sender: NodeId(2), msg_seq: 4, global_seq: 10 },
            ],
            votes: vec![
                WireVote { seq: 1, origin: 2, txn: 17, conflict: None },
                WireVote { seq: 2, origin: 0, txn: 3, conflict: Some(41) },
            ],
            payload: Bytes::from_static(b"carried"),
            retrans: false,
        });
        roundtrip(Message::Nak { target: NodeId(2), ranges: vec![(1, 5), (9, 9)] });
        roundtrip(Message::Vote {
            base: 4,
            votes: vec![
                WireVote { seq: 4, origin: 1, txn: 9, conflict: Some(0) },
                WireVote { seq: 5, origin: 1, txn: 10, conflict: None },
            ],
        });
        roundtrip(Message::Vote { base: 1, votes: Vec::new() });
        roundtrip(Message::VoteAck { up_to: 23 });
        roundtrip(Message::Gossip(Gossip {
            round: 8,
            w: NodeSet::first_n(3),
            m: vec![1, 2, 3],
            s: vec![0, 1, 2],
        }));
        roundtrip(Message::Heartbeat { sent: 99 });
        roundtrip(Message::FlushReq { new_view: 2, members: NodeSet::first_n(2) });
        roundtrip(Message::FlushAck { new_view: 2, received: vec![10, 20, 30] });
        roundtrip(Message::ViewInstall {
            new_view: 2,
            members: NodeSet::first_n(2),
            cut: vec![10, 20, 30],
        });
        roundtrip(Message::JoinReq);
        roundtrip(Message::JoinGrant {
            new_view: 4,
            members: NodeSet::first_n(3),
            cut: vec![10, 20, 30],
            order_base: 17,
            skipped: vec![18, 21],
            sequencer: NodeId(1),
        });
        roundtrip(Message::JoinGrant {
            new_view: 1,
            members: NodeSet::first_n(2),
            cut: vec![0, 0],
            order_base: 1,
            skipped: Vec::new(),
            sequencer: NodeId(0),
        });
    }

    #[test]
    fn truncated_join_grant_rejected() {
        let env = Envelope {
            sender: NodeId(0),
            view: 3,
            msg: Message::JoinGrant {
                new_view: 4,
                members: NodeSet::first_n(3),
                cut: vec![10, 20, 30],
                order_base: 17,
                skipped: vec![18],
                sequencer: NodeId(1),
            },
        };
        let full = env.encode();
        for cut in ENVELOPE_OVERHEAD..full.len() {
            assert_eq!(
                Envelope::decode(full.slice(0..cut)),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
        assert!(Envelope::decode(full).is_ok());
    }

    #[test]
    fn rejects_bad_magic_and_kind() {
        let env = Envelope { sender: NodeId(0), view: 0, msg: Message::Heartbeat { sent: 0 } };
        let mut raw = BytesMut::from(&env.encode()[..]);
        raw[0] = 0xFF;
        assert_eq!(Envelope::decode(raw.clone().freeze()), Err(WireError::BadTag(0xFF)));
        raw[0] = MAGIC;
        raw[1] = 99;
        assert_eq!(Envelope::decode(raw.freeze()), Err(WireError::BadTag(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let env = Envelope {
            sender: NodeId(1),
            view: 1,
            msg: Message::Nak { target: NodeId(0), ranges: vec![(1, 2)] },
        };
        let full = env.encode();
        for cut in 0..full.len() {
            let r = Envelope::decode(full.slice(0..cut));
            if cut < full.len() {
                assert!(r.is_err() || cut >= ENVELOPE_OVERHEAD + 4, "cut={cut}");
            }
        }
    }

    #[test]
    fn truncated_piggyback_rejected() {
        let env = Envelope {
            sender: NodeId(0),
            view: 1,
            msg: Message::Data {
                seq: 1,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: vec![SeqAssign { sender: NodeId(1), msg_seq: 1, global_seq: 1 }],
                votes: vec![WireVote { seq: 1, origin: 0, txn: 1, conflict: Some(7) }],
                payload: Bytes::new(),
                retrans: false,
            },
        };
        let full = env.encode();
        // Cutting inside the piggyback region must be an error, never a
        // misparse of assignment or vote bytes as payload.
        for cut in ENVELOPE_OVERHEAD + DATA_OVERHEAD..full.len() {
            assert_eq!(
                Envelope::decode(full.slice(0..cut)),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
        assert!(Envelope::decode(full).is_ok());
    }

    #[test]
    fn truncated_vote_batch_rejected() {
        let env = Envelope {
            sender: NodeId(2),
            view: 5,
            msg: Message::Vote {
                base: 3,
                votes: vec![
                    WireVote { seq: 3, origin: 0, txn: 12, conflict: None },
                    WireVote { seq: 4, origin: 1, txn: 2, conflict: Some(88) },
                ],
            },
        };
        let full = env.encode();
        for cut in ENVELOPE_OVERHEAD..full.len() {
            assert_eq!(
                Envelope::decode(full.slice(0..cut)),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
        assert!(Envelope::decode(full).is_ok());
        let ack = Envelope { sender: NodeId(2), view: 5, msg: Message::VoteAck { up_to: 4 } };
        let full = ack.encode();
        for cut in ENVELOPE_OVERHEAD..full.len() {
            assert_eq!(
                Envelope::decode(full.slice(0..cut)),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
        assert!(Envelope::decode(full).is_ok());
    }

    #[test]
    fn seq_ann_roundtrip() {
        let assigns = vec![
            SeqAssign { sender: NodeId(1), msg_seq: 10, global_seq: 100 },
            SeqAssign { sender: NodeId(2), msg_seq: 11, global_seq: 101 },
        ];
        let back = decode_seq_ann(encode_seq_ann(&assigns)).expect("roundtrip");
        assert_eq!(back, assigns);
        assert!(decode_seq_ann(Bytes::from_static(&[5])).is_err());
        assert!(decode_seq_ann(encode_seq_ann(&assigns).slice(0..5)).is_err());
    }

    #[test]
    fn data_payload_is_zero_copy() {
        let payload = Bytes::from(vec![7u8; 100]);
        let env = Envelope {
            sender: NodeId(0),
            view: 0,
            msg: Message::Data {
                seq: 1,
                total_frags: 1,
                frag_idx: 0,
                kind: PayloadKind::App,
                ann: Vec::new(),
                votes: Vec::new(),
                payload: payload.clone(),
                retrans: false,
            },
        };
        let decoded = Envelope::decode(env.encode()).expect("decode");
        match decoded.msg {
            Message::Data { payload: p, .. } => assert_eq!(p, payload),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}

//! Property tests of the GCS wire format: arbitrary envelopes round-trip,
//! and arbitrary byte soup never panics the decoder (robustness to stray
//! datagrams, which the stack drops silently).

use bytes::Bytes;
use dbsm_gcs::{
    decode_seq_ann, encode_seq_ann, Envelope, Gossip, Message, NodeId, NodeSet, PayloadKind,
    SeqAssign, WireVote,
};
use proptest::prelude::*;

fn arb_nodeset() -> impl Strategy<Value = NodeSet> {
    any::<u64>().prop_map(NodeSet::from_bits)
}

fn arb_vec64(n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..n)
}

fn arb_seq_assign() -> impl Strategy<Value = SeqAssign> {
    (0u16..64, any::<u64>(), any::<u64>()).prop_map(|(s, m, g)| SeqAssign {
        sender: NodeId(s),
        msg_seq: m,
        global_seq: g,
    })
}

fn arb_wire_vote() -> impl Strategy<Value = WireVote> {
    (any::<u64>(), any::<u16>(), any::<u64>(), prop::option::of(any::<u64>()))
        .prop_map(|(seq, origin, txn, conflict)| WireVote { seq, origin, txn, conflict })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u64>(),
            1u16..64,
            any::<bool>(),
            prop::collection::vec(arb_seq_assign(), 0..8),
            prop::collection::vec(arb_wire_vote(), 0..8),
            prop::collection::vec(any::<u8>(), 0..512)
        )
            .prop_flat_map(|(seq, total, retrans, ann, votes, payload)| {
                (0..total).prop_map(move |idx| Message::Data {
                    seq,
                    total_frags: total,
                    frag_idx: idx,
                    kind: if retrans { PayloadKind::SeqAnn } else { PayloadKind::App },
                    ann: ann.clone(),
                    votes: votes.clone(),
                    payload: Bytes::from(payload.clone()),
                    retrans,
                })
            }),
        (any::<u64>(), prop::collection::vec(arb_wire_vote(), 0..16))
            .prop_map(|(base, votes)| Message::Vote { base, votes }),
        any::<u64>().prop_map(|up_to| Message::VoteAck { up_to }),
        (0u16..64, prop::collection::vec((any::<u64>(), any::<u64>()), 0..16))
            .prop_map(|(t, ranges)| Message::Nak { target: NodeId(t), ranges }),
        (any::<u64>(), arb_nodeset(), arb_vec64(16)).prop_map(|(round, w, m)| {
            let s = m.iter().map(|v| v / 2).collect();
            Message::Gossip(Gossip { round, w, m, s })
        }),
        any::<u64>().prop_map(|sent| Message::Heartbeat { sent }),
        (any::<u64>(), arb_nodeset())
            .prop_map(|(v, m)| Message::FlushReq { new_view: v, members: m }),
        (any::<u64>(), arb_vec64(16))
            .prop_map(|(v, r)| Message::FlushAck { new_view: v, received: r }),
        (any::<u64>(), arb_nodeset(), arb_vec64(16)).prop_map(|(v, m, c)| Message::ViewInstall {
            new_view: v,
            members: m,
            cut: c
        }),
    ]
}

proptest! {
    #[test]
    fn envelopes_roundtrip(sender in 0u16..64, view in any::<u64>(), msg in arb_message()) {
        let env = Envelope { sender: NodeId(sender), view, msg };
        let decoded = Envelope::decode(env.encode()).expect("roundtrip");
        prop_assert_eq!(decoded, env);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Envelope::decode(Bytes::from(bytes));
    }

    #[test]
    fn decoder_never_panics_on_truncated_valid(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let env = Envelope { sender: NodeId(1), view: 3, msg };
        let wire = env.encode();
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let _ = Envelope::decode(wire.slice(0..cut));
    }

    #[test]
    fn seq_ann_roundtrips(assigns in prop::collection::vec(
        (0u16..64, any::<u64>(), any::<u64>()), 0..64)
    ) {
        let assigns: Vec<SeqAssign> = assigns
            .into_iter()
            .map(|(s, m, g)| SeqAssign { sender: NodeId(s), msg_seq: m, global_seq: g })
            .collect();
        let back = decode_seq_ann(encode_seq_ann(&assigns)).expect("roundtrip");
        prop_assert_eq!(back, assigns);
    }

    #[test]
    fn seq_ann_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_seq_ann(Bytes::from(bytes));
    }
}

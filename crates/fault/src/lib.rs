//! # dbsm-fault — fault injection and the off-line safety check (§5.3)
//!
//! Declarative [`FaultPlan`]s covering the paper's fault catalogue — clock
//! drift, scheduling latency, random loss, bursty loss, and crashes — plus
//! the off-line consistency checker that asserts the DBSM safety condition:
//! all operational sites commit exactly the same sequence of transactions
//! (crashed sites hold a prefix).
//!
//! Plans are *applied* by the experiment runner in `dbsm-core`: loss models
//! install on the simulated network's receive path, drift and scheduling
//! latency perturb the protocol bridges, crashes silence a site at a given
//! instant.
//!
//! # Examples
//!
//! ```
//! use dbsm_fault::{check_logs, FaultPlan};
//! use dbsm_sim::SimTime;
//!
//! let plan = FaultPlan::random_loss(0.05);
//! assert_eq!(plan.specs.len(), 1);
//!
//! // Two sites committed the same sequence: safe.
//! let log = vec![(0u16, 1u64), (1, 1)];
//! check_logs(&[log.clone(), log], &[false, false])?;
//! # Ok::<(), dbsm_fault::Divergence>(())
//! ```

#![warn(missing_docs)]

mod plan;
mod safety;

pub use plan::{FaultPlan, FaultSpec, Target};
pub use safety::{check_logs, CommitLog, Divergence};

//! # dbsm-fault — fault injection and the off-line safety check (§5.3)
//!
//! Declarative [`FaultPlan`]s covering the paper's fault catalogue — clock
//! drift, scheduling latency, random loss, bursty loss, and crashes — plus
//! the scenario families beyond it: **partitions with merges**
//! ([`FaultSpec::Partition`]), **duplicate delivery**
//! ([`FaultSpec::DuplicateDelivery`]), **correlated loss bursts**
//! ([`FaultSpec::CorrelatedBurst`]) and **restarts with snapshot +
//! delta-log rejoin** ([`FaultSpec::Restart`]), with the
//! [`FaultPlan::flapping_partition`] and [`FaultPlan::kill_and_replace`]
//! chaos combinators composing them. [`check_logs`] is the off-line
//! consistency checker asserting the DBSM safety condition: all operational
//! sites commit exactly the same sequence of transactions (crashed or
//! halted sites hold a prefix); [`check_logs_rejoined`] extends it to
//! rejoined sites, whose logs must *chain through* their transfer cut
//! ([`RejoinCut`]).
//!
//! Plans are *applied* by the experiment runner in `dbsm-core`: loss models
//! install on the simulated network's receive path, drift and scheduling
//! latency perturb the protocol bridges, crashes silence a site at a given
//! instant, partitions split the network into isolated segments until they
//! heal, duplication redelivers received packets, and correlated bursts
//! share one blackout schedule across sites. [`FaultPlan::validate`]
//! rejects malformed plans (overlapping or empty partition groups,
//! out-of-range probabilities, unknown sites) before a run starts.
//!
//! # Examples
//!
//! Build, validate, and check a plan's outcome:
//!
//! ```
//! use dbsm_fault::{check_logs, FaultPlan, FaultSpec, Target};
//! use dbsm_sim::SimTime;
//! use std::time::Duration;
//!
//! // A partition that splits {0,1} from {2} at 10s and merges at 12s,
//! // with 5% random loss on top (loss-family specs stack: both inject).
//! let plan = FaultPlan::partition(
//!     vec![vec![0, 1], vec![2]],
//!     SimTime::from_secs(10),
//!     SimTime::from_secs(12),
//! )
//! .with(FaultSpec::RandomLoss { target: Target::All, p: 0.05 });
//! plan.validate(3)?;
//! assert!(plan.has_partition());
//!
//! // Duplicate delivery and correlated bursts validate the same way.
//! FaultPlan::duplicate_delivery(0.1, 3).validate(3)?;
//! FaultPlan::correlated_burst(vec![0, 1, 2], Duration::from_millis(10), 0.2).validate(3)?;
//! # Ok::<(), dbsm_fault::PlanError>(())
//! ```
//!
//! ```
//! use dbsm_fault::{check_logs, Divergence};
//!
//! // Two operational sites committed the same sequence, a third (halted by
//! // a partition) holds a prefix: safe.
//! let full = vec![(0u16, 1u64), (1, 1), (0, 2)];
//! let prefix = vec![(0u16, 1u64), (1, 1)];
//! check_logs(&[full.clone(), full, prefix], &[false, false, true])?;
//! # Ok::<(), Divergence>(())
//! ```

#![warn(missing_docs)]

mod plan;
mod safety;

pub use plan::{FaultPlan, FaultSpec, PlanError, Target};
pub use safety::{
    check_logs, check_logs_rejoined, check_logs_rejoined_multi, CommitLog, Divergence, RejoinCut,
};

//! The off-line safety check of §5.3: "we ensure that all operational sites
//! must commit exactly the same sequence of transactions by comparing logs
//! off-line after the simulation has finished."

use std::fmt;

/// One site's committed-transaction log: globally-identified transactions
/// `(origin site, per-site transaction number)` in commit order.
pub type CommitLog = Vec<(u16, u64)>;

/// A detected safety violation.
///
/// # Examples
///
/// ```
/// use dbsm_fault::{check_logs, Divergence};
///
/// let a = vec![(0u16, 1u64), (1, 1)];
/// let b = vec![(0u16, 1u64), (2, 1)];
/// let err = check_logs(&[a, b], &[false, false]).unwrap_err();
/// assert!(matches!(err, Divergence::Mismatch { position: 1, .. }));
/// assert!(err.to_string().contains("diverge at position 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Two operational sites committed different transactions at the same
    /// position.
    Mismatch {
        /// First site.
        a: u16,
        /// Second site.
        b: u16,
        /// First differing position.
        position: usize,
        /// What `a` committed there (`None` = log ended).
        at_a: Option<(u16, u64)>,
        /// What `b` committed there.
        at_b: Option<(u16, u64)>,
    },
    /// A crashed site's log is not a prefix of the survivors' log (it
    /// committed something the group did not).
    CrashedNotPrefix {
        /// The crashed site.
        site: u16,
        /// First offending position.
        position: usize,
    },
    /// A site committed the same transaction twice.
    Duplicate {
        /// The site.
        site: u16,
        /// The duplicated transaction.
        txn: (u16, u64),
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Mismatch { a, b, position, at_a, at_b } => {
                write!(f, "sites {a} and {b} diverge at position {position}: {at_a:?} vs {at_b:?}")
            }
            Divergence::CrashedNotPrefix { site, position } => {
                write!(f, "crashed site {site} committed beyond the group at position {position}")
            }
            Divergence::Duplicate { site, txn } => {
                write!(f, "site {site} committed {txn:?} twice")
            }
        }
    }
}

impl std::error::Error for Divergence {}

/// Checks the DBSM safety condition over per-site commit logs.
///
/// Operational sites must have *identical* logs; crashed sites must hold a
/// *prefix* of the common log (they stopped, but never diverged); no site
/// may commit a transaction twice. When **every** site has crashed (e.g. a
/// partition left no primary component and all segments halted), the logs
/// must still form one chain: each must be a prefix of the longest — two
/// segments that committed different suffixes before halting are a
/// split-brain, not a clean stop.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `logs` and `crashed` have different lengths.
///
/// # Examples
///
/// ```
/// use dbsm_fault::check_logs;
///
/// let log = vec![(0u16, 1u64), (1, 1)];
/// check_logs(&[log.clone(), log], &[false, false])?;
/// # Ok::<(), dbsm_fault::Divergence>(())
/// ```
pub fn check_logs(logs: &[CommitLog], crashed: &[bool]) -> Result<(), Divergence> {
    assert_eq!(logs.len(), crashed.len(), "one crash flag per site");
    // Duplicates first.
    for (site, log) in logs.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for txn in log {
            if !seen.insert(*txn) {
                return Err(Divergence::Duplicate { site: site as u16, txn: *txn });
            }
        }
    }
    let operational: Vec<usize> = (0..logs.len()).filter(|i| !crashed[*i]).collect();
    // Pairwise equality over operational sites (transitively sufficient
    // against the first one).
    if let Some(&first) = operational.first() {
        for &other in &operational[1..] {
            let (a, b) = (&logs[first], &logs[other]);
            let n = a.len().max(b.len());
            for pos in 0..n {
                if a.get(pos) != b.get(pos) {
                    return Err(Divergence::Mismatch {
                        a: first as u16,
                        b: other as u16,
                        position: pos,
                        at_a: a.get(pos).copied(),
                        at_b: b.get(pos).copied(),
                    });
                }
            }
        }
    }
    // Crashed sites: prefix of the reference log. With survivors the
    // reference is their common log; with none, the longest log stands in —
    // the prefix property then still orders every halted segment's history
    // on one chain.
    let reference = match operational.first() {
        Some(&first) => &logs[first],
        None => match logs.iter().max_by_key(|l| l.len()) {
            Some(longest) => longest,
            None => return Ok(()),
        },
    };
    for (site, log) in logs.iter().enumerate() {
        if !crashed[site] {
            continue;
        }
        for (pos, txn) in log.iter().enumerate() {
            if reference.get(pos) != Some(txn) {
                return Err(Divergence::CrashedNotPrefix { site: site as u16, position: pos });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(v: &[(u16, u64)]) -> CommitLog {
        v.to_vec()
    }

    #[test]
    fn identical_logs_pass() {
        let l = log(&[(0, 1), (1, 1), (0, 2)]);
        assert_eq!(check_logs(&[l.clone(), l.clone(), l], &[false; 3]), Ok(()));
    }

    #[test]
    fn mismatch_is_detected() {
        let a = log(&[(0, 1), (1, 1)]);
        let b = log(&[(0, 1), (2, 1)]);
        let err = check_logs(&[a, b], &[false, false]).expect_err("diverged");
        assert!(matches!(err, Divergence::Mismatch { position: 1, .. }), "{err}");
    }

    #[test]
    fn length_mismatch_between_operational_sites_is_detected() {
        let a = log(&[(0, 1), (1, 1)]);
        let b = log(&[(0, 1)]);
        let err = check_logs(&[a, b], &[false, false]).expect_err("diverged");
        assert!(matches!(err, Divergence::Mismatch { position: 1, at_b: None, .. }), "{err}");
    }

    #[test]
    fn crashed_prefix_passes() {
        let full = log(&[(0, 1), (1, 1), (0, 2)]);
        let prefix = log(&[(0, 1), (1, 1)]);
        assert_eq!(check_logs(&[full.clone(), full, prefix], &[false, false, true]), Ok(()));
    }

    #[test]
    fn crashed_divergence_is_detected() {
        let full = log(&[(0, 1), (1, 1)]);
        let rogue = log(&[(0, 1), (9, 9)]);
        let err =
            check_logs(&[full.clone(), full, rogue], &[false, false, true]).expect_err("rogue");
        assert_eq!(err, Divergence::CrashedNotPrefix { site: 2, position: 1 });
    }

    #[test]
    fn duplicates_are_detected() {
        let dup = log(&[(0, 1), (0, 1)]);
        let err = check_logs(&[dup], &[false]).expect_err("dup");
        assert_eq!(err, Divergence::Duplicate { site: 0, txn: (0, 1) });
    }

    #[test]
    fn empty_logs_pass() {
        assert_eq!(check_logs(&[vec![], vec![]], &[false, false]), Ok(()));
    }

    #[test]
    fn all_crashed_sites_must_form_one_chain() {
        // Every segment of a no-primary partition halted at a different
        // point: fine as long as the logs are prefixes of one chain.
        let long = log(&[(0, 1), (1, 1), (0, 2)]);
        let mid = log(&[(0, 1), (1, 1)]);
        let short = log(&[(0, 1)]);
        assert_eq!(check_logs(&[mid, long, short], &[true, true, true]), Ok(()));
    }

    #[test]
    fn all_crashed_split_brain_is_detected() {
        // Two halted segments committed different suffixes: split-brain.
        let a = log(&[(0, 1), (1, 7)]);
        let b = log(&[(0, 1), (2, 9), (2, 10)]);
        let err = check_logs(&[a, b], &[true, true]).expect_err("split-brain");
        assert_eq!(err, Divergence::CrashedNotPrefix { site: 0, position: 1 });
    }
}

//! The off-line safety check of §5.3: "we ensure that all operational sites
//! must commit exactly the same sequence of transactions by comparing logs
//! off-line after the simulation has finished."

use std::fmt;

/// One site's committed-transaction log: globally-identified transactions
/// `(origin site, per-site transaction number)` in commit order.
pub type CommitLog = Vec<(u16, u64)>;

/// A detected safety violation.
///
/// # Examples
///
/// ```
/// use dbsm_fault::{check_logs, Divergence};
///
/// let a = vec![(0u16, 1u64), (1, 1)];
/// let b = vec![(0u16, 1u64), (2, 1)];
/// let err = check_logs(&[a, b], &[false, false]).unwrap_err();
/// assert!(matches!(err, Divergence::Mismatch { position: 1, .. }));
/// assert!(err.to_string().contains("diverge at position 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Two operational sites committed different transactions at the same
    /// position.
    Mismatch {
        /// First site.
        a: u16,
        /// Second site.
        b: u16,
        /// First differing position.
        position: usize,
        /// What `a` committed there (`None` = log ended).
        at_a: Option<(u16, u64)>,
        /// What `b` committed there.
        at_b: Option<(u16, u64)>,
    },
    /// A crashed site's log is not a prefix of the survivors' log (it
    /// committed something the group did not).
    CrashedNotPrefix {
        /// The crashed site.
        site: u16,
        /// First offending position.
        position: usize,
    },
    /// A site committed the same transaction twice.
    Duplicate {
        /// The site.
        site: u16,
        /// The duplicated transaction.
        txn: (u16, u64),
    },
    /// A rejoined site's log does not chain through its transfer cut: its
    /// pre-crash prefix or post-rejoin suffix diverges from the reference
    /// log. The *gap* between the two segments is legal (state transfer
    /// filled it); a divergent entry on either side is split-brain.
    RejoinedNotChained {
        /// The rejoined site.
        site: u16,
        /// First offending position in the site's own log.
        position: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Mismatch { a, b, position, at_a, at_b } => {
                write!(f, "sites {a} and {b} diverge at position {position}: {at_a:?} vs {at_b:?}")
            }
            Divergence::CrashedNotPrefix { site, position } => {
                write!(f, "crashed site {site} committed beyond the group at position {position}")
            }
            Divergence::Duplicate { site, txn } => {
                write!(f, "site {site} committed {txn:?} twice")
            }
            Divergence::RejoinedNotChained { site, position } => {
                write!(
                    f,
                    "rejoined site {site} diverges from the transfer chain at position {position}"
                )
            }
        }
    }
}

impl std::error::Error for Divergence {}

/// Checks the DBSM safety condition over per-site commit logs.
///
/// Operational sites must have *identical* logs; crashed sites must hold a
/// *prefix* of the common log (they stopped, but never diverged); no site
/// may commit a transaction twice. When **every** site has crashed (e.g. a
/// partition left no primary component and all segments halted), the logs
/// must still form one chain: each must be a prefix of the longest — two
/// segments that committed different suffixes before halting are a
/// split-brain, not a clean stop.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `logs` and `crashed` have different lengths.
///
/// # Examples
///
/// ```
/// use dbsm_fault::check_logs;
///
/// let log = vec![(0u16, 1u64), (1, 1)];
/// check_logs(&[log.clone(), log], &[false, false])?;
/// # Ok::<(), dbsm_fault::Divergence>(())
/// ```
pub fn check_logs(logs: &[CommitLog], crashed: &[bool]) -> Result<(), Divergence> {
    let rejoins = vec![None; logs.len()];
    check_logs_rejoined(logs, crashed, &rejoins)
}

/// Where a rejoined site's log chains through its state transfer: the site
/// halted holding `kept` commits (a prefix of the group's log), the
/// snapshot + delta-log transfer covered the group's commits up to position
/// `cut`, and everything the site commits after rejoining continues the
/// group's log from `cut`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinCut {
    /// Commits the site held when it crashed/halted (its pre-crash prefix
    /// length).
    pub kept: usize,
    /// Reference-log position the state transfer caught the site up to; its
    /// post-rejoin commits continue from here.
    pub cut: usize,
}

/// [`check_logs`] extended with rejoin cuts: `rejoins[site]` set means the
/// site crashed/halted and re-entered the view via state transfer, and its
/// log must *chain through the cut* instead of matching the reference
/// exactly — `log[..kept]` is its pre-crash prefix of the reference, the
/// gap `[kept, cut)` was filled by the transferred snapshot + delta log
/// (legal, not recorded as fresh commits), and `log[kept..]` must continue
/// the reference from `cut` (a divergent suffix is still split-brain). A
/// rejoined site may trail the reference — it commits from `cut` onward at
/// its own pace — but may never contradict it.
///
/// This is the single-rejoin convenience form; a site that rejoined more
/// than once has several cuts and needs [`check_logs_rejoined_multi`].
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `logs`, `crashed` and `rejoins` have different lengths.
///
/// # Examples
///
/// ```
/// use dbsm_fault::{check_logs_rejoined, RejoinCut};
///
/// let reference = vec![(0u16, 1u64), (1, 1), (0, 2), (1, 2)];
/// // Crashed holding 1 commit, transferred up to 3, committed (1, 2) after.
/// let rejoined = vec![(0u16, 1u64), (1, 2)];
/// check_logs_rejoined(
///     &[reference.clone(), reference, rejoined],
///     &[false, false, false],
///     &[None, None, Some(RejoinCut { kept: 1, cut: 3 })],
/// )?;
/// # Ok::<(), dbsm_fault::Divergence>(())
/// ```
pub fn check_logs_rejoined(
    logs: &[CommitLog],
    crashed: &[bool],
    rejoins: &[Option<RejoinCut>],
) -> Result<(), Divergence> {
    let multi: Vec<Vec<RejoinCut>> = rejoins.iter().map(|r| r.iter().copied().collect()).collect();
    check_logs_rejoined_multi(logs, crashed, &multi)
}

/// Reference-chain position of `pos` in a log that rejoined through
/// `cuts` (sorted by `kept`): positions before the first cut's `kept`
/// align one-to-one with the reference; a later position continues from
/// the **most recent** transfer cut whose `kept` it reached — each rejoin
/// re-bases the suffix that follows it.
fn ref_position(pos: usize, cuts: &[RejoinCut]) -> usize {
    match cuts.iter().rev().find(|c| c.kept <= pos) {
        Some(c) => c.cut + (pos - c.kept),
        None => pos,
    }
}

/// [`check_logs_rejoined`] for sites that may have rejoined **more than
/// once**: `rejoins[site]` lists every completed rejoin's cut, in
/// completion order (`kept` is non-decreasing — a site's log only grows
/// between rejoins). Each log segment between consecutive cuts must align
/// with the reference from the preceding cut's position; the final segment
/// continues from the last cut. With exactly one cut per site this is
/// [`check_logs_rejoined`]; with an empty list the site follows the plain
/// equality/prefix rules.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `logs`, `crashed` and `rejoins` have different lengths.
///
/// # Examples
///
/// ```
/// use dbsm_fault::{check_logs_rejoined_multi, RejoinCut};
///
/// let reference = vec![(0u16, 1u64), (1, 1), (0, 2), (1, 2), (0, 3)];
/// // Crashed at 1 commit, caught up to 2, committed (0, 2); crashed again
/// // at 2 commits, caught up to 4, committed (0, 3).
/// let twice = vec![(0u16, 1u64), (0, 2), (0, 3)];
/// check_logs_rejoined_multi(
///     &[reference.clone(), reference, twice],
///     &[false, false, false],
///     &[vec![], vec![], vec![RejoinCut { kept: 1, cut: 2 }, RejoinCut { kept: 2, cut: 4 }]],
/// )?;
/// # Ok::<(), dbsm_fault::Divergence>(())
/// ```
pub fn check_logs_rejoined_multi(
    logs: &[CommitLog],
    crashed: &[bool],
    rejoins: &[Vec<RejoinCut>],
) -> Result<(), Divergence> {
    assert_eq!(logs.len(), crashed.len(), "one crash flag per site");
    assert_eq!(logs.len(), rejoins.len(), "one rejoin-cut list per site");
    // Cuts sorted by `kept` (completion order already is; be defensive).
    let rejoins: Vec<Vec<RejoinCut>> = rejoins
        .iter()
        .map(|cuts| {
            let mut cuts = cuts.clone();
            cuts.sort_by_key(|c| c.kept);
            cuts
        })
        .collect();
    // Duplicates first.
    for (site, log) in logs.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for txn in log {
            if !seen.insert(*txn) {
                return Err(Divergence::Duplicate { site: site as u16, txn: *txn });
            }
        }
    }
    // Rejoined sites follow the chain rule below, never the exact-equality
    // or plain-prefix rules — whatever their final crash flag says.
    let operational: Vec<usize> =
        (0..logs.len()).filter(|&i| !crashed[i] && rejoins[i].is_empty()).collect();
    // With no never-rejoined survivor there is no complete reference log:
    // every log has a transfer gap, so alignment runs against the *merged*
    // chain instead — each log claims the reference positions its segments
    // cover, and any two logs claiming different transactions for the same
    // position is split-brain (rolling kill-and-replace ends here).
    if operational.is_empty() && rejoins.iter().any(|r| !r.is_empty()) {
        return check_merged_chain(logs, &rejoins);
    }
    // Pairwise equality over operational sites (transitively sufficient
    // against the first one).
    if let Some(&first) = operational.first() {
        for &other in &operational[1..] {
            let (a, b) = (&logs[first], &logs[other]);
            let n = a.len().max(b.len());
            for pos in 0..n {
                if a.get(pos) != b.get(pos) {
                    return Err(Divergence::Mismatch {
                        a: first as u16,
                        b: other as u16,
                        position: pos,
                        at_a: a.get(pos).copied(),
                        at_b: b.get(pos).copied(),
                    });
                }
            }
        }
    }
    // Crashed sites: prefix of the reference log. With survivors the
    // reference is their common log; with none, the longest log stands in —
    // the prefix property then still orders every halted segment's history
    // on one chain.
    let reference = match operational.first() {
        Some(&first) => &logs[first],
        None => match logs.iter().max_by_key(|l| l.len()) {
            Some(longest) => longest,
            None => return Ok(()),
        },
    };
    for (site, log) in logs.iter().enumerate() {
        if !crashed[site] || !rejoins[site].is_empty() {
            continue;
        }
        for (pos, txn) in log.iter().enumerate() {
            if reference.get(pos) != Some(txn) {
                return Err(Divergence::CrashedNotPrefix { site: site as u16, position: pos });
            }
        }
    }
    // Rejoined sites: the log must chain through every transfer cut. Each
    // segment between consecutive cuts aligns with the reference from the
    // preceding cut's position; the gaps are exactly what the snapshots +
    // delta logs carried.
    for (site, log) in logs.iter().enumerate() {
        let cuts = &rejoins[site];
        if cuts.is_empty() {
            continue;
        }
        for (pos, txn) in log.iter().enumerate() {
            if reference.get(ref_position(pos, cuts)) != Some(txn) {
                return Err(Divergence::RejoinedNotChained { site: site as u16, position: pos });
            }
        }
    }
    Ok(())
}

/// The no-complete-reference case of [`check_logs_rejoined_multi`]: every
/// site crashed or rejoined, so the reference chain is reconstructed by
/// merging the positions each log covers — its pre-crash prefix plus one
/// re-based segment per cut for a rejoined log, `[0, len)` for a
/// plain-crashed one. Two logs claiming different transactions for one
/// reference position diverge.
fn check_merged_chain(logs: &[CommitLog], rejoins: &[Vec<RejoinCut>]) -> Result<(), Divergence> {
    let mut merged: std::collections::HashMap<usize, (u16, (u16, u64))> =
        std::collections::HashMap::new();
    for (site, log) in logs.iter().enumerate() {
        for (pos, txn) in log.iter().enumerate() {
            let ref_pos = ref_position(pos, &rejoins[site]);
            match merged.entry(ref_pos) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((site as u16, *txn));
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    let (other, claimed) = *o.get();
                    if claimed != *txn {
                        return Err(Divergence::Mismatch {
                            a: other,
                            b: site as u16,
                            position: ref_pos,
                            at_a: Some(claimed),
                            at_b: Some(*txn),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(v: &[(u16, u64)]) -> CommitLog {
        v.to_vec()
    }

    #[test]
    fn identical_logs_pass() {
        let l = log(&[(0, 1), (1, 1), (0, 2)]);
        assert_eq!(check_logs(&[l.clone(), l.clone(), l], &[false; 3]), Ok(()));
    }

    #[test]
    fn mismatch_is_detected() {
        let a = log(&[(0, 1), (1, 1)]);
        let b = log(&[(0, 1), (2, 1)]);
        let err = check_logs(&[a, b], &[false, false]).expect_err("diverged");
        assert!(matches!(err, Divergence::Mismatch { position: 1, .. }), "{err}");
    }

    #[test]
    fn length_mismatch_between_operational_sites_is_detected() {
        let a = log(&[(0, 1), (1, 1)]);
        let b = log(&[(0, 1)]);
        let err = check_logs(&[a, b], &[false, false]).expect_err("diverged");
        assert!(matches!(err, Divergence::Mismatch { position: 1, at_b: None, .. }), "{err}");
    }

    #[test]
    fn crashed_prefix_passes() {
        let full = log(&[(0, 1), (1, 1), (0, 2)]);
        let prefix = log(&[(0, 1), (1, 1)]);
        assert_eq!(check_logs(&[full.clone(), full, prefix], &[false, false, true]), Ok(()));
    }

    #[test]
    fn crashed_divergence_is_detected() {
        let full = log(&[(0, 1), (1, 1)]);
        let rogue = log(&[(0, 1), (9, 9)]);
        let err =
            check_logs(&[full.clone(), full, rogue], &[false, false, true]).expect_err("rogue");
        assert_eq!(err, Divergence::CrashedNotPrefix { site: 2, position: 1 });
    }

    #[test]
    fn duplicates_are_detected() {
        let dup = log(&[(0, 1), (0, 1)]);
        let err = check_logs(&[dup], &[false]).expect_err("dup");
        assert_eq!(err, Divergence::Duplicate { site: 0, txn: (0, 1) });
    }

    #[test]
    fn empty_logs_pass() {
        assert_eq!(check_logs(&[vec![], vec![]], &[false, false]), Ok(()));
    }

    #[test]
    fn all_crashed_sites_must_form_one_chain() {
        // Every segment of a no-primary partition halted at a different
        // point: fine as long as the logs are prefixes of one chain.
        let long = log(&[(0, 1), (1, 1), (0, 2)]);
        let mid = log(&[(0, 1), (1, 1)]);
        let short = log(&[(0, 1)]);
        assert_eq!(check_logs(&[mid, long, short], &[true, true, true]), Ok(()));
    }

    #[test]
    fn rejoined_gap_filled_by_transfer_is_legal() {
        let reference = log(&[(0, 1), (1, 1), (0, 2), (1, 2), (0, 3)]);
        // Halted holding 2 commits, transfer caught it up to position 4,
        // then it committed (0, 3) itself.
        let rejoined = log(&[(0, 1), (1, 1), (0, 3)]);
        let cut = Some(RejoinCut { kept: 2, cut: 4 });
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), rejoined.clone()],
                &[false, false, false],
                &[None, None, cut],
            ),
            Ok(()),
        );
        // Still catching up (no post-rejoin commits yet): also legal.
        let trailing = log(&[(0, 1), (1, 1)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), trailing],
                &[false, false, false],
                &[None, None, cut],
            ),
            Ok(()),
        );
        // The same log WITHOUT a rejoin cut is an operational divergence:
        // the gap is only legal when state transfer explains it.
        let err = check_logs(&[reference.clone(), reference, rejoined], &[false, false, false])
            .expect_err("gap without a cut");
        assert!(matches!(err, Divergence::Mismatch { position: 2, .. }), "{err}");
    }

    #[test]
    fn rejoined_divergence_is_still_split_brain() {
        let reference = log(&[(0, 1), (1, 1), (0, 2), (1, 2)]);
        let cut = Some(RejoinCut { kept: 1, cut: 3 });
        // Divergent post-rejoin suffix: committed (9, 9) instead of (1, 2).
        let rogue_suffix = log(&[(0, 1), (9, 9)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), rogue_suffix],
                &[false, false, false],
                &[None, None, cut],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 1 }),
        );
        // Divergent pre-crash prefix: it never held a prefix of the group.
        let rogue_prefix = log(&[(7, 7), (1, 2)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), rogue_prefix],
                &[false, false, false],
                &[None, None, cut],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 0 }),
        );
        // Suffix running past the reference cannot be explained either.
        let overrun = log(&[(0, 1), (1, 2), (8, 8)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference, overrun],
                &[false, false, false],
                &[None, None, cut],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 2 }),
        );
    }

    #[test]
    fn rejoined_then_crashed_again_still_chains() {
        let reference = log(&[(0, 1), (1, 1), (0, 2), (1, 2)]);
        let cut = Some(RejoinCut { kept: 1, cut: 2 });
        // Crashed again after one post-rejoin commit: chain rule applies,
        // not the plain prefix rule (which would reject the gap).
        let twice = log(&[(0, 1), (0, 2)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), twice],
                &[false, false, true],
                &[None, None, cut],
            ),
            Ok(()),
        );
        let rogue = log(&[(0, 1), (5, 5)]);
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference, rogue],
                &[false, false, true],
                &[None, None, cut],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 1 }),
        );
    }

    #[test]
    fn two_rejoins_of_one_site_chain_through_both_cuts() {
        // Reference chain: six commits. Site 2 crashes at 1 commit, rejoins
        // with cut 2, commits (0, 2) itself, crashes again at 2 commits,
        // rejoins with cut 4, then commits (2, 2).
        let reference = log(&[(0, 1), (1, 1), (0, 2), (1, 2), (2, 1), (2, 2)]);
        let twice = log(&[(0, 1), (0, 2), (2, 1), (2, 2)]);
        let cuts = vec![RejoinCut { kept: 1, cut: 2 }, RejoinCut { kept: 2, cut: 4 }];
        assert_eq!(
            check_logs_rejoined_multi(
                &[reference.clone(), reference.clone(), twice.clone()],
                &[false, false, false],
                &[vec![], vec![], cuts.clone()],
            ),
            Ok(()),
        );
        // Keeping only the LAST cut — the pre-fix behaviour — mis-aligns
        // the middle segment: (0, 2) at position 1 would be checked against
        // reference position 1 = (1, 1).
        assert_eq!(
            check_logs_rejoined(
                &[reference.clone(), reference.clone(), twice.clone()],
                &[false, false, false],
                &[None, None, Some(cuts[1])],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 1 }),
        );
        // A divergent entry in any segment is still split-brain.
        let rogue = log(&[(0, 1), (0, 2), (9, 9), (2, 2)]);
        assert_eq!(
            check_logs_rejoined_multi(
                &[reference.clone(), reference, rogue],
                &[false, false, false],
                &[vec![], vec![], cuts],
            ),
            Err(Divergence::RejoinedNotChained { site: 2, position: 2 }),
        );
    }

    #[test]
    fn ref_position_rebases_on_the_latest_reached_cut() {
        let cuts = [RejoinCut { kept: 2, cut: 5 }, RejoinCut { kept: 4, cut: 9 }];
        assert_eq!(ref_position(0, &cuts), 0);
        assert_eq!(ref_position(1, &cuts), 1);
        assert_eq!(ref_position(2, &cuts), 5);
        assert_eq!(ref_position(3, &cuts), 6);
        assert_eq!(ref_position(4, &cuts), 9);
        assert_eq!(ref_position(6, &cuts), 11);
        assert_eq!(ref_position(7, &[]), 7, "no cuts: identity");
    }

    #[test]
    fn check_logs_delegates_to_the_rejoin_checker() {
        let l = log(&[(0, 1), (1, 1)]);
        let rejoins = [None, None];
        assert_eq!(
            check_logs(&[l.clone(), l.clone()], &[false, false]),
            check_logs_rejoined(&[l.clone(), l], &[false, false], &rejoins),
        );
        let e = Divergence::RejoinedNotChained { site: 3, position: 4 };
        assert!(e.to_string().contains("site 3"));
        assert!(e.to_string().contains("position 4"));
    }

    #[test]
    fn all_crashed_split_brain_is_detected() {
        // Two halted segments committed different suffixes: split-brain.
        let a = log(&[(0, 1), (1, 7)]);
        let b = log(&[(0, 1), (2, 9), (2, 10)]);
        let err = check_logs(&[a, b], &[true, true]).expect_err("split-brain");
        assert_eq!(err, Divergence::CrashedNotPrefix { site: 0, position: 1 });
    }

    #[test]
    fn every_site_rejoined_merges_one_chain() {
        // Rolling kill-and-replace: all three sites rejoined once, so no
        // complete reference log exists — each log covers its pre-crash
        // prefix plus its post-cut suffix of the common chain
        // [(0,1) (1,1) (2,1) (0,2) (1,2) (2,2)].
        let a = log(&[(0, 1), (0, 2), (1, 2), (2, 2)]); // kept 1, cut 3
        let b = log(&[(0, 1), (1, 1), (1, 2), (2, 2)]); // kept 2, cut 4
        let c = log(&[(0, 1), (1, 1), (2, 1), (2, 2)]); // kept 3, cut 5
        let rejoins = [
            Some(RejoinCut { kept: 1, cut: 3 }),
            Some(RejoinCut { kept: 2, cut: 4 }),
            Some(RejoinCut { kept: 3, cut: 5 }),
        ];
        check_logs_rejoined(&[a, b, c], &[false; 3], &rejoins).expect("one merged chain");
    }

    #[test]
    fn every_site_rejoined_still_catches_split_brain() {
        // Sites 0 and 1 claim different transactions for reference
        // position 2: split-brain survives no matter who rejoined.
        let a = log(&[(0, 1), (7, 7)]); // kept 1, cut 1 -> claims pos 2 = (7,7)
        let b = log(&[(0, 1), (1, 1), (9, 9)]); // kept 3 (no gap) -> pos 2 = (9,9)
        let rejoins = [Some(RejoinCut { kept: 1, cut: 2 }), Some(RejoinCut { kept: 3, cut: 3 })];
        let err =
            check_logs_rejoined(&[a, b], &[false; 2], &rejoins).expect_err("divergent chains");
        assert!(matches!(err, Divergence::Mismatch { position: 2, .. }), "{err}");
    }
}

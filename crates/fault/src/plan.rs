//! Fault plans: declarative descriptions of the fault loads of §5.3.

use dbsm_sim::SimTime;
use std::time::Duration;

/// Which sites a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Every site.
    All,
    /// One site by index.
    Site(u16),
}

impl Target {
    /// True if the target includes `site`.
    pub fn includes(&self, site: u16) -> bool {
        match self {
            Target::All => true,
            Target::Site(s) => *s == site,
        }
    }
}

/// One fault, as catalogued by the paper (§5.3).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Clock drift: scheduled events are postponed (scaled up) and measured
    /// durations scaled down by `rate`.
    ClockDrift {
        /// Affected sites.
        target: Target,
        /// Drift rate (> 1.0 = slow clock).
        rate: f64,
    },
    /// Scheduling latency: a random delay in `[0, max)` added to events
    /// scheduled in the future.
    SchedLatency {
        /// Affected sites.
        target: Target,
        /// Maximum injected delay.
        max: Duration,
    },
    /// Random loss: each message is discarded on reception with probability
    /// `p` (models transmission errors).
    RandomLoss {
        /// Affected sites.
        target: Target,
        /// Per-message drop probability.
        p: f64,
    },
    /// Bursty loss: alternating receive/discard periods (models congestion).
    BurstyLoss {
        /// Affected sites.
        target: Target,
        /// Long-run fraction of messages dropped.
        fraction: f64,
        /// Mean burst length in messages.
        mean_burst: u32,
    },
    /// Crash: the site stops completely at the given instant.
    Crash {
        /// The crashing site.
        site: u16,
        /// Crash instant.
        at: SimTime,
    },
}

/// A set of faults to inject into one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The paper's "Random loss" scenario: `p` loss at every site.
    pub fn random_loss(p: f64) -> Self {
        FaultPlan::none().with(FaultSpec::RandomLoss { target: Target::All, p })
    }

    /// The paper's "Bursty loss" scenario: `fraction` loss in bursts of
    /// average `mean_burst` messages at every site.
    pub fn bursty_loss(fraction: f64, mean_burst: u32) -> Self {
        FaultPlan::none().with(FaultSpec::BurstyLoss { target: Target::All, fraction, mean_burst })
    }

    /// A crash of `site` at `at`.
    pub fn crash(site: u16, at: SimTime) -> Self {
        FaultPlan::none().with(FaultSpec::Crash { site, at })
    }

    /// Clock drift on one site.
    pub fn clock_drift(site: u16, rate: f64) -> Self {
        FaultPlan::none().with(FaultSpec::ClockDrift { target: Target::Site(site), rate })
    }

    /// Scheduling latency on every site.
    pub fn sched_latency(max: Duration) -> Self {
        FaultPlan::none().with(FaultSpec::SchedLatency { target: Target::All, max })
    }

    /// Sites crashed by this plan at or before `t`.
    pub fn crashed_by(&self, t: SimTime) -> Vec<u16> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Crash { site, at } if *at <= t => Some(*site),
                _ => None,
            })
            .collect()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::random_loss(0.05)
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(10) });
        assert_eq!(plan.specs.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn target_matching() {
        assert!(Target::All.includes(3));
        assert!(Target::Site(3).includes(3));
        assert!(!Target::Site(3).includes(4));
    }

    #[test]
    fn crashed_by_filters_on_time() {
        let plan = FaultPlan::crash(1, SimTime::from_secs(5))
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(50) });
        assert_eq!(plan.crashed_by(SimTime::from_secs(10)), vec![1]);
        assert_eq!(plan.crashed_by(SimTime::from_secs(60)), vec![1, 2]);
        assert!(plan.crashed_by(SimTime::ZERO).is_empty());
    }
}

//! Fault plans: declarative descriptions of the fault loads of §5.3, plus
//! the scenario families the paper's catalogue motivates but does not
//! exercise — partitions with merges, duplicate delivery, and correlated
//! loss bursts.

use dbsm_sim::SimTime;
use std::fmt;
use std::time::Duration;

/// Which sites a fault applies to.
///
/// # Examples
///
/// ```
/// use dbsm_fault::Target;
///
/// assert!(Target::All.includes(5));
/// assert!(Target::Site(2).includes(2));
/// assert!(!Target::Site(2).includes(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Every site.
    All,
    /// One site by index.
    Site(u16),
}

impl Target {
    /// True if the target includes `site`.
    pub fn includes(&self, site: u16) -> bool {
        match self {
            Target::All => true,
            Target::Site(s) => *s == site,
        }
    }
}

/// One fault, as catalogued by the paper (§5.3) or added on top of it
/// (partition/merge, duplicate delivery, correlated bursts — the scenarios
/// Sutra & Shapiro and Cecchet et al. identify as where middleware
/// replication actually breaks).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Clock drift: scheduled events are postponed (scaled up) and measured
    /// durations scaled down by `rate`.
    ClockDrift {
        /// Affected sites.
        target: Target,
        /// Drift rate (> 1.0 = slow clock).
        rate: f64,
    },
    /// Scheduling latency: a random delay in `[0, max)` added to events
    /// scheduled in the future.
    SchedLatency {
        /// Affected sites.
        target: Target,
        /// Maximum injected delay.
        max: Duration,
    },
    /// Random loss: each message is discarded on reception with probability
    /// `p` (models transmission errors).
    RandomLoss {
        /// Affected sites.
        target: Target,
        /// Per-message drop probability.
        p: f64,
    },
    /// Bursty loss: alternating receive/discard periods (models congestion).
    /// The burst schedule advances per packet at each receiver, so bursts
    /// decorrelate across sites — use [`FaultSpec::CorrelatedBurst`] for
    /// bursts that hit several sites in the same instant.
    BurstyLoss {
        /// Affected sites.
        target: Target,
        /// Long-run fraction of messages dropped.
        fraction: f64,
        /// Mean burst length in messages.
        mean_burst: u32,
    },
    /// Crash: the site stops completely at the given instant.
    Crash {
        /// The crashing site.
        site: u16,
        /// Crash instant.
        at: SimTime,
    },
    /// Restart: a previously crashed (or partition-halted) site comes back
    /// at the given instant with empty volatile state, announces itself to
    /// the live primary component, and catches up through a snapshot +
    /// delta-log state transfer before a view install re-admits it.
    ///
    /// A restart must follow a crash or halt of the same site
    /// ([`FaultPlan::validate`] enforces it, mirroring the partition
    /// `heal_at > at` rule); restarting into an ongoing partition is legal —
    /// the join request is simply retried until the network heals.
    Restart {
        /// The restarting site.
        site: u16,
        /// Restart instant.
        at: SimTime,
    },
    /// Network partition: at `at` the network splits into the given
    /// isolated segments (sites in different groups cannot exchange any
    /// packet); at `heal_at` the segments merge back.
    ///
    /// A partition longer than the group's failure-detector timeout drives
    /// real view changes: the primary component (a strict majority of the
    /// current view) excludes the unreachable sites and continues, while
    /// non-primary segments halt rather than risk split-brain — their sites
    /// count as crashed for the safety check. A partition shorter than the
    /// timeout merges back without any membership change, recovering lost
    /// traffic through NAK retransmission.
    ///
    /// Groups must be non-empty and pairwise disjoint; sites not listed in
    /// any group are isolated from everyone while the partition lasts.
    Partition {
        /// The partition segments, as lists of site indices.
        groups: Vec<Vec<u16>>,
        /// Split instant.
        at: SimTime,
        /// Merge (heal) instant; must lie after `at`.
        heal_at: SimTime,
    },
    /// Byzantine-ish duplicate delivery: each packet arriving at any site is
    /// redelivered (1..=`max_copies` extra copies) with probability `p`.
    /// The group-communication dedup path must absorb the copies without
    /// burning global sequence numbers or disturbing the delivery order.
    DuplicateDelivery {
        /// Per-packet redelivery probability.
        p: f64,
        /// Maximum extra copies per duplicated packet.
        max_copies: u8,
    },
    /// Correlated loss bursts: simulated time is sliced into `window`-long
    /// slots and each slot independently becomes a total blackout with
    /// probability `p` — *simultaneously* at every listed site (one shared
    /// schedule), unlike the per-link [`FaultSpec::BurstyLoss`].
    CorrelatedBurst {
        /// The sites hit by the shared burst schedule.
        sites: Vec<u16>,
        /// Blackout slot length.
        window: Duration,
        /// Probability that any given slot is a blackout.
        p: f64,
    },
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A partition needs at least two groups to split anything.
    PartitionTooFewGroups {
        /// Number of groups supplied.
        groups: usize,
    },
    /// A partition group is empty.
    PartitionEmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
    /// A site is listed in more than one partition group.
    PartitionOverlap {
        /// The doubly listed site.
        site: u16,
    },
    /// A partition's heal instant does not lie after its split instant.
    PartitionHealNotAfterSplit {
        /// Split instant.
        at: SimTime,
        /// Offending heal instant.
        heal_at: SimTime,
    },
    /// A site index is outside the experiment's `0..sites` range.
    UnknownSite {
        /// Which scenario family referenced it.
        what: &'static str,
        /// The out-of-range site.
        site: u16,
    },
    /// A probability is outside `[0, 1]`.
    BadProbability {
        /// Which scenario family carried it.
        what: &'static str,
        /// The offending value.
        p: f64,
    },
    /// A correlated burst lists no sites.
    NoBurstSites,
    /// A correlated burst lists the same site twice.
    DuplicateBurstSite {
        /// The doubly listed site.
        site: u16,
    },
    /// A parameter that must be strictly positive is zero (or, for the
    /// bursty-loss fraction, outside the open interval `(0, 1)`).
    NotPositive {
        /// Which parameter.
        what: &'static str,
    },
    /// `DuplicateDelivery::max_copies` is zero.
    ZeroCopies,
    /// Under a partial-replication placement, a partition's surviving
    /// primary component holds no replica of some span (warehouse): its
    /// transactions would become unroutable for the rest of the run.
    PartitionUncoveredSpan {
        /// The stranded span (warehouse index).
        span: u64,
    },
    /// Under a partial-replication placement, the plan crashes every
    /// replica of some span (warehouse).
    CrashUncoveredSpan {
        /// The stranded span (warehouse index).
        span: u64,
    },
    /// A restart of a site the plan never crashes or halts: there is
    /// nothing to recover.
    RestartWithoutCrash {
        /// The site with no prior crash or halt.
        site: u16,
    },
    /// A restart scheduled at or before every crash of its site — the site
    /// would not be down yet when asked to come back.
    RestartNotAfterCrash {
        /// The restarting site.
        site: u16,
        /// Offending restart instant.
        at: SimTime,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::PartitionTooFewGroups { groups } => {
                write!(f, "partition needs at least two groups, got {groups}")
            }
            PlanError::PartitionEmptyGroup { group } => {
                write!(f, "partition group {group} is empty")
            }
            PlanError::PartitionOverlap { site } => {
                write!(f, "site {site} appears in two partition groups")
            }
            PlanError::PartitionHealNotAfterSplit { at, heal_at } => {
                write!(f, "partition heal at {heal_at} does not follow the split at {at}")
            }
            PlanError::UnknownSite { what, site } => {
                write!(f, "{what} references site {site} outside the experiment")
            }
            PlanError::BadProbability { what, p } => {
                write!(f, "{what} probability {p} out of range")
            }
            PlanError::NoBurstSites => write!(f, "correlated burst lists no sites"),
            PlanError::DuplicateBurstSite { site } => {
                write!(f, "correlated burst lists site {site} twice")
            }
            PlanError::NotPositive { what } => write!(f, "{what} must be positive"),
            PlanError::ZeroCopies => write!(f, "duplicate delivery needs max_copies >= 1"),
            PlanError::PartitionUncoveredSpan { span } => {
                write!(f, "partition leaves warehouse span {span} with zero live replicas in the primary component")
            }
            PlanError::CrashUncoveredSpan { span } => {
                write!(f, "crashes leave warehouse span {span} with zero live replicas")
            }
            PlanError::RestartWithoutCrash { site } => {
                write!(f, "restart of site {site} which the plan never crashes or halts")
            }
            PlanError::RestartNotAfterCrash { site, at } => {
                write!(f, "restart of site {site} at {at} does not follow any crash of it")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A set of faults to inject into one experiment run.
///
/// # Examples
///
/// Compose a plan from the builder helpers and validate it against the
/// experiment's site count before running:
///
/// ```
/// use dbsm_fault::{FaultPlan, FaultSpec};
/// use dbsm_sim::SimTime;
///
/// let plan = FaultPlan::partition(
///     vec![vec![0, 1], vec![2]],
///     SimTime::from_secs(10),
///     SimTime::from_secs(12),
/// )
/// .with(FaultSpec::DuplicateDelivery { p: 0.05, max_copies: 2 });
/// assert_eq!(plan.specs.len(), 2);
/// plan.validate(3)?;
/// assert!(plan.validate(2).is_err(), "site 2 does not exist in a 2-site run");
/// # Ok::<(), dbsm_fault::PlanError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The paper's "Random loss" scenario: `p` loss at every site.
    pub fn random_loss(p: f64) -> Self {
        FaultPlan::none().with(FaultSpec::RandomLoss { target: Target::All, p })
    }

    /// The paper's "Bursty loss" scenario: `fraction` loss in bursts of
    /// average `mean_burst` messages at every site.
    pub fn bursty_loss(fraction: f64, mean_burst: u32) -> Self {
        FaultPlan::none().with(FaultSpec::BurstyLoss { target: Target::All, fraction, mean_burst })
    }

    /// A crash of `site` at `at`.
    pub fn crash(site: u16, at: SimTime) -> Self {
        FaultPlan::none().with(FaultSpec::Crash { site, at })
    }

    /// A crash of `site` at `at` followed by a restart (snapshot +
    /// delta-log rejoin) at `restart_at`.
    ///
    /// ```
    /// use dbsm_fault::FaultPlan;
    /// use dbsm_sim::SimTime;
    ///
    /// let plan = FaultPlan::crash_restart(1, SimTime::from_secs(5), SimTime::from_secs(20));
    /// plan.validate(3).expect("restart follows the crash");
    /// assert!(plan.has_restart());
    /// assert_eq!(plan.crashed_by(SimTime::from_secs(10)), vec![1]);
    /// assert!(plan.crashed_by(SimTime::from_secs(20)).is_empty(), "restarted by then");
    /// ```
    pub fn crash_restart(site: u16, at: SimTime, restart_at: SimTime) -> Self {
        FaultPlan::none()
            .with(FaultSpec::Crash { site, at })
            .with(FaultSpec::Restart { site, at: restart_at })
    }

    /// A flapping crash: the same site dies and rejoins `count` times. Flap
    /// `i` crashes at `at + i·2·period` and restarts one `period` later, so
    /// the site alternates `period`-long dead and recovering phases. With
    /// `count >= 2` this is the plan the multi-rejoin chain checker
    /// (`check_logs_rejoined_multi`) was built for — one site accumulating
    /// several rejoin cuts in a single run — which no stock plan exercised
    /// before.
    ///
    /// ```
    /// use dbsm_fault::FaultPlan;
    /// use dbsm_sim::SimTime;
    /// use std::time::Duration;
    ///
    /// let plan = FaultPlan::flapping_crash(1, SimTime::from_secs(5), Duration::from_secs(10), 2);
    /// plan.validate(3).expect("each restart follows its crash");
    /// assert!(plan.has_restart());
    /// // Down during each flap, back up in between.
    /// assert_eq!(plan.crashed_by(SimTime::from_secs(10)), vec![1]);
    /// assert!(plan.crashed_by(SimTime::from_secs(20)).is_empty());
    /// assert_eq!(plan.crashed_by(SimTime::from_secs(30)), vec![1]);
    /// assert!(plan.crashed_by(SimTime::from_secs(40)).is_empty());
    /// ```
    pub fn flapping_crash(site: u16, at: SimTime, period: Duration, count: u32) -> Self {
        let mut plan = FaultPlan::none();
        let period_ns = period.as_nanos() as u64;
        for i in 0..count as u64 {
            let crash = SimTime::from_nanos(at.as_nanos() + i * 2 * period_ns);
            let restart = SimTime::from_nanos(crash.as_nanos() + period_ns);
            plan = plan
                .with(FaultSpec::Crash { site, at: crash })
                .with(FaultSpec::Restart { site, at: restart });
        }
        plan
    }

    /// A flapping partition: the same split re-forms `count` times. Flap
    /// `i` splits at `at + i·2·period` and heals one `period` later, so the
    /// network alternates `period`-long partitioned and healed phases —
    /// the membership machinery is forced through repeated
    /// exclude/halt/rejoin cycles instead of the single one a plain
    /// [`FaultPlan::partition`] exercises.
    pub fn flapping_partition(
        groups: Vec<Vec<u16>>,
        at: SimTime,
        period: Duration,
        count: u32,
    ) -> Self {
        let mut plan = FaultPlan::none();
        let period_ns = period.as_nanos() as u64;
        for i in 0..count as u64 {
            let split = SimTime::from_nanos(at.as_nanos() + i * 2 * period_ns);
            let heal = SimTime::from_nanos(split.as_nanos() + period_ns);
            plan = plan.with(FaultSpec::Partition {
                groups: groups.clone(),
                at: split,
                heal_at: heal,
            });
        }
        plan
    }

    /// The rolling kill-and-replace chaos plan: every one of the `sites`
    /// replicas is crashed once and restarted `downtime` later, one site
    /// at a time, `stagger` apart (site `s` crashes at
    /// `first_at + s·stagger`). Choose `stagger` comfortably larger than
    /// `downtime` plus the expected catch-up time so at most one site is
    /// down or rejoining at any instant — the survivors then always hold a
    /// primary component and the run never halts.
    pub fn kill_and_replace(
        sites: usize,
        first_at: SimTime,
        stagger: Duration,
        downtime: Duration,
    ) -> Self {
        let mut plan = FaultPlan::none();
        for s in 0..sites {
            let at =
                SimTime::from_nanos(first_at.as_nanos() + s as u64 * stagger.as_nanos() as u64);
            let back = SimTime::from_nanos(at.as_nanos() + downtime.as_nanos() as u64);
            plan = plan
                .with(FaultSpec::Crash { site: s as u16, at })
                .with(FaultSpec::Restart { site: s as u16, at: back });
        }
        plan
    }

    /// Clock drift on one site.
    pub fn clock_drift(site: u16, rate: f64) -> Self {
        FaultPlan::none().with(FaultSpec::ClockDrift { target: Target::Site(site), rate })
    }

    /// Scheduling latency on every site.
    pub fn sched_latency(max: Duration) -> Self {
        FaultPlan::none().with(FaultSpec::SchedLatency { target: Target::All, max })
    }

    /// A network partition into `groups` at `at`, healing (merging) at
    /// `heal_at`.
    ///
    /// ```
    /// use dbsm_fault::FaultPlan;
    /// use dbsm_sim::SimTime;
    ///
    /// let plan =
    ///     FaultPlan::partition(vec![vec![0, 1], vec![2]], SimTime::from_secs(5), SimTime::from_secs(8));
    /// assert!(plan.has_partition());
    /// plan.validate(3).expect("well-formed split of 3 sites");
    /// ```
    pub fn partition(groups: Vec<Vec<u16>>, at: SimTime, heal_at: SimTime) -> Self {
        FaultPlan::none().with(FaultSpec::Partition { groups, at, heal_at })
    }

    /// Duplicate delivery at every site: each arriving packet is redelivered
    /// (1..=`max_copies` extra copies) with probability `p`.
    pub fn duplicate_delivery(p: f64, max_copies: u8) -> Self {
        FaultPlan::none().with(FaultSpec::DuplicateDelivery { p, max_copies })
    }

    /// Correlated loss bursts on `sites`: every `window`-long slot of
    /// simulated time blacks out all of them simultaneously with
    /// probability `p`.
    pub fn correlated_burst(sites: Vec<u16>, window: Duration, p: f64) -> Self {
        FaultPlan::none().with(FaultSpec::CorrelatedBurst { sites, window, p })
    }

    /// Sites down at `t` according to this plan's crash/restart schedule (a
    /// crash scheduled *exactly* at `t` counts; so does a restart), sorted
    /// and deduplicated — a site crashed twice is still one crashed site,
    /// and a site restarted after its latest crash is no longer down.
    ///
    /// ```
    /// use dbsm_fault::{FaultPlan, FaultSpec};
    /// use dbsm_sim::SimTime;
    ///
    /// let plan = FaultPlan::crash(2, SimTime::from_secs(5))
    ///     .with(FaultSpec::Crash { site: 1, at: SimTime::from_secs(9) });
    /// assert!(plan.crashed_by(SimTime::from_secs(4)).is_empty());
    /// assert_eq!(plan.crashed_by(SimTime::from_secs(5)), vec![2], "boundary is inclusive");
    /// assert_eq!(plan.crashed_by(SimTime::from_secs(9)), vec![1, 2], "sorted by site");
    /// ```
    pub fn crashed_by(&self, t: SimTime) -> Vec<u16> {
        let mut sites: Vec<u16> = self
            .specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Crash { site, at } if *at <= t => Some(*site),
                _ => None,
            })
            .filter(|&site| self.down_at(site, t))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    /// True when `site` is down at `t`: its latest crash at or before `t`
    /// is not followed by a restart at or before `t`.
    pub fn down_at(&self, site: u16, t: SimTime) -> bool {
        let latest = |want_restart: bool| {
            self.specs
                .iter()
                .filter_map(|s| match s {
                    FaultSpec::Crash { site: c, at } if !want_restart && *c == site && *at <= t => {
                        Some(*at)
                    }
                    FaultSpec::Restart { site: r, at }
                        if want_restart && *r == site && *at <= t =>
                    {
                        Some(*at)
                    }
                    _ => None,
                })
                .max()
        };
        match (latest(false), latest(true)) {
            (Some(crash), Some(restart)) => restart < crash,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// True if any spec is a [`FaultSpec::Partition`] — the experiment
    /// runner switches such runs to uniform (safe) delivery, because
    /// optimistic delivery may speculate across a primary-component change.
    pub fn has_partition(&self) -> bool {
        self.specs.iter().any(|s| matches!(s, FaultSpec::Partition { .. }))
    }

    /// True if any spec is a [`FaultSpec::Restart`] — such runs also force
    /// uniform (safe) delivery, because a rejoin installs a view across
    /// which optimistic delivery could speculate.
    pub fn has_restart(&self) -> bool {
        self.specs.iter().any(|s| matches!(s, FaultSpec::Restart { .. }))
    }

    /// Checks the plan against an experiment with `sites` sites.
    ///
    /// Partition groups must be ≥ 2, non-empty, pairwise disjoint and made
    /// of existing sites, with `heal_at > at`; probabilities must lie in
    /// `[0, 1]`; correlated bursts need a non-empty duplicate-free site
    /// list and a positive window; duplicate delivery needs at least one
    /// allowed copy.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] found.
    pub fn validate(&self, sites: usize) -> Result<(), PlanError> {
        let known = |what: &'static str, site: u16| {
            if (site as usize) < sites {
                Ok(())
            } else {
                Err(PlanError::UnknownSite { what, site })
            }
        };
        let prob = |what: &'static str, p: f64| {
            if (0.0..=1.0).contains(&p) && p.is_finite() {
                Ok(())
            } else {
                Err(PlanError::BadProbability { what, p })
            }
        };
        for spec in &self.specs {
            match spec {
                FaultSpec::Partition { groups, at, heal_at } => {
                    if groups.len() < 2 {
                        return Err(PlanError::PartitionTooFewGroups { groups: groups.len() });
                    }
                    let mut seen = std::collections::HashSet::new();
                    for (gi, group) in groups.iter().enumerate() {
                        if group.is_empty() {
                            return Err(PlanError::PartitionEmptyGroup { group: gi });
                        }
                        for &site in group {
                            known("partition", site)?;
                            if !seen.insert(site) {
                                return Err(PlanError::PartitionOverlap { site });
                            }
                        }
                    }
                    if heal_at <= at {
                        return Err(PlanError::PartitionHealNotAfterSplit {
                            at: *at,
                            heal_at: *heal_at,
                        });
                    }
                }
                FaultSpec::DuplicateDelivery { p, max_copies } => {
                    prob("duplicate delivery", *p)?;
                    if *max_copies == 0 {
                        return Err(PlanError::ZeroCopies);
                    }
                }
                FaultSpec::CorrelatedBurst { sites: burst_sites, window, p } => {
                    if burst_sites.is_empty() {
                        return Err(PlanError::NoBurstSites);
                    }
                    let mut seen = std::collections::HashSet::new();
                    for &site in burst_sites {
                        known("correlated burst", site)?;
                        if !seen.insert(site) {
                            return Err(PlanError::DuplicateBurstSite { site });
                        }
                    }
                    if window.is_zero() {
                        return Err(PlanError::NotPositive { what: "burst window" });
                    }
                    prob("correlated burst", *p)?;
                }
                FaultSpec::RandomLoss { target, p } => {
                    prob("random loss", *p)?;
                    if let Target::Site(site) = target {
                        known("random loss target", *site)?;
                    }
                }
                FaultSpec::BurstyLoss { target, fraction, mean_burst } => {
                    // BurstyLoss::new panics outside the open interval.
                    if !(fraction.is_finite() && *fraction > 0.0 && *fraction < 1.0) {
                        return Err(PlanError::BadProbability {
                            what: "bursty loss fraction",
                            p: *fraction,
                        });
                    }
                    if *mean_burst == 0 {
                        return Err(PlanError::NotPositive { what: "mean burst length" });
                    }
                    if let Target::Site(site) = target {
                        known("bursty loss target", *site)?;
                    }
                }
                FaultSpec::Crash { site, .. } => known("crash", *site)?,
                FaultSpec::Restart { site, at } => {
                    known("restart", *site)?;
                    // A restart must recover *something*: a crash of the same
                    // site strictly before it, or a partition (started before
                    // it) that halts the site — any non-majority segment, or
                    // no segment at all, halts under the primary-component
                    // rule. This mirrors the `heal_at > at` partition check.
                    let crashes: Vec<SimTime> = self
                        .specs
                        .iter()
                        .filter_map(|s| match s {
                            FaultSpec::Crash { site: c, at } if c == site => Some(*at),
                            _ => None,
                        })
                        .collect();
                    if crashes.iter().any(|c| c < at) {
                        continue;
                    }
                    if !crashes.is_empty() {
                        return Err(PlanError::RestartNotAfterCrash { site: *site, at: *at });
                    }
                    let halted_by_partition = self.specs.iter().any(|s| match s {
                        FaultSpec::Partition { groups, at: split, .. } if split < at => {
                            let minority = groups
                                .iter()
                                .find(|g| g.contains(site))
                                .is_none_or(|g| g.len() * 2 <= sites);
                            minority && groups.iter().any(|g| g.len() * 2 > sites)
                        }
                        _ => false,
                    });
                    if !halted_by_partition {
                        return Err(PlanError::RestartWithoutCrash { site: *site });
                    }
                }
                FaultSpec::ClockDrift { target, .. } | FaultSpec::SchedLatency { target, .. } => {
                    if let Target::Site(site) = target {
                        known("drift/latency target", *site)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the plan against a partial-replication placement:
    /// `replica_sets[span]` lists the sites replicating warehouse `span`.
    /// Rejects only plans whose faults would leave some span with zero
    /// *surviving sites cluster-wide* — truly unservable, because there is
    /// nobody left to re-home the span to. A plan that merely strands a
    /// span's own replica set is legal: the surviving sites detect the
    /// stranding at the view change and re-place the span onto an elected
    /// survivor (rendezvous hash + state transfer), so every transaction
    /// homed there becomes routable again after the transfer.
    ///
    /// * Crashes that take down *every* site at some instant are rejected
    ///   ([`PlanError::CrashUncoveredSpan`] naming the first replicated
    ///   span) — no survivor exists to adopt anything.
    /// * Partitions never reject here: a primary component can always adopt
    ///   stranded spans, and plans with no majority group halt the whole
    ///   system — a legitimate total-outage scenario.
    ///
    /// The pre-re-placement rule (any stranded replica set rejects) lives on
    /// as [`FaultPlan::validate_coverage_strict`] for oracle tests and
    /// placements that opt out of re-homing. Call after
    /// [`FaultPlan::validate`]; full replication never needs this check.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::CrashUncoveredSpan`] when some crash instant
    /// leaves zero live sites while spans are replicated.
    pub fn validate_coverage(
        &self,
        sites: usize,
        replica_sets: &[Vec<u16>],
    ) -> Result<(), PlanError> {
        let crash_instants = self.specs.iter().filter_map(|s| match s {
            FaultSpec::Crash { at, .. } => Some(*at),
            _ => None,
        });
        for t in crash_instants {
            if sites > 0 && (0..sites as u16).all(|s| self.down_at(s, t)) {
                if let Some(span) = replica_sets.iter().position(|r| !r.is_empty()) {
                    return Err(PlanError::CrashUncoveredSpan { span: span as u64 });
                }
            }
        }
        Ok(())
    }

    /// The strict coverage rule partial replication enforced before
    /// re-placement existed: rejects any plan whose faults strand a span's
    /// *replica set*, even though survivors elsewhere could adopt it —
    ///
    /// * a partition whose surviving *primary component* (the group holding
    ///   a strict majority of `sites`; minority segments halt under the
    ///   PR 4 primary-component rule) contains no replica of the span;
    /// * crashes that take down every replica of the span.
    ///
    /// Plans with no majority group halt the whole system — a legitimate
    /// total-outage scenario — and are not rejected here. Oracle tests pin
    /// this behavior via `PlacementMap::with_strict_coverage`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError::PartitionUncoveredSpan`] or
    /// [`PlanError::CrashUncoveredSpan`] found.
    pub fn validate_coverage_strict(
        &self,
        sites: usize,
        replica_sets: &[Vec<u16>],
    ) -> Result<(), PlanError> {
        // Crash coverage is checked instant by instant: at every crash
        // time, the set of simultaneously down sites (crashed, not yet
        // restarted — [`FaultPlan::down_at`]) must leave each span a live
        // replica. A replica crashed and restarted before another replica's
        // crash does not strand the span; without restarts this degenerates
        // to the old "every replica ever crashed" rule, since at the latest
        // crash instant every crashed site is still down.
        let crash_instants: Vec<SimTime> = self
            .specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Crash { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        for &t in &crash_instants {
            for (span, replicas) in replica_sets.iter().enumerate() {
                if !replicas.is_empty() && replicas.iter().all(|&r| self.down_at(r, t)) {
                    return Err(PlanError::CrashUncoveredSpan { span: span as u64 });
                }
            }
        }
        for spec in &self.specs {
            let FaultSpec::Partition { groups, .. } = spec else { continue };
            // Sites missing from every group are isolated singletons, so a
            // listed group is primary iff it holds a strict majority of all
            // `sites`.
            let Some(primary) = groups.iter().find(|g| g.len() * 2 > sites) else { continue };
            for (span, replicas) in replica_sets.iter().enumerate() {
                if !replicas.is_empty() && !replicas.iter().any(|r| primary.contains(r)) {
                    return Err(PlanError::PartitionUncoveredSpan { span: span as u64 });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::random_loss(0.05)
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(10) });
        assert_eq!(plan.specs.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn target_matching() {
        assert!(Target::All.includes(3));
        assert!(Target::Site(3).includes(3));
        assert!(!Target::Site(3).includes(4));
    }

    #[test]
    fn crashed_by_filters_on_time() {
        let plan = FaultPlan::crash(1, SimTime::from_secs(5))
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(50) });
        assert_eq!(plan.crashed_by(SimTime::from_secs(10)), vec![1]);
        assert_eq!(plan.crashed_by(SimTime::from_secs(60)), vec![1, 2]);
        assert!(plan.crashed_by(SimTime::ZERO).is_empty());
    }

    #[test]
    fn crash_exactly_at_t_counts_as_crashed() {
        let plan = FaultPlan::crash(0, SimTime::from_secs(7));
        assert!(plan.crashed_by(SimTime::from_nanos(7_000_000_000 - 1)).is_empty());
        assert_eq!(plan.crashed_by(SimTime::from_secs(7)), vec![0], "boundary inclusive");
    }

    #[test]
    fn multiple_crashes_of_one_site_dedup_and_sort() {
        let plan = FaultPlan::crash(2, SimTime::from_secs(3))
            .with(FaultSpec::Crash { site: 0, at: SimTime::from_secs(4) })
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(5) });
        assert_eq!(plan.crashed_by(SimTime::from_secs(3)), vec![2]);
        assert_eq!(plan.crashed_by(SimTime::from_secs(4)), vec![0, 2], "sorted by site id");
        assert_eq!(plan.crashed_by(SimTime::from_secs(99)), vec![0, 2], "site 2 listed once");
    }

    #[test]
    fn partition_validation_accepts_disjoint_covering_split() {
        let plan = FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert!(plan.has_partition());
        assert_eq!(plan.validate(3), Ok(()));
        // Partial splits are allowed: unlisted sites are isolated.
        let partial = FaultPlan::partition(
            vec![vec![0], vec![1]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(partial.validate(3), Ok(()));
    }

    #[test]
    fn partition_validation_rejects_malformed_groups() {
        let overlap = FaultPlan::partition(
            vec![vec![0, 1], vec![1, 2]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(overlap.validate(3), Err(PlanError::PartitionOverlap { site: 1 }));
        let empty = FaultPlan::partition(
            vec![vec![0, 1], vec![]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(empty.validate(3), Err(PlanError::PartitionEmptyGroup { group: 1 }));
        let lonely =
            FaultPlan::partition(vec![vec![0, 1, 2]], SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(lonely.validate(3), Err(PlanError::PartitionTooFewGroups { groups: 1 }));
        let unknown = FaultPlan::partition(
            vec![vec![0], vec![7]],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(unknown.validate(3), Err(PlanError::UnknownSite { what: "partition", site: 7 }));
        let unhealed = FaultPlan::partition(
            vec![vec![0], vec![1]],
            SimTime::from_secs(2),
            SimTime::from_secs(2),
        );
        assert!(matches!(unhealed.validate(3), Err(PlanError::PartitionHealNotAfterSplit { .. })));
    }

    #[test]
    fn duplicate_and_burst_validation() {
        assert_eq!(FaultPlan::duplicate_delivery(0.1, 2).validate(3), Ok(()));
        assert_eq!(FaultPlan::duplicate_delivery(0.1, 0).validate(3), Err(PlanError::ZeroCopies));
        assert!(matches!(
            FaultPlan::duplicate_delivery(1.5, 2).validate(3),
            Err(PlanError::BadProbability { .. })
        ));
        let burst = FaultPlan::correlated_burst(vec![0, 1, 2], Duration::from_millis(10), 0.2);
        assert_eq!(burst.validate(3), Ok(()));
        assert_eq!(
            FaultPlan::correlated_burst(vec![], Duration::from_millis(10), 0.2).validate(3),
            Err(PlanError::NoBurstSites)
        );
        assert_eq!(
            FaultPlan::correlated_burst(vec![1, 1], Duration::from_millis(10), 0.2).validate(3),
            Err(PlanError::DuplicateBurstSite { site: 1 })
        );
        assert_eq!(
            FaultPlan::correlated_burst(vec![0], Duration::ZERO, 0.2).validate(3),
            Err(PlanError::NotPositive { what: "burst window" })
        );
        assert_eq!(
            FaultPlan::correlated_burst(vec![0, 9], Duration::from_millis(1), 0.2).validate(3),
            Err(PlanError::UnknownSite { what: "correlated burst", site: 9 })
        );
    }

    #[test]
    fn classic_specs_validate_too() {
        assert_eq!(FaultPlan::random_loss(0.05).validate(3), Ok(()));
        assert!(matches!(
            FaultPlan::random_loss(1.2).validate(3),
            Err(PlanError::BadProbability { .. })
        ));
        assert_eq!(FaultPlan::bursty_loss(0.05, 5).validate(3), Ok(()));
        assert!(
            matches!(
                FaultPlan::bursty_loss(0.0, 5).validate(3),
                Err(PlanError::BadProbability { .. })
            ),
            "fraction 0 would panic in BurstyLoss::new"
        );
        assert!(
            matches!(
                FaultPlan::bursty_loss(1.0, 5).validate(3),
                Err(PlanError::BadProbability { .. })
            ),
            "fraction 1 would panic in BurstyLoss::new"
        );
        assert_eq!(
            FaultPlan::bursty_loss(0.05, 0).validate(3),
            Err(PlanError::NotPositive { what: "mean burst length" })
        );
        let far_loss =
            FaultPlan::none().with(FaultSpec::RandomLoss { target: Target::Site(9), p: 0.1 });
        assert_eq!(
            far_loss.validate(3),
            Err(PlanError::UnknownSite { what: "random loss target", site: 9 })
        );
        let far_burst = FaultPlan::none().with(FaultSpec::BurstyLoss {
            target: Target::Site(9),
            fraction: 0.1,
            mean_burst: 5,
        });
        assert_eq!(
            far_burst.validate(3),
            Err(PlanError::UnknownSite { what: "bursty loss target", site: 9 })
        );
        assert_eq!(
            FaultPlan::crash(5, SimTime::from_secs(1)).validate(3),
            Err(PlanError::UnknownSite { what: "crash", site: 5 })
        );
        assert_eq!(FaultPlan::clock_drift(2, 1.05).validate(3), Ok(()));
        assert_eq!(
            FaultPlan::clock_drift(4, 1.05).validate(3),
            Err(PlanError::UnknownSite { what: "drift/latency target", site: 4 })
        );
    }

    #[test]
    fn restart_requires_a_prior_crash_or_halt() {
        // Well-formed: crash then restart.
        let ok = FaultPlan::crash_restart(1, SimTime::from_secs(5), SimTime::from_secs(20));
        assert_eq!(ok.validate(3), Ok(()));
        assert!(ok.has_restart());
        assert!(!FaultPlan::crash(1, SimTime::from_secs(5)).has_restart());
        // No crash or halt anywhere: nothing to recover.
        let orphan =
            FaultPlan::none().with(FaultSpec::Restart { site: 1, at: SimTime::from_secs(20) });
        assert_eq!(orphan.validate(3), Err(PlanError::RestartWithoutCrash { site: 1 }));
        // Crash of a *different* site does not license the restart.
        let wrong_site = FaultPlan::crash(0, SimTime::from_secs(5))
            .with(FaultSpec::Restart { site: 1, at: SimTime::from_secs(20) });
        assert_eq!(wrong_site.validate(3), Err(PlanError::RestartWithoutCrash { site: 1 }));
        // Restart at or before the crash instant: the site is not down yet.
        for restart_at in [SimTime::from_secs(5), SimTime::from_secs(3)] {
            let early = FaultPlan::crash_restart(1, SimTime::from_secs(5), restart_at);
            assert_eq!(
                early.validate(3),
                Err(PlanError::RestartNotAfterCrash { site: 1, at: restart_at }),
                "restart at {restart_at}"
            );
        }
        // Restart of an out-of-range site is caught like any other target.
        let far = FaultPlan::crash_restart(7, SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(far.validate(3), Err(PlanError::UnknownSite { what: "crash", site: 7 }));
    }

    #[test]
    fn restart_accepts_partition_halted_sites() {
        // Site 2 lands in the minority segment of a majority-keeping split:
        // it halts, so a later restart has something to recover.
        let halted = FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        )
        .with(FaultSpec::Restart { site: 2, at: SimTime::from_secs(12) });
        assert_eq!(halted.validate(3), Ok(()));
        // An unlisted site is isolated — also a halt source.
        let isolated = FaultPlan::partition(
            vec![vec![0, 1, 2], vec![3]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        )
        .with(FaultSpec::Restart { site: 4, at: SimTime::from_secs(12) });
        assert_eq!(isolated.validate(5), Ok(()));
        // A member of the *majority* segment never halts: restarting it is
        // rejected.
        let survivor = FaultPlan::partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        )
        .with(FaultSpec::Restart { site: 0, at: SimTime::from_secs(12) });
        assert_eq!(survivor.validate(3), Err(PlanError::RestartWithoutCrash { site: 0 }));
        // A split with no majority halts everyone, but there is no primary
        // component left to rejoin — rejected.
        let outage = FaultPlan::partition(
            vec![vec![0, 1], vec![2, 3]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        )
        .with(FaultSpec::Restart { site: 2, at: SimTime::from_secs(12) });
        assert_eq!(outage.validate(4), Err(PlanError::RestartWithoutCrash { site: 2 }));
    }

    #[test]
    fn crashed_by_and_down_at_honour_restarts() {
        let plan = FaultPlan::crash_restart(1, SimTime::from_secs(5), SimTime::from_secs(20))
            .with(FaultSpec::Crash { site: 1, at: SimTime::from_secs(30) });
        assert!(!plan.down_at(1, SimTime::from_secs(4)));
        assert!(plan.down_at(1, SimTime::from_secs(5)), "crash boundary inclusive");
        assert_eq!(plan.crashed_by(SimTime::from_secs(10)), vec![1]);
        assert!(!plan.down_at(1, SimTime::from_secs(20)), "restart boundary inclusive");
        assert!(plan.crashed_by(SimTime::from_secs(25)).is_empty());
        // The second crash downs the site again, for good this time.
        assert!(plan.down_at(1, SimTime::from_secs(30)));
        assert_eq!(plan.crashed_by(SimTime::from_secs(99)), vec![1]);
        // Other sites are unaffected.
        assert!(!plan.down_at(0, SimTime::from_secs(10)));
    }

    #[test]
    fn flapping_partition_expands_to_alternating_phases() {
        let plan = FaultPlan::flapping_partition(
            vec![vec![0, 1], vec![2]],
            SimTime::from_secs(10),
            Duration::from_secs(2),
            3,
        );
        assert_eq!(plan.specs.len(), 3);
        assert!(plan.has_partition());
        assert_eq!(plan.validate(3), Ok(()));
        let phases: Vec<(u64, u64)> = plan
            .specs
            .iter()
            .map(|s| match s {
                FaultSpec::Partition { at, heal_at, .. } => (at.as_nanos(), heal_at.as_nanos()),
                other => panic!("unexpected spec {other:?}"),
            })
            .collect();
        let sec = 1_000_000_000;
        assert_eq!(phases, vec![(10 * sec, 12 * sec), (14 * sec, 16 * sec), (18 * sec, 20 * sec)]);
        // Zero flaps is the empty plan.
        assert!(FaultPlan::flapping_partition(
            vec![vec![0], vec![1]],
            SimTime::ZERO,
            Duration::from_secs(1),
            0
        )
        .is_empty());
    }

    #[test]
    fn kill_and_replace_rolls_over_every_site() {
        let plan = FaultPlan::kill_and_replace(
            3,
            SimTime::from_secs(10),
            Duration::from_secs(30),
            Duration::from_secs(5),
        );
        assert_eq!(plan.specs.len(), 6);
        assert_eq!(plan.validate(3), Ok(()));
        assert!(plan.has_restart());
        for s in 0..3u16 {
            let crash_at = SimTime::from_secs(10 + 30 * s as u64);
            let back_at = SimTime::from_secs(15 + 30 * s as u64);
            assert!(plan.specs.contains(&FaultSpec::Crash { site: s, at: crash_at }), "site {s}");
            assert!(plan.specs.contains(&FaultSpec::Restart { site: s, at: back_at }), "site {s}");
            assert!(plan.down_at(s, crash_at));
            assert!(!plan.down_at(s, back_at));
        }
        // At most one site is down at every crash instant (stagger > downtime).
        for t in [10u64, 40, 70] {
            assert_eq!(plan.crashed_by(SimTime::from_secs(t)).len(), 1);
        }
    }

    #[test]
    fn coverage_accepts_crashes_healed_by_restarts() {
        // Both replicas of span 1 crash, but never simultaneously: site 0
        // is restarted before site 2 goes down.
        let plan = FaultPlan::crash_restart(0, SimTime::from_secs(1), SimTime::from_secs(5))
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(10) });
        let replicas = vec![vec![0, 1], vec![0, 2]];
        assert_eq!(plan.validate_coverage_strict(3, &replicas), Ok(()));
        // Restarted too late: both are down together at t=10, so the strict
        // rule rejects — but site 1 survives to adopt the span, so the
        // relaxed (re-placement) rule accepts.
        let late = FaultPlan::crash_restart(0, SimTime::from_secs(1), SimTime::from_secs(20))
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(10) });
        assert_eq!(
            late.validate_coverage_strict(3, &replicas),
            Err(PlanError::CrashUncoveredSpan { span: 1 })
        );
        assert_eq!(late.validate_coverage(3, &replicas), Ok(()));
        // The rolling kill-and-replace plan keeps every span covered.
        let rolling = FaultPlan::kill_and_replace(
            3,
            SimTime::from_secs(10),
            Duration::from_secs(30),
            Duration::from_secs(5),
        );
        assert_eq!(rolling.validate_coverage_strict(3, &replicas), Ok(()));
    }

    #[test]
    fn relaxed_coverage_rejects_only_total_outages() {
        let replicas = vec![vec![0, 1], vec![0, 2]];
        // Every site down at t=3: nobody left to re-home anything.
        let outage = FaultPlan::crash(0, SimTime::from_secs(1))
            .with(FaultSpec::Crash { site: 1, at: SimTime::from_secs(2) })
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(3) });
        assert_eq!(
            outage.validate_coverage(3, &replicas),
            Err(PlanError::CrashUncoveredSpan { span: 0 })
        );
        // A restart breaking the simultaneity makes it legal again.
        let healed = outage.clone().with(FaultSpec::Restart { site: 0, at: SimTime::from_secs(2) });
        assert_eq!(healed.validate_coverage(3, &replicas), Ok(()));
        // Stranding partitions are always legal relaxed: the primary
        // component adopts the span.
        let strand = FaultPlan::partition(
            vec![vec![0, 1, 2], vec![3, 4]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        );
        let minority_only = vec![vec![0, 1], vec![3, 4]];
        assert_eq!(strand.validate_coverage(5, &minority_only), Ok(()));
        // An empty placement never strands even under total outage.
        assert_eq!(outage.validate_coverage(3, &[]), Ok(()));
    }

    #[test]
    fn flapping_crash_expands_to_alternating_phases() {
        let plan = FaultPlan::flapping_crash(1, SimTime::from_secs(10), Duration::from_secs(5), 3);
        assert_eq!(plan.specs.len(), 6);
        assert!(plan.has_restart());
        assert_eq!(plan.validate(3), Ok(()));
        // Down during [10,15), [20,25), [30,35); up in between and after.
        for (t, down) in [(9, false), (12, true), (17, false), (22, true), (27, false), (40, false)]
        {
            assert_eq!(plan.down_at(1, SimTime::from_secs(t)), down, "t={t}");
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PlanError::PartitionOverlap { site: 3 };
        assert!(e.to_string().contains("site 3"));
        let e = PlanError::BadProbability { what: "duplicate delivery", p: 2.0 };
        assert!(e.to_string().contains("duplicate delivery"));
        let e = PlanError::PartitionUncoveredSpan { span: 7 };
        assert!(e.to_string().contains("span 7"));
        let e = PlanError::CrashUncoveredSpan { span: 2 };
        assert!(e.to_string().contains("span 2"));
        let e = PlanError::RestartWithoutCrash { site: 4 };
        assert!(e.to_string().contains("site 4"));
        let e = PlanError::RestartNotAfterCrash { site: 1, at: SimTime::from_secs(3) };
        assert!(e.to_string().contains("site 1"));
    }

    #[test]
    fn coverage_accepts_placements_alive_in_the_primary_component() {
        // 5 sites, warehouses replicated on pairs; the majority group
        // {0,1,2} holds a replica of every span.
        let plan = FaultPlan::partition(
            vec![vec![0, 1, 2], vec![3, 4]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        );
        let replicas = vec![vec![0, 3], vec![1, 4], vec![2, 3]];
        assert_eq!(plan.validate_coverage_strict(5, &replicas), Ok(()));
    }

    #[test]
    fn coverage_rejects_partitions_stranding_a_span() {
        // Span 1 lives only on the minority side: under the strict rule its
        // clients would hang, so the plan is rejected.
        let plan = FaultPlan::partition(
            vec![vec![0, 1, 2], vec![3, 4]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        );
        let replicas = vec![vec![0, 1], vec![3, 4]];
        assert_eq!(
            plan.validate_coverage_strict(5, &replicas),
            Err(PlanError::PartitionUncoveredSpan { span: 1 })
        );
        // No majority group: total outage, legitimate, not rejected here.
        let halt = FaultPlan::partition(
            vec![vec![0, 1], vec![2, 3]],
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        );
        assert_eq!(halt.validate_coverage_strict(5, &replicas), Ok(()));
    }

    #[test]
    fn coverage_rejects_crashing_every_replica_of_a_span() {
        let plan = FaultPlan::crash(0, SimTime::from_secs(1))
            .with(FaultSpec::Crash { site: 2, at: SimTime::from_secs(2) });
        let replicas = vec![vec![0, 1], vec![0, 2]];
        assert_eq!(
            plan.validate_coverage_strict(3, &replicas),
            Err(PlanError::CrashUncoveredSpan { span: 1 })
        );
        // The relaxed rule re-homes span 1 onto the surviving site 1.
        assert_eq!(plan.validate_coverage(3, &replicas), Ok(()));
        // One surviving replica is enough even for strict.
        let single = FaultPlan::crash(0, SimTime::from_secs(1));
        assert_eq!(single.validate_coverage_strict(3, &replicas), Ok(()));
        // Full replication (or an empty placement) is never stranded.
        assert_eq!(plan.validate_coverage_strict(3, &[]), Ok(()));
    }
}

//! Machine-readable certification-bench results: `BENCH_cert.json`.
//!
//! The `ablation_cert_sharding` sweep writes one JSON document per run so
//! the certification perf trajectory — throughput and the total vs
//! critical-path work split per backend and client count — is tracked as an
//! artifact across PRs instead of living only in terminal output. The
//! workspace is offline (no serde), so this module hand-writes the small,
//! stable schema and ships a minimal validating parser that CI and the unit
//! tests use to guarantee the artifact stays well-formed JSON.
//!
//! Schema (one object):
//!
//! ```json
//! {
//!   "group": "ablation_cert_sharding",
//!   "rows": [
//!     {
//!       "backend": "sharded", "shards": 8, "clients": 10000,
//!       "commit_path": "pipelined", "sites": 3, "replication_factor": 3,
//!       "tpm": 35966.0,
//!       "mean_latency_ms": 61.8, "abort_pct": 2.1,
//!       "certifications": 900, "comparisons": 0, "probes": 181150,
//!       "critical_probes": 60231, "mean_shards_touched": 3.1,
//!       "parallel_speedup": 3.0, "shard_imbalance": 1.03,
//!       "total_work_ns": 34303500.0, "critical_path_ns": 23420700.0,
//!       "queue_ns": 120000, "service_ns": 830000, "merge_ns": 9000,
//!       "stall_ns": 4000, "spec_hits": 870, "spec_revalidated": 25,
//!       "spec_rollbacks": 2, "spec_misses": 3,
//!       "span_fraction": 1.0, "vote_rounds": 0, "cross_span_txns": 0,
//!       "votes_sent": 0, "votes_received": 0, "vote_piggyback_rate": 0,
//!       "vote_resends": 0, "mean_vote_wait_ms": 0,
//!       "config_hash": "f2a90c4d13b7e6a1"
//!     }
//!   ]
//! }
//! ```
//!
//! Rows are keyed by
//! `(backend, shards, clients, commit_path, sites, replication_factor)` —
//! schema v3 added the last two so the partial-replication sweep can put
//! the same backend at several sites × replication-factor points, and
//! schema v4 added the decentralized-vote wire ledger (`votes_sent`,
//! `votes_received`, `vote_piggyback_rate`, `vote_resends`,
//! `mean_vote_wait_ms` — all zero under full replication, where no wire
//! votes flow), and schema v5 added the re-placement ledger
//! (`replacements`, `rehomed_spans`, `parked_ns` — nonzero only when churn
//! stranded a span and the survivors re-homed it). The
//! `config_hash` fingerprints everything else a row's numbers depend on
//! (schema version, sites, replication factor, CPUs per site, target
//! transactions, history window, seed):
//! [`merge_rows`]
//! preserves rows a partial sweep didn't re-run, but refuses to mix rows
//! whose hashes disagree for the same key — a silent half-updated artifact
//! would be worse than no artifact. The parser reads schema v2 through v4
//! documents too (the v3 fields default: `sites`/`replication_factor` 0,
//! `span_fraction` 1.0, vote counters 0; the v4 wire-vote fields and the
//! v5 re-placement fields default to 0), so the CI gate keeps passing on
//! artifacts written before the bump; any old-schema row a sweep re-runs
//! is refused by the hash check and forces a clean re-sweep.

use dbsm_core::{CertCostModel, ExperimentConfig, RunMetrics};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Bumped whenever a schema or pricing change makes old rows incomparable
/// with fresh ones; feeds [`config_hash`], so a bump forces a full re-sweep
/// instead of a silent mixed-schema merge.
pub const SCHEMA_VERSION: u32 = 5;

/// One row of the certification sweep: a backend at a client count, with
/// the throughput and the work-ledger split the sweep exists to track.
#[derive(Debug, Clone, PartialEq)]
pub struct CertBenchRow {
    /// Backend name (`linear`, `indexed`, `sharded`).
    pub backend: String,
    /// Keyed shard count (1 for the unsharded backends).
    pub shards: usize,
    /// Emulated clients.
    pub clients: usize,
    /// Commit path (`sync` or `pipelined`).
    pub commit_path: String,
    /// Replica sites in the run (schema v3; 0 when read from a v2 row).
    pub sites: usize,
    /// Replicas per warehouse: equal to `sites` under full replication,
    /// lower under a partial placement (schema v3; 0 from a v2 row).
    pub replication_factor: usize,
    /// Committed transactions per minute.
    pub tpm: f64,
    /// Mean end-to-end latency of committed transactions, ms.
    pub mean_latency_ms: f64,
    /// Abort rate, percent.
    pub abort_pct: f64,
    /// Certifications performed.
    pub certifications: u64,
    /// Linear-scan merge comparisons.
    pub comparisons: u64,
    /// Index probes, all shards.
    pub probes: u64,
    /// Critical-path probes (most-loaded shard per request).
    pub critical_probes: u64,
    /// Mean shards touched per certification.
    pub mean_shards_touched: f64,
    /// Total probes / critical-path probes.
    pub parallel_speedup: f64,
    /// Mean fan-out / speedup (1.0 = perfectly balanced shards).
    pub shard_imbalance: f64,
    /// Serial certification cost of the run, nanoseconds.
    pub total_work_ns: f64,
    /// Critical-path certification cost of the run, nanoseconds.
    pub critical_path_ns: f64,
    /// Nanoseconds speculative probe work queued on shard servers.
    pub queue_ns: u64,
    /// Nanoseconds of critical-server probe service (pipelined runs).
    pub service_ns: u64,
    /// Nanoseconds merging per-shard verdicts (pipelined runs).
    pub merge_ns: u64,
    /// Data-dependent certification nanoseconds stalling the delivery loop.
    pub stall_ns: u64,
    /// Confirmations resolved with zero delta work.
    pub spec_hits: u64,
    /// Overtaken speculations upheld by the delta re-probe.
    pub spec_revalidated: u64,
    /// Speculative passes overturned into aborts.
    pub spec_rollbacks: u64,
    /// Confirmations that found no speculation.
    pub spec_misses: u64,
    /// Fraction of examined read/write-set entries local to the certifying
    /// site's span — 1.0 under full replication (schema v3).
    pub span_fraction: f64,
    /// Partial-replication vote rounds performed (schema v3).
    pub vote_rounds: u64,
    /// Update transactions that crossed spans and voted (schema v3).
    pub cross_span_txns: u64,
    /// Wire-level certification votes multicast, all sites (schema v4).
    pub votes_sent: u64,
    /// Wire-level votes received, all sites (schema v4).
    pub votes_received: u64,
    /// Fraction of sent votes that rode outgoing data frames instead of
    /// paying their own packet (schema v4).
    pub vote_piggyback_rate: f64,
    /// Vote retransmissions after loss (schema v4).
    pub vote_resends: u64,
    /// Mean origin-side wait from delivery to quorum decision, ms
    /// (schema v4).
    pub mean_vote_wait_ms: f64,
    /// View changes that stranded spans and triggered re-placement
    /// (schema v5).
    pub replacements: u64,
    /// Spans re-homed onto surviving adopters (schema v5).
    pub rehomed_spans: u64,
    /// Total nanoseconds clients of stranded spans spent parked
    /// (schema v5).
    pub parked_ns: u64,
    /// Hex fingerprint of the row's configuration (see [`config_hash`]).
    pub config_hash: String,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fingerprints everything a row's numbers depend on besides its key:
/// schema version, sites, replication factor, CPUs per site, target
/// transactions, certification history window and seed (SplitMix64 fold).
/// Two rows with the same key but different hashes came from incomparable
/// sweeps and must not be merged into one artifact.
#[allow(clippy::too_many_arguments)]
pub fn config_hash(
    backend: &str,
    shards: usize,
    clients: usize,
    commit_path: &str,
    sites: usize,
    replication_factor: usize,
    cpus_per_site: usize,
    target_txns: u64,
    history_window: u64,
    seed: u64,
) -> String {
    let mut h = SCHEMA_VERSION as u64;
    for byte in backend.bytes().chain([0u8]).chain(commit_path.bytes()) {
        h = splitmix64(h ^ byte as u64);
    }
    let nums = [
        shards as u64,
        clients as u64,
        sites as u64,
        replication_factor as u64,
        cpus_per_site as u64,
        target_txns,
        history_window,
        seed,
    ];
    for v in nums {
        h = splitmix64(h ^ v);
    }
    format!("{h:016x}")
}

impl CertBenchRow {
    /// Builds a row from one experiment's metrics, pricing the work ledger
    /// with the default cost model (the one the simulation charged) and
    /// fingerprinting the configuration that produced it.
    pub fn from_metrics(
        backend: &str,
        shards: usize,
        cfg: &ExperimentConfig,
        m: &RunMetrics,
    ) -> Self {
        let costs = CertCostModel::default();
        let commit_path = cfg.commit_path.name().to_string();
        let replication_factor =
            cfg.placement.map_or(cfg.sites, |p| p.effective_factor().min(cfg.sites));
        let config_hash = config_hash(
            backend,
            shards,
            cfg.clients,
            &commit_path,
            cfg.sites,
            replication_factor,
            cfg.cpus_per_site,
            cfg.target_txns,
            cfg.history_window,
            cfg.seed,
        );
        CertBenchRow {
            backend: backend.to_string(),
            shards,
            clients: cfg.clients,
            commit_path,
            sites: cfg.sites,
            replication_factor,
            tpm: m.tpm(),
            mean_latency_ms: m.mean_latency_ms(),
            abort_pct: m.abort_rate(),
            certifications: m.cert_work.certifications,
            comparisons: m.cert_work.comparisons,
            probes: m.cert_work.probes,
            critical_probes: m.cert_work.critical_probes,
            mean_shards_touched: m.cert_work.mean_shards_touched(),
            parallel_speedup: m.cert_work.parallel_speedup(),
            shard_imbalance: m.cert_work.shard_imbalance(),
            total_work_ns: costs.total_work_ns(&m.cert_work),
            critical_path_ns: costs.critical_path_ns(&m.cert_work),
            queue_ns: m.cert_work.queue_ns,
            service_ns: m.cert_work.service_ns,
            merge_ns: m.cert_work.merge_ns,
            stall_ns: m.cert_work.stall_ns,
            spec_hits: m.cert_work.spec_hits,
            spec_revalidated: m.cert_work.spec_revalidated,
            spec_rollbacks: m.cert_work.spec_rollbacks,
            spec_misses: m.cert_work.spec_misses,
            span_fraction: m.cert_work.span_fraction(),
            vote_rounds: m.cert_work.vote_rounds,
            cross_span_txns: m.cert_work.cross_span_txns,
            votes_sent: m.vote_wire.sent,
            votes_received: m.vote_wire.received,
            vote_piggyback_rate: m.vote_wire.piggyback_rate(),
            vote_resends: m.vote_wire.resends,
            mean_vote_wait_ms: m.vote_wire.mean_wait_ms(),
            replacements: m.replacement_work.replacements,
            rehomed_spans: m.replacement_work.rehomed_spans,
            parked_ns: m.replacement_work.parked_ns,
            config_hash,
        }
    }

    /// The merge key: one artifact row exists per backend × shard count ×
    /// client count × commit path × sites × replication factor.
    pub fn key(&self) -> (String, usize, usize, String, usize, usize) {
        (
            self.backend.clone(),
            self.shards,
            self.clients,
            self.commit_path.clone(),
            self.sites,
            self.replication_factor,
        )
    }
}

/// A JSON number from an `f64`: finite values print with enough precision
/// to round-trip the metrics; non-finite values (which JSON cannot carry)
/// degrade to 0 rather than corrupting the document.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// A JSON string literal with the escapes the schema can produce (backend
/// names are ASCII identifiers, but stay safe anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the sweep as the `BENCH_cert.json` document.
pub fn rows_to_json(group: &str, rows: &[CertBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"group\": {},", json_str(group));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"backend\": {}, \"shards\": {}, \"clients\": {}, \"commit_path\": {}, \
             \"sites\": {}, \"replication_factor\": {}, \
             \"tpm\": {}, \"mean_latency_ms\": {}, \"abort_pct\": {}, \"certifications\": {}, \
             \"comparisons\": {}, \"probes\": {}, \"critical_probes\": {}, \
             \"mean_shards_touched\": {}, \"parallel_speedup\": {}, \"shard_imbalance\": {}, \
             \"total_work_ns\": {}, \"critical_path_ns\": {}, \"queue_ns\": {}, \
             \"service_ns\": {}, \"merge_ns\": {}, \"stall_ns\": {}, \"spec_hits\": {}, \
             \"spec_revalidated\": {}, \"spec_rollbacks\": {}, \"spec_misses\": {}, \
             \"span_fraction\": {}, \"vote_rounds\": {}, \"cross_span_txns\": {}, \
             \"votes_sent\": {}, \"votes_received\": {}, \"vote_piggyback_rate\": {}, \
             \"vote_resends\": {}, \"mean_vote_wait_ms\": {}, \
             \"replacements\": {}, \"rehomed_spans\": {}, \"parked_ns\": {}, \
             \"config_hash\": {}}}",
            json_str(&r.backend),
            r.shards,
            r.clients,
            json_str(&r.commit_path),
            r.sites,
            r.replication_factor,
            json_num(r.tpm),
            json_num(r.mean_latency_ms),
            json_num(r.abort_pct),
            r.certifications,
            r.comparisons,
            r.probes,
            r.critical_probes,
            json_num(r.mean_shards_touched),
            json_num(r.parallel_speedup),
            json_num(r.shard_imbalance),
            json_num(r.total_work_ns),
            json_num(r.critical_path_ns),
            r.queue_ns,
            r.service_ns,
            r.merge_ns,
            r.stall_ns,
            r.spec_hits,
            r.spec_revalidated,
            r.spec_rollbacks,
            r.spec_misses,
            json_num(r.span_fraction),
            r.vote_rounds,
            r.cross_span_txns,
            r.votes_sent,
            r.votes_received,
            json_num(r.vote_piggyback_rate),
            r.vote_resends,
            json_num(r.mean_vote_wait_ms),
            r.replacements,
            r.rehomed_spans,
            r.parked_ns,
            json_str(&r.config_hash),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where the artifact lands: `$DBSM_BENCH_CERT_JSON` if set, otherwise
/// `BENCH_cert.json` at the workspace root (benches run with the package
/// directory as cwd, so a relative path would bury the file).
pub fn default_output_path() -> PathBuf {
    if let Ok(p) = std::env::var("DBSM_BENCH_CERT_JSON") {
        return PathBuf::from(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_cert.json")
}

/// Validates and writes the document, returning the path written.
///
/// # Errors
///
/// Returns any filesystem error, or `InvalidData` if the rendered document
/// fails the self-check parse — a formatting bug must fail the bench run
/// loudly, not poison the artifact.
pub fn write_rows(group: &str, rows: &[CertBenchRow]) -> std::io::Result<PathBuf> {
    let doc = rows_to_json(group, rows);
    validate_json(&doc).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let path = default_output_path();
    std::fs::write(&path, doc)?;
    Ok(path)
}

// ---- minimal JSON parser ----------------------------------------------
//
// Full RFC 8259 value grammar without a JSON dependency (the workspace is
// offline): enough for CI and the tests to assert "this artifact parses",
// and for the partial-sweep merge to read rows back out of the committed
// document.

/// A parsed JSON value — just enough structure to read the artifact back.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Checks that `s` is one well-formed JSON value (with surrounding
/// whitespace). Returns a byte offset + message on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    parse_json(s).map(|_| ())
}

fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos).map(Json::Str),
        Some(b't') => literal(b, pos, b"true").map(|_| Json::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|_| Json::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|_| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    let mut entries = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        let val = value(b, pos)?;
        entries.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut cp = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            let Some(d) = b.get(*pos).and_then(|c| (*c as char).to_digit(16))
                            else {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            };
                            cp = cp * 16 + d;
                        }
                        // Surrogates only arise from escaped non-BMP text,
                        // which the writer never emits; degrade, don't fail.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {}", *pos)),
            _ => {
                // Copy the raw UTF-8 byte run for this char.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
                );
            }
        }
    }
    Err("unterminated string".to_string())
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> Result<(), String> {
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("expected a digit at byte {}", *pos));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        Ok(())
    };
    // Integer part: a lone 0 or a nonzero-led run.
    if b.get(*pos) == Some(&b'0') {
        *pos += 1;
    } else {
        digits(b, pos)?;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(b, pos)?;
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        digits(b, pos)?;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number at byte {start}: {e}"))
}

// ---- typed document reading and partial-sweep merge -------------------

impl Json {
    fn field(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing required key \"{key}\"")),
            _ => Err(format!("expected an object looking up \"{key}\"")),
        }
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        match self.field(key)? {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("key \"{key}\" must be a string, got {other:?}")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Json::Num(n) => Ok(*n),
            other => Err(format!("key \"{key}\" must be a number, got {other:?}")),
        }
    }

    fn uint_field(&self, key: &str) -> Result<u64, String> {
        let n = self.num_field(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("key \"{key}\" must be a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }

    fn has_key(&self, key: &str) -> bool {
        matches!(self, Json::Obj(entries) if entries.iter().any(|(k, _)| k == key))
    }

    /// A key a later schema added: absent (older row) falls back to
    /// `default`, but a present key with the wrong type is still a hard
    /// error.
    fn uint_field_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.has_key(key) {
            self.uint_field(key)
        } else {
            Ok(default)
        }
    }

    /// Like [`Json::uint_field_or`] for float-valued late-schema keys.
    fn num_field_or(&self, key: &str, default: f64) -> Result<f64, String> {
        if self.has_key(key) {
            self.num_field(key)
        } else {
            Ok(default)
        }
    }
}

/// The parsed artifact: the sweep group label plus its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CertBenchDoc {
    /// Sweep group label, e.g. `ablation_cert_sharding`.
    pub group: String,
    /// All rows present in the document.
    pub rows: Vec<CertBenchRow>,
}

fn row_from_json(v: &Json) -> Result<CertBenchRow, String> {
    Ok(CertBenchRow {
        backend: v.str_field("backend")?,
        shards: v.uint_field("shards")? as usize,
        clients: v.uint_field("clients")? as usize,
        commit_path: v.str_field("commit_path")?,
        sites: v.uint_field_or("sites", 0)? as usize,
        replication_factor: v.uint_field_or("replication_factor", 0)? as usize,
        tpm: v.num_field("tpm")?,
        mean_latency_ms: v.num_field("mean_latency_ms")?,
        abort_pct: v.num_field("abort_pct")?,
        certifications: v.uint_field("certifications")?,
        comparisons: v.uint_field("comparisons")?,
        probes: v.uint_field("probes")?,
        critical_probes: v.uint_field("critical_probes")?,
        mean_shards_touched: v.num_field("mean_shards_touched")?,
        parallel_speedup: v.num_field("parallel_speedup")?,
        shard_imbalance: v.num_field("shard_imbalance")?,
        total_work_ns: v.num_field("total_work_ns")?,
        critical_path_ns: v.num_field("critical_path_ns")?,
        queue_ns: v.uint_field("queue_ns")?,
        service_ns: v.uint_field("service_ns")?,
        merge_ns: v.uint_field("merge_ns")?,
        stall_ns: v.uint_field("stall_ns")?,
        spec_hits: v.uint_field("spec_hits")?,
        spec_revalidated: v.uint_field("spec_revalidated")?,
        spec_rollbacks: v.uint_field("spec_rollbacks")?,
        spec_misses: v.uint_field("spec_misses")?,
        span_fraction: v.num_field_or("span_fraction", 1.0)?,
        vote_rounds: v.uint_field_or("vote_rounds", 0)?,
        cross_span_txns: v.uint_field_or("cross_span_txns", 0)?,
        votes_sent: v.uint_field_or("votes_sent", 0)?,
        votes_received: v.uint_field_or("votes_received", 0)?,
        vote_piggyback_rate: v.num_field_or("vote_piggyback_rate", 0.0)?,
        vote_resends: v.uint_field_or("vote_resends", 0)?,
        mean_vote_wait_ms: v.num_field_or("mean_vote_wait_ms", 0.0)?,
        replacements: v.uint_field_or("replacements", 0)?,
        rehomed_spans: v.uint_field_or("rehomed_spans", 0)?,
        parked_ns: v.uint_field_or("parked_ns", 0)?,
        config_hash: v.str_field("config_hash")?,
    })
}

/// Parses a `BENCH_cert.json` document and enforces the schema contract:
/// every row must carry every required key with the right type. This is
/// what the CI schema gate runs — a well-formed-but-wrong-shape artifact
/// fails here, not three PRs later when a consumer chokes on it.
pub fn parse_document(s: &str) -> Result<CertBenchDoc, String> {
    let root = parse_json(s)?;
    let group = root.str_field("group")?;
    let rows_json = match root.field("rows")? {
        Json::Arr(items) => items,
        other => Err(format!("key \"rows\" must be an array, got {other:?}"))?,
    };
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, item) in rows_json.iter().enumerate() {
        rows.push(row_from_json(item).map_err(|e| format!("row {i}: {e}"))?);
    }
    Ok(CertBenchDoc { group, rows })
}

/// Merges a partial sweep into an existing artifact. Rows the fresh sweep
/// re-ran replace their old versions; rows it didn't run are preserved.
///
/// # Errors
///
/// If an existing row and a fresh row share a key but disagree on
/// `config_hash`, the sweeps are incomparable (schema bump, different
/// seed/sites/target) and the merge refuses rather than emit a document
/// that silently mixes them. Re-run the full sweep instead.
pub fn merge_rows(
    existing: &[CertBenchRow],
    fresh: &[CertBenchRow],
) -> Result<Vec<CertBenchRow>, String> {
    for old in existing {
        if let Some(new) = fresh.iter().find(|r| r.key() == old.key()) {
            if new.config_hash != old.config_hash {
                let (backend, shards, clients, path, sites, rf) = old.key();
                return Err(format!(
                    "config hash mismatch for row ({backend}, shards={shards}, \
                     clients={clients}, {path}, sites={sites}, \
                     replication_factor={rf}): existing {} vs fresh {} — \
                     the artifact holds an incomparable sweep; re-run it in full",
                    old.config_hash, new.config_hash
                ));
            }
        }
    }
    let mut merged: Vec<CertBenchRow> = existing
        .iter()
        .filter(|old| !fresh.iter().any(|new| new.key() == old.key()))
        .cloned()
        .collect();
    merged.extend(fresh.iter().cloned());
    merged.sort_by_key(|r| {
        (
            r.clients,
            r.backend.clone(),
            r.shards,
            r.commit_path.clone(),
            r.sites,
            r.replication_factor,
        )
    });
    Ok(merged)
}

/// Merges `fresh` into the artifact on disk (if any) and writes the result.
/// An unreadable or unparsable existing artifact is replaced with a warning
/// — the bench must not be bricked by a corrupt file — but a config-hash
/// mismatch against a *valid* artifact is a hard error (see [`merge_rows`]).
pub fn merge_and_write(group: &str, fresh: &[CertBenchRow]) -> std::io::Result<PathBuf> {
    let path = default_output_path();
    let existing = match std::fs::read_to_string(&path) {
        Ok(text) => match parse_document(&text) {
            Ok(doc) => doc.rows,
            Err(e) => {
                eprintln!(
                    "warning: existing {} does not match the schema ({e}); starting fresh",
                    path.display()
                );
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    let merged = merge_rows(&existing, fresh)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    write_rows(group, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> CertBenchRow {
        CertBenchRow {
            backend: "sharded".to_string(),
            shards: 8,
            clients: 10000,
            commit_path: "pipelined".to_string(),
            sites: 3,
            replication_factor: 3,
            tpm: 35966.4,
            mean_latency_ms: 61.75,
            abort_pct: 2.13,
            certifications: 912,
            comparisons: 0,
            probes: 181150,
            critical_probes: 60231,
            mean_shards_touched: 3.08,
            parallel_speedup: 3.01,
            shard_imbalance: 1.02,
            total_work_ns: 3.43e7,
            critical_path_ns: 2.34e7,
            queue_ns: 120_000,
            service_ns: 830_000,
            merge_ns: 9_000,
            stall_ns: 4_000,
            spec_hits: 870,
            spec_revalidated: 25,
            spec_rollbacks: 2,
            spec_misses: 3,
            span_fraction: 1.0,
            vote_rounds: 0,
            cross_span_txns: 0,
            votes_sent: 140,
            votes_received: 270,
            vote_piggyback_rate: 0.62,
            vote_resends: 4,
            mean_vote_wait_ms: 1.8,
            replacements: 1,
            rehomed_spans: 2,
            parked_ns: 2_500_000,
            config_hash: config_hash("sharded", 8, 10000, "pipelined", 3, 3, 1, 600, 4096, 42),
        }
    }

    #[test]
    fn rendered_document_passes_the_validator() {
        let doc = rows_to_json("ablation_cert_sharding", &[sample_row(), sample_row()]);
        validate_json(&doc).expect("well-formed");
        // Every schema field appears.
        for key in [
            "group",
            "rows",
            "backend",
            "shards",
            "clients",
            "tpm",
            "mean_latency_ms",
            "abort_pct",
            "certifications",
            "comparisons",
            "probes",
            "critical_probes",
            "mean_shards_touched",
            "parallel_speedup",
            "shard_imbalance",
            "total_work_ns",
            "critical_path_ns",
            "commit_path",
            "queue_ns",
            "service_ns",
            "merge_ns",
            "stall_ns",
            "spec_hits",
            "spec_revalidated",
            "spec_rollbacks",
            "spec_misses",
            "sites",
            "replication_factor",
            "span_fraction",
            "vote_rounds",
            "cross_span_txns",
            "votes_sent",
            "votes_received",
            "vote_piggyback_rate",
            "vote_resends",
            "mean_vote_wait_ms",
            "replacements",
            "rehomed_spans",
            "parked_ns",
            "config_hash",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key}:\n{doc}");
        }
    }

    #[test]
    fn empty_sweep_is_still_valid_json() {
        let doc = rows_to_json("ablation_cert_sharding", &[]);
        validate_json(&doc).expect("well-formed");
        assert!(doc.contains("\"rows\": [\n  ]"));
    }

    #[test]
    fn non_finite_metrics_degrade_to_zero_not_invalid_json() {
        let mut row = sample_row();
        row.tpm = f64::NAN;
        row.parallel_speedup = f64::INFINITY;
        let doc = rows_to_json("g", &[row]);
        validate_json(&doc).expect("NaN/inf must not leak into the artifact");
        assert!(doc.contains("\"tpm\": 0,"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut row = sample_row();
        row.backend = "we\"ird\\name\n".to_string();
        let doc = rows_to_json("g", &[row]);
        validate_json(&doc).expect("escaped");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "0",
            r#"{"a": [1, 2.5, "x", {"b": null}], "c": false}"#,
            "  { \"k\" : \"v\\u00e9\" }  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "{'a': 1}",
            "{\"a\": 01}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{\"a\": nul}",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn row_from_metrics_prices_both_views() {
        use dbsm_core::{run_experiment, CertBackendKind};
        let cfg = ExperimentConfig::replicated(3, 20)
            .with_target(40)
            .with_cert_backend(CertBackendKind::Sharded { shards: 4 });
        let m = run_experiment(cfg.clone());
        let row = CertBenchRow::from_metrics("sharded", 4, &cfg, &m);
        assert!(row.probes > 0, "sharded run probes");
        assert!(row.critical_probes > 0 && row.critical_probes <= row.probes);
        assert!(row.critical_path_ns <= row.total_work_ns);
        assert!(row.parallel_speedup >= 1.0);
        assert_eq!(row.commit_path, "sync");
        assert_eq!(row.config_hash.len(), 16);
        let doc = rows_to_json("ablation_cert_sharding", &[row]);
        validate_json(&doc).expect("well-formed from live metrics");
    }

    #[test]
    fn document_round_trips_through_the_typed_parser() {
        let mut other = sample_row();
        other.clients = 20000;
        other.commit_path = "sync".to_string();
        let rows = vec![sample_row(), other];
        let doc = rows_to_json("ablation_cert_sharding", &rows);
        let parsed = parse_document(&doc).expect("typed parse");
        assert_eq!(parsed.group, "ablation_cert_sharding");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].key(), rows[0].key());
        assert_eq!(parsed.rows[0].config_hash, rows[0].config_hash);
        assert_eq!(parsed.rows[1].spec_hits, 870);
        // Float fields survive the writer's 3-decimal precision.
        assert!((parsed.rows[0].tpm - rows[0].tpm).abs() < 1e-3);
    }

    #[test]
    fn typed_parser_rejects_rows_missing_required_keys() {
        let doc = r#"{"group": "g", "rows": [{"backend": "linear", "shards": 1}]}"#;
        let err = parse_document(doc).unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
        // Wrong type is also an error, not a silent coercion.
        let doc = r#"{"group": "g", "rows": [{"backend": 7}]}"#;
        assert!(parse_document(doc).unwrap_err().contains("must be a string"));
        // Negative or fractional counters are rejected.
        let full = rows_to_json("g", &[sample_row()]).replace("\"shards\": 8", "\"shards\": 8.5");
        assert!(parse_document(&full).unwrap_err().contains("non-negative integer"));
    }

    #[test]
    fn merge_preserves_rows_a_partial_sweep_did_not_rerun() {
        let kept = sample_row();
        let mut rerun_old = sample_row();
        rerun_old.clients = 20000;
        rerun_old.config_hash =
            config_hash("sharded", 8, 20000, "pipelined", 3, 3, 1, 600, 4096, 42);
        rerun_old.tpm = 1.0;
        let mut rerun_new = rerun_old.clone();
        rerun_new.tpm = 99.0;
        let merged = merge_rows(&[kept.clone(), rerun_old], &[rerun_new.clone()]).expect("merge");
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&kept), "non-rerun row must survive");
        let updated = merged.iter().find(|r| r.clients == 20000).unwrap();
        assert_eq!(updated.tpm, 99.0, "re-run row must be replaced");
    }

    #[test]
    fn merge_rejects_config_hash_mismatch_for_the_same_key() {
        let old = sample_row();
        let mut fresh = sample_row();
        // Same (backend, shards, clients, commit_path) key, but the sweep
        // was run against a different seed → different fingerprint.
        fresh.config_hash = config_hash("sharded", 8, 10000, "pipelined", 3, 3, 1, 600, 4096, 43);
        let err = merge_rows(&[old], &[fresh]).unwrap_err();
        assert!(err.contains("config hash mismatch"), "{err}");
        assert!(err.contains("clients=10000"), "{err}");
        // The full v3 key is named so the offending row is findable.
        assert!(err.contains("sites=3"), "{err}");
        assert!(err.contains("replication_factor=3"), "{err}");
    }

    #[test]
    fn config_hash_separates_backend_and_commit_path_bytes() {
        // The 0-byte separator means ("ab", "c") and ("a", "bc") differ.
        let a = config_hash("ab", 1, 1, "c", 1, 1, 1, 1, 1, 1);
        let b = config_hash("a", 1, 1, "bc", 1, 1, 1, 1, 1, 1);
        assert_ne!(a, b);
        // And the hash is stable across calls.
        assert_eq!(a, config_hash("ab", 1, 1, "c", 1, 1, 1, 1, 1, 1));
        // The replication factor is part of the fingerprint.
        assert_ne!(a, config_hash("ab", 1, 1, "c", 1, 2, 1, 1, 1, 1));
    }

    #[test]
    fn typed_parser_accepts_schema_v2_rows_with_defaults() {
        // A schema-v2 row: none of the v3 keys (sites, replication_factor,
        // span_fraction, vote_rounds, cross_span_txns) nor the v4
        // wire-vote keys are present.
        let doc = r#"{"group": "g", "rows": [
            {"backend": "sharded", "shards": 8, "clients": 10000,
             "commit_path": "pipelined", "tpm": 35966.4,
             "mean_latency_ms": 61.75, "abort_pct": 2.13,
             "certifications": 912, "comparisons": 0, "probes": 181150,
             "critical_probes": 60231, "mean_shards_touched": 3.08,
             "parallel_speedup": 3.01, "shard_imbalance": 1.02,
             "total_work_ns": 34300000, "critical_path_ns": 23400000,
             "queue_ns": 120000, "service_ns": 830000, "merge_ns": 9000,
             "stall_ns": 4000, "spec_hits": 870, "spec_revalidated": 25,
             "spec_rollbacks": 2, "spec_misses": 3,
             "config_hash": "deadbeefdeadbeef"}
        ]}"#;
        let parsed = parse_document(doc).expect("v2 rows stay readable");
        let row = &parsed.rows[0];
        assert_eq!(row.sites, 0);
        assert_eq!(row.replication_factor, 0);
        assert_eq!(row.span_fraction, 1.0);
        assert_eq!(row.vote_rounds, 0);
        assert_eq!(row.cross_span_txns, 0);
        assert_eq!(row.votes_sent, 0);
        assert_eq!(row.votes_received, 0);
        assert_eq!(row.vote_piggyback_rate, 0.0);
        assert_eq!(row.vote_resends, 0);
        assert_eq!(row.mean_vote_wait_ms, 0.0);
        // A v3 key present with the wrong type is still a hard error.
        let bad = doc.replace("\"spec_misses\": 3,", "\"spec_misses\": 3, \"sites\": \"three\",");
        assert!(parse_document(&bad).unwrap_err().contains("must be a number"));
    }

    #[test]
    fn typed_parser_accepts_schema_v3_rows_with_defaults() {
        // A schema-v3 row carries the partial-replication fields but none
        // of the v4 wire-vote keys: those default to zero.
        let doc = r#"{"group": "g", "rows": [
            {"backend": "indexed", "shards": 1, "clients": 12000,
             "commit_path": "sync", "sites": 6, "replication_factor": 2,
             "tpm": 20000.0, "mean_latency_ms": 40.0, "abort_pct": 1.5,
             "certifications": 900, "comparisons": 0, "probes": 8000,
             "critical_probes": 8000, "mean_shards_touched": 0.0,
             "parallel_speedup": 1.0, "shard_imbalance": 1.0,
             "total_work_ns": 100000, "critical_path_ns": 100000,
             "queue_ns": 0, "service_ns": 0, "merge_ns": 0,
             "stall_ns": 5000, "spec_hits": 0, "spec_revalidated": 0,
             "spec_rollbacks": 0, "spec_misses": 0,
             "span_fraction": 0.4, "vote_rounds": 120, "cross_span_txns": 80,
             "config_hash": "deadbeefdeadbeef"}
        ]}"#;
        let parsed = parse_document(doc).expect("v3 rows stay readable");
        let row = &parsed.rows[0];
        assert_eq!((row.sites, row.replication_factor), (6, 2));
        assert_eq!(row.vote_rounds, 120);
        assert_eq!(row.votes_sent, 0);
        assert_eq!(row.votes_received, 0);
        assert_eq!(row.vote_piggyback_rate, 0.0);
        assert_eq!(row.vote_resends, 0);
        assert_eq!(row.mean_vote_wait_ms, 0.0);
        // A v4 key present with the wrong type is still a hard error.
        let bad =
            doc.replace("\"vote_rounds\": 120,", "\"vote_rounds\": 120, \"votes_sent\": \"many\",");
        assert!(parse_document(&bad).unwrap_err().contains("must be a number"));
    }

    #[test]
    fn typed_parser_accepts_schema_v4_rows_with_defaults() {
        // A schema-v4 row carries the wire-vote ledger but none of the v5
        // re-placement keys: those default to zero.
        let doc = r#"{"group": "g", "rows": [
            {"backend": "indexed", "shards": 1, "clients": 12000,
             "commit_path": "sync", "sites": 6, "replication_factor": 2,
             "tpm": 20000.0, "mean_latency_ms": 40.0, "abort_pct": 1.5,
             "certifications": 900, "comparisons": 0, "probes": 8000,
             "critical_probes": 8000, "mean_shards_touched": 0.0,
             "parallel_speedup": 1.0, "shard_imbalance": 1.0,
             "total_work_ns": 100000, "critical_path_ns": 100000,
             "queue_ns": 0, "service_ns": 0, "merge_ns": 0,
             "stall_ns": 5000, "spec_hits": 0, "spec_revalidated": 0,
             "spec_rollbacks": 0, "spec_misses": 0,
             "span_fraction": 0.4, "vote_rounds": 120, "cross_span_txns": 80,
             "votes_sent": 700, "votes_received": 3400,
             "vote_piggyback_rate": 0.55, "vote_resends": 12,
             "mean_vote_wait_ms": 0.8,
             "config_hash": "deadbeefdeadbeef"}
        ]}"#;
        let parsed = parse_document(doc).expect("v4 rows stay readable");
        let row = &parsed.rows[0];
        assert_eq!(row.votes_sent, 700);
        assert_eq!(row.replacements, 0);
        assert_eq!(row.rehomed_spans, 0);
        assert_eq!(row.parked_ns, 0);
        // A v5 key present with the wrong type is still a hard error.
        let bad =
            doc.replace("\"votes_sent\": 700,", "\"votes_sent\": 700, \"rehomed_spans\": \"two\",");
        assert!(parse_document(&bad).unwrap_err().contains("must be a number"));
    }
}

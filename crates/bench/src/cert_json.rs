//! Machine-readable certification-bench results: `BENCH_cert.json`.
//!
//! The `ablation_cert_sharding` sweep writes one JSON document per run so
//! the certification perf trajectory — throughput and the total vs
//! critical-path work split per backend and client count — is tracked as an
//! artifact across PRs instead of living only in terminal output. The
//! workspace is offline (no serde), so this module hand-writes the small,
//! stable schema and ships a minimal validating parser that CI and the unit
//! tests use to guarantee the artifact stays well-formed JSON.
//!
//! Schema (one object):
//!
//! ```json
//! {
//!   "group": "ablation_cert_sharding",
//!   "rows": [
//!     {
//!       "backend": "sharded", "shards": 8, "clients": 10000,
//!       "tpm": 35966.0, "mean_latency_ms": 61.8, "abort_pct": 2.1,
//!       "certifications": 900, "comparisons": 0, "probes": 181150,
//!       "critical_probes": 60231, "mean_shards_touched": 3.1,
//!       "parallel_speedup": 3.0, "shard_imbalance": 1.03,
//!       "total_work_ns": 34303500.0, "critical_path_ns": 23420700.0
//!     }
//!   ]
//! }
//! ```

use dbsm_core::{CertCostModel, RunMetrics};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One row of the certification sweep: a backend at a client count, with
/// the throughput and the work-ledger split the sweep exists to track.
#[derive(Debug, Clone, PartialEq)]
pub struct CertBenchRow {
    /// Backend name (`linear`, `indexed`, `sharded`).
    pub backend: String,
    /// Keyed shard count (1 for the unsharded backends).
    pub shards: usize,
    /// Emulated clients.
    pub clients: usize,
    /// Committed transactions per minute.
    pub tpm: f64,
    /// Mean end-to-end latency of committed transactions, ms.
    pub mean_latency_ms: f64,
    /// Abort rate, percent.
    pub abort_pct: f64,
    /// Certifications performed.
    pub certifications: u64,
    /// Linear-scan merge comparisons.
    pub comparisons: u64,
    /// Index probes, all shards.
    pub probes: u64,
    /// Critical-path probes (most-loaded shard per request).
    pub critical_probes: u64,
    /// Mean shards touched per certification.
    pub mean_shards_touched: f64,
    /// Total probes / critical-path probes.
    pub parallel_speedup: f64,
    /// Mean fan-out / speedup (1.0 = perfectly balanced shards).
    pub shard_imbalance: f64,
    /// Serial certification cost of the run, nanoseconds.
    pub total_work_ns: f64,
    /// Critical-path certification cost of the run, nanoseconds.
    pub critical_path_ns: f64,
}

impl CertBenchRow {
    /// Builds a row from one experiment's metrics, pricing the work ledger
    /// with the default cost model (the one the simulation charged).
    pub fn from_metrics(backend: &str, shards: usize, clients: usize, m: &RunMetrics) -> Self {
        let costs = CertCostModel::default();
        CertBenchRow {
            backend: backend.to_string(),
            shards,
            clients,
            tpm: m.tpm(),
            mean_latency_ms: m.mean_latency_ms(),
            abort_pct: m.abort_rate(),
            certifications: m.cert_work.certifications,
            comparisons: m.cert_work.comparisons,
            probes: m.cert_work.probes,
            critical_probes: m.cert_work.critical_probes,
            mean_shards_touched: m.cert_work.mean_shards_touched(),
            parallel_speedup: m.cert_work.parallel_speedup(),
            shard_imbalance: m.cert_work.shard_imbalance(),
            total_work_ns: costs.total_work_ns(&m.cert_work),
            critical_path_ns: costs.critical_path_ns(&m.cert_work),
        }
    }
}

/// A JSON number from an `f64`: finite values print with enough precision
/// to round-trip the metrics; non-finite values (which JSON cannot carry)
/// degrade to 0 rather than corrupting the document.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// A JSON string literal with the escapes the schema can produce (backend
/// names are ASCII identifiers, but stay safe anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the sweep as the `BENCH_cert.json` document.
pub fn rows_to_json(group: &str, rows: &[CertBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"group\": {},", json_str(group));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"backend\": {}, \"shards\": {}, \"clients\": {}, \"tpm\": {}, \
             \"mean_latency_ms\": {}, \"abort_pct\": {}, \"certifications\": {}, \
             \"comparisons\": {}, \"probes\": {}, \"critical_probes\": {}, \
             \"mean_shards_touched\": {}, \"parallel_speedup\": {}, \"shard_imbalance\": {}, \
             \"total_work_ns\": {}, \"critical_path_ns\": {}}}",
            json_str(&r.backend),
            r.shards,
            r.clients,
            json_num(r.tpm),
            json_num(r.mean_latency_ms),
            json_num(r.abort_pct),
            r.certifications,
            r.comparisons,
            r.probes,
            r.critical_probes,
            json_num(r.mean_shards_touched),
            json_num(r.parallel_speedup),
            json_num(r.shard_imbalance),
            json_num(r.total_work_ns),
            json_num(r.critical_path_ns),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where the artifact lands: `$DBSM_BENCH_CERT_JSON` if set, otherwise
/// `BENCH_cert.json` at the workspace root (benches run with the package
/// directory as cwd, so a relative path would bury the file).
pub fn default_output_path() -> PathBuf {
    if let Ok(p) = std::env::var("DBSM_BENCH_CERT_JSON") {
        return PathBuf::from(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_cert.json")
}

/// Validates and writes the document, returning the path written.
///
/// # Errors
///
/// Returns any filesystem error, or `InvalidData` if the rendered document
/// fails the self-check parse — a formatting bug must fail the bench run
/// loudly, not poison the artifact.
pub fn write_rows(group: &str, rows: &[CertBenchRow]) -> std::io::Result<PathBuf> {
    let doc = rows_to_json(group, rows);
    validate_json(&doc).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let path = default_output_path();
    std::fs::write(&path, doc)?;
    Ok(path)
}

// ---- minimal JSON validator -------------------------------------------
//
// Full RFC 8259 value grammar, no semantics: enough for CI and the tests to
// assert "this artifact parses" without a JSON dependency.

/// Checks that `s` is one well-formed JSON value (with surrounding
/// whitespace). Returns a byte offset + message on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> Result<(), String> {
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("expected a digit at byte {}", *pos));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        Ok(())
    };
    // Integer part: a lone 0 or a nonzero-led run.
    if b.get(*pos) == Some(&b'0') {
        *pos += 1;
    } else {
        digits(b, pos)?;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(b, pos)?;
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        digits(b, pos)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> CertBenchRow {
        CertBenchRow {
            backend: "sharded".to_string(),
            shards: 8,
            clients: 10000,
            tpm: 35966.4,
            mean_latency_ms: 61.75,
            abort_pct: 2.13,
            certifications: 912,
            comparisons: 0,
            probes: 181150,
            critical_probes: 60231,
            mean_shards_touched: 3.08,
            parallel_speedup: 3.01,
            shard_imbalance: 1.02,
            total_work_ns: 3.43e7,
            critical_path_ns: 2.34e7,
        }
    }

    #[test]
    fn rendered_document_passes_the_validator() {
        let doc = rows_to_json("ablation_cert_sharding", &[sample_row(), sample_row()]);
        validate_json(&doc).expect("well-formed");
        // Every schema field appears.
        for key in [
            "group",
            "rows",
            "backend",
            "shards",
            "clients",
            "tpm",
            "mean_latency_ms",
            "abort_pct",
            "certifications",
            "comparisons",
            "probes",
            "critical_probes",
            "mean_shards_touched",
            "parallel_speedup",
            "shard_imbalance",
            "total_work_ns",
            "critical_path_ns",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key}:\n{doc}");
        }
    }

    #[test]
    fn empty_sweep_is_still_valid_json() {
        let doc = rows_to_json("ablation_cert_sharding", &[]);
        validate_json(&doc).expect("well-formed");
        assert!(doc.contains("\"rows\": [\n  ]"));
    }

    #[test]
    fn non_finite_metrics_degrade_to_zero_not_invalid_json() {
        let mut row = sample_row();
        row.tpm = f64::NAN;
        row.parallel_speedup = f64::INFINITY;
        let doc = rows_to_json("g", &[row]);
        validate_json(&doc).expect("NaN/inf must not leak into the artifact");
        assert!(doc.contains("\"tpm\": 0,"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut row = sample_row();
        row.backend = "we\"ird\\name\n".to_string();
        let doc = rows_to_json("g", &[row]);
        validate_json(&doc).expect("escaped");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "0",
            r#"{"a": [1, 2.5, "x", {"b": null}], "c": false}"#,
            "  { \"k\" : \"v\\u00e9\" }  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "{'a': 1}",
            "{\"a\": 01}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{\"a\": nul}",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn row_from_metrics_prices_both_views() {
        use dbsm_core::{run_experiment, CertBackendKind, ExperimentConfig};
        let m = run_experiment(
            ExperimentConfig::replicated(3, 20)
                .with_target(40)
                .with_cert_backend(CertBackendKind::Sharded { shards: 4 }),
        );
        let row = CertBenchRow::from_metrics("sharded", 4, 20, &m);
        assert!(row.probes > 0, "sharded run probes");
        assert!(row.critical_probes > 0 && row.critical_probes <= row.probes);
        assert!(row.critical_path_ns <= row.total_work_ns);
        assert!(row.parallel_speedup >= 1.0);
        let doc = rows_to_json("ablation_cert_sharding", &[row]);
        validate_json(&doc).expect("well-formed from live metrics");
    }
}

//! # dbsm-bench — reproduction harness for every table and figure
//!
//! One binary per table/figure of the paper's evaluation (§4.2 validation
//! and §5 experiments), plus Criterion micro-benchmarks of the real-code hot
//! paths (`cargo bench`).
//!
//! Binaries accept `--full` to run at the paper's scale (2000 clients,
//! 10 000 transactions); the default is a scaled-down grid that finishes in
//! seconds and preserves the qualitative shape.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig3_validation` | Fig. 3a–c: flooding bandwidth and RTT, real vs CSRT |
//! | `fig4_qq` | Fig. 4: Q-Q latency validation vs a concurrent executor |
//! | `fig5_performance` | Fig. 5a–c: tpm, latency, abort rate vs clients |
//! | `fig6_resources` | Fig. 6a–c: CPU, disk, network usage vs clients |
//! | `fig7_faults` | Fig. 7a–c: latency ECDFs + protocol CPU under loss |
//! | `table1_aborts` | Table 1: abort rates per class and configuration |
//! | `table2_fault_aborts` | Table 2: abort rates under loss faults |
//!
//! The `ablation_cert_sharding` bench group additionally writes its results
//! as a machine-readable `BENCH_cert.json` artifact — see [`cert_json`].

use dbsm_core::{run_experiment, ExperimentConfig, RunMetrics};

pub mod cert_json;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, shape-preserving grid (default).
    Quick,
    /// The paper's full scale (2000 clients, 10 000 transactions).
    Full,
}

impl Scale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The client-count grid for Fig. 5/6 sweeps.
    pub fn client_grid(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![50, 100, 200, 300, 450],
            Scale::Full => vec![100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000],
        }
    }

    /// Transactions per run.
    pub fn target(self) -> u64 {
        match self {
            Scale::Quick => 1200,
            Scale::Full => 10_000,
        }
    }

    /// Scales a paper client count down for quick runs.
    pub fn clients(self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 5).max(20),
            Scale::Full => paper,
        }
    }
}

/// The five configurations of Fig. 5/6, in the paper's legend order.
pub fn fig5_configs(clients: usize, target: u64) -> Vec<(&'static str, ExperimentConfig)> {
    vec![
        ("1 CPU", ExperimentConfig::centralized(1, clients).with_target(target)),
        ("3 CPU", ExperimentConfig::centralized(3, clients).with_target(target)),
        ("6 CPU", ExperimentConfig::centralized(6, clients).with_target(target)),
        ("3 Sites", ExperimentConfig::replicated(3, clients).with_target(target)),
        ("6 Sites", ExperimentConfig::replicated(6, clients).with_target(target)),
    ]
}

/// Runs one configuration and prints a progress line to stderr.
pub fn run_logged(label: &str, clients: usize, cfg: ExperimentConfig) -> RunMetrics {
    eprintln!("  running {label} @ {clients} clients...");
    run_experiment(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Quick.client_grid().len() < Scale::Full.client_grid().len());
        assert!(Scale::Quick.target() < Scale::Full.target());
        assert_eq!(Scale::Full.clients(750), 750);
        assert!(Scale::Quick.clients(750) < 750);
    }

    #[test]
    fn fig5_has_five_configs() {
        let cfgs = fig5_configs(100, 500);
        assert_eq!(cfgs.len(), 5);
        assert_eq!(cfgs[4].1.sites, 6);
    }
}

//! Fig. 4 — Q-Q validation of transaction latency: the simulated
//! centralized server against the RealRig, a genuinely concurrent
//! multi-threaded executor of the same workload. Points near the diagonal
//! mean the model reproduces the real system's queueing behaviour.

use dbsm_core::validate::{real_rig_run, sim_rig_run, RigConfig};

fn main() {
    let mut cfg = RigConfig::default();
    if std::env::args().any(|a| a == "--full") {
        cfg.txns = 5000;
    }
    eprintln!("running RealRig ({} txns, {} clients, wall-clock)...", cfg.txns, cfg.clients);
    let mut real = real_rig_run(cfg);
    eprintln!("running simulation with identical parameters...");
    let mut sim = sim_rig_run(cfg);

    println!("# Fig 4a: read-only transactions, Q-Q (ms)");
    println!("{:>12} {:>12}", "sim", "real");
    for (s, r) in sim.read_only_ms.qq(&mut real.read_only_ms, 21) {
        println!("{s:>12.2} {r:>12.2}");
    }
    println!("\n# Fig 4b: update transactions, Q-Q (ms)");
    println!("{:>12} {:>12}", "sim", "real");
    for (s, r) in sim.update_ms.qq(&mut real.update_ms, 21) {
        println!("{s:>12.2} {r:>12.2}");
    }
    println!(
        "\nsamples: sim ro={} up={}, real ro={} up={}",
        sim.read_only_ms.len(),
        sim.update_ms.len(),
        real.read_only_ms.len(),
        real.update_ms.len()
    );
}

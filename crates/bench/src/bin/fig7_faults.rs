//! Fig. 7 — performance under fault injection with 3 sites: (a) ECDF of
//! transaction latency, (b) ECDF of certification latency, (c) CPU usage by
//! protocol (real) jobs, for no faults vs 5% random loss vs 5% bursty loss.

use dbsm_bench::{run_logged, Scale};
use dbsm_core::{report, ExperimentConfig};
use dbsm_fault::{check_logs, FaultPlan};

fn main() {
    let scale = Scale::from_args();
    let clients = scale.clients(750);
    let t = scale.target();
    let runs = [
        ("No Faults", FaultPlan::none()),
        ("Random Loss", FaultPlan::random_loss(0.05)),
        ("Bursty Loss", FaultPlan::bursty_loss(0.05, 5)),
    ];
    let metrics: Vec<_> = runs
        .iter()
        .map(|(name, plan)| {
            let cfg =
                ExperimentConfig::replicated(3, clients).with_target(t).with_faults(plan.clone());
            let m = run_logged(name, clients, cfg);
            check_logs(&m.commit_logs, &[false, false, false]).expect("safety under faults");
            m
        })
        .collect();

    println!("# Fig 7a: transaction latency ECDF (ms)");
    for ((name, _), m) in runs.iter().zip(&metrics) {
        println!("\n## {name}");
        let mut lat = m.pooled_latencies_ms();
        print!("{}", report::ecdf_lines(&lat.ecdf(20)));
    }
    println!("\n# Fig 7b: certification latency ECDF (ms)");
    for ((name, _), m) in runs.iter().zip(&metrics) {
        println!("\n## {name}");
        let mut lat = m.cert_latencies_ms.clone();
        print!("{}", report::ecdf_lines(&lat.ecdf(20)));
    }
    println!("\n# Fig 7c: CPU usage by protocol (real) jobs (%)");
    println!("{:<14} {:>8}", "Run", "Usage");
    for ((name, _), m) in runs.iter().zip(&metrics) {
        println!("{:<14} {:>8.2}", name, m.mean_cpu_usage().1 * 100.0);
    }
    println!("\n(safety check passed in every run: identical commit sequences)");
}

//! Fig. 6 — resource usage: (a) CPU utilisation, (b) disk bandwidth
//! utilisation, (c) network traffic, across the same configurations and
//! client grid as Fig. 5. Pass `--full` for the paper's scale.

use dbsm_bench::{fig5_configs, run_logged, Scale};
use dbsm_core::report;

fn main() {
    let scale = Scale::from_args();
    let grid = scale.client_grid();
    let names: Vec<&str> = fig5_configs(1, 1).iter().map(|(n, _)| *n).collect();

    let mut rows = Vec::new();
    for &clients in &grid {
        let metrics: Vec<_> = fig5_configs(clients, scale.target())
            .into_iter()
            .map(|(name, cfg)| run_logged(name, clients, cfg))
            .collect();
        rows.push((clients, metrics));
    }

    println!("# Fig 6a: CPU usage (%)");
    println!("{}", report::series_header(&names));
    for (clients, ms) in &rows {
        let v: Vec<f64> = ms.iter().map(|m| m.mean_cpu_usage().0 * 100.0).collect();
        println!("{}", report::series_row(*clients, &v));
    }
    println!("\n# Fig 6b: disk bandwidth usage (%)");
    println!("{}", report::series_header(&names));
    for (clients, ms) in &rows {
        let v: Vec<f64> = ms.iter().map(|m| m.mean_disk_usage() * 100.0).collect();
        println!("{}", report::series_row(*clients, &v));
    }
    println!("\n# Fig 6c: network traffic (KB/s) — replicated configs only");
    println!("{}", report::series_header(&["3 Sites", "6 Sites"]));
    for (clients, ms) in &rows {
        let v: Vec<f64> = vec![ms[3].network_kbps(), ms[4].network_kbps()];
        println!("{}", report::series_row(*clients, &v));
    }
}

//! Table 2 — abort rates (%) with 3 sites under message loss: no losses vs
//! 5% random loss vs 5% bursty loss (mean burst 5). Pass `--full` for the
//! paper's 1000 clients.

use dbsm_bench::{run_logged, Scale};
use dbsm_core::{report, ExperimentConfig};
use dbsm_fault::FaultPlan;

fn main() {
    let scale = Scale::from_args();
    let clients = scale.clients(1000);
    let t = scale.target();
    let runs = [
        ("No Losses", FaultPlan::none()),
        ("Random - 5%", FaultPlan::random_loss(0.05)),
        ("Bursty - 5%", FaultPlan::bursty_loss(0.05, 5)),
    ];
    let metrics: Vec<_> = runs
        .iter()
        .map(|(name, plan)| {
            let cfg =
                ExperimentConfig::replicated(3, clients).with_target(t).with_faults(plan.clone());
            run_logged(name, clients, cfg)
        })
        .collect();
    let columns: Vec<(&str, &dbsm_core::RunMetrics)> =
        runs.iter().map(|(n, _)| *n).zip(metrics.iter()).collect();
    println!("# Table 2: abort rates with 3 sites, {clients} clients (%)");
    print!("{}", report::abort_table(&columns));
}

//! Fig. 3 — validation of the centralized simulation runtime: maximum UDP
//! write bandwidth (3a), receive bandwidth on a 100 Mbps wire (3b) and
//! round-trip time (3c), Real (native loopback) vs CSRT (simulation).

use dbsm_core::validate::{flood_native, flood_sim, rtt_native, rtt_sim};
use dbsm_gcs::OverheadModel;
use std::time::Duration;

fn main() {
    let sizes = [64usize, 256, 512, 1000, 2000, 4000];
    let overhead = OverheadModel::pentium3_1ghz();
    let sim_window = Duration::from_millis(200);
    let native_window = Duration::from_millis(120);

    println!("# Fig 3a/3b: flooding bandwidth (Mbit/s)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "size", "written(real)", "written(CSRT)", "recv(real)", "recv(CSRT)"
    );
    for &size in &sizes {
        let sim = flood_sim(size, sim_window, overhead);
        let real = flood_native(size, native_window, Some(100.0))
            .unwrap_or(dbsm_core::validate::FloodResult { written_mbit: 0.0, received_mbit: 0.0 });
        println!(
            "{size:>8} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            real.written_mbit, sim.written_mbit, real.received_mbit, sim.received_mbit
        );
    }

    println!("\n# Fig 3c: average round trip (us)");
    println!("{:>8} {:>12} {:>12}", "size", "real", "CSRT");
    for &size in &sizes {
        let sim_rtt = rtt_sim(size, 50, overhead);
        let real_rtt = rtt_native(size, 200).unwrap_or(Duration::ZERO);
        println!(
            "{size:>8} {:>12.0} {:>12.0}",
            real_rtt.as_secs_f64() * 1e6,
            sim_rtt.as_secs_f64() * 1e6
        );
    }
    println!("\n(real = loopback UDP; 100 Mbit cap emulated on receive — see DESIGN.md)");
}

//! Fig. 5 — performance of the replicated database vs centralized baselines:
//! (a) committed transactions per minute, (b) mean latency, (c) abort rate,
//! as the client population grows. Pass `--full` for the paper's scale.

use dbsm_bench::{fig5_configs, run_logged, Scale};
use dbsm_core::report;

fn main() {
    let scale = Scale::from_args();
    let grid = scale.client_grid();
    let names: Vec<&str> = fig5_configs(1, 1).iter().map(|(n, _)| *n).collect();

    let mut rows = Vec::new();
    for &clients in &grid {
        let metrics: Vec<_> = fig5_configs(clients, scale.target())
            .into_iter()
            .map(|(name, cfg)| run_logged(name, clients, cfg))
            .collect();
        rows.push((clients, metrics));
    }

    println!("# Fig 5a: throughput (tpm)");
    println!("{}", report::series_header(&names));
    for (clients, ms) in &rows {
        let v: Vec<f64> = ms.iter().map(|m| m.tpm()).collect();
        println!("{}", report::series_row(*clients, &v));
    }
    println!("\n# Fig 5b: mean latency (ms)");
    println!("{}", report::series_header(&names));
    for (clients, ms) in &rows {
        let v: Vec<f64> = ms.iter().map(|m| m.mean_latency_ms()).collect();
        println!("{}", report::series_row(*clients, &v));
    }
    println!("\n# Fig 5c: abort rate (%)");
    println!("{}", report::series_header(&names));
    for (clients, ms) in &rows {
        let v: Vec<f64> = ms.iter().map(|m| m.abort_rate()).collect();
        println!("{}", report::series_row(*clients, &v));
    }
}

//! CI schema gate for `BENCH_cert.json`: parses the artifact with the
//! typed schema parser (every row must carry every required key with the
//! right type) and prints a one-line digest per sweep row. Exits non-zero
//! on any violation, so a malformed artifact fails the pipeline at the PR
//! that broke it instead of at the first consumer. Schema v2 through v4
//! documents (written before the partial-replication, wire-vote and
//! re-placement fields respectively) still pass: the parser defaults the
//! later keys, and the digest shows `sites=0 rf=0` / `wire=0/0` /
//! `repl=0/0` for them.
//!
//! Usage: `cert_schema_gate [path]` — defaults to the workspace artifact
//! location (`$DBSM_BENCH_CERT_JSON` or `BENCH_cert.json` at the root).

use dbsm_bench::cert_json::{default_output_path, parse_document};
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args().nth(1).map_or_else(default_output_path, std::path::PathBuf::from);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cert_schema_gate: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse_document(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cert_schema_gate: {} violates the schema: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if doc.rows.is_empty() {
        eprintln!("cert_schema_gate: {} parsed but holds zero rows", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "cert_schema_gate: {} OK — group {:?}, {} rows",
        path.display(),
        doc.group,
        doc.rows.len()
    );
    for r in &doc.rows {
        println!(
            "  {:<10} shards={:<2} clients={:<6} {:<9} sites={:<2} rf={:<2} \
             tpm={:<9.0} lat={:<7.1} stall={}us spec={}/{}/{}/{} \
             span={:.2} vote={}/{} wire={}/{} pb={:.2} wait={:.1}ms \
             repl={}/{} park={:.0}ms hash={}",
            r.backend,
            r.shards,
            r.clients,
            r.commit_path,
            r.sites,
            r.replication_factor,
            r.tpm,
            r.mean_latency_ms,
            r.stall_ns / 1_000,
            r.spec_hits,
            r.spec_revalidated,
            r.spec_rollbacks,
            r.spec_misses,
            r.span_fraction,
            r.vote_rounds,
            r.cross_span_txns,
            r.votes_sent,
            r.votes_received,
            r.vote_piggyback_rate,
            r.mean_vote_wait_ms,
            r.replacements,
            r.rehomed_spans,
            r.parked_ns as f64 / 1e6,
            r.config_hash,
        );
    }
    ExitCode::SUCCESS
}

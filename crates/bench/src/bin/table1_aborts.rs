//! Table 1 — abort rates (%) per transaction class: centralized servers
//! with 1/3/6 CPUs vs 3/6-site replicated databases at the paper's paired
//! client counts. Pass `--full` for the paper's scale.

use dbsm_bench::{run_logged, Scale};
use dbsm_core::{report, ExperimentConfig};

fn main() {
    let scale = Scale::from_args();
    let t = scale.target();
    let cols = [
        ("500c/1x1CPU", ExperimentConfig::centralized(1, scale.clients(500))),
        ("1000c/1x3CPU", ExperimentConfig::centralized(3, scale.clients(1000))),
        ("1000c/3x1CPU", ExperimentConfig::replicated(3, scale.clients(1000))),
        ("1500c/1x6CPU", ExperimentConfig::centralized(6, scale.clients(1500))),
        ("1500c/6x1CPU", ExperimentConfig::replicated(6, scale.clients(1500))),
    ];
    let metrics: Vec<_> = cols
        .iter()
        .map(|(name, cfg)| run_logged(name, cfg.clients, cfg.clone().with_target(t)))
        .collect();
    let columns: Vec<(&str, &dbsm_core::RunMetrics)> =
        cols.iter().map(|(n, _)| *n).zip(metrics.iter()).collect();
    println!("# Table 1: abort rates (%)");
    print!("{}", report::abort_table(&columns));
}

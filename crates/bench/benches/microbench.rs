//! Criterion micro-benchmarks of the real-code hot paths the paper's
//! prototype optimizes (§3.3–3.4): certification, marshalling, read/write
//! set intersection, stability detection, the lock manager, the event
//! queue, TPC-C generation and the network pump.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dbsm_cert::{
    marshal, unmarshal, CertBackendKind, CertRequest, RwSet, SiteId, TableId, TupleId,
};
use dbsm_db::{Acquire, CcPolicy, LockTable, OwnerKind, TxnId};
use dbsm_gcs::{
    decode_seq_ann, encode_seq_ann, AnnBatchPolicy, NodeId, NodeSet, SeqAssign, Stability,
};
use dbsm_sim::Sim;
use dbsm_tpcc::{TpccConfig, TpccGen, TxnClass};
use std::hint::black_box;
use std::time::Duration;

fn rwset(table: u16, base: u64, n: u64) -> RwSet {
    (0..n).map(|i| TupleId::new(TableId(table), base + i * 2 + 1)).collect()
}

fn req(site: u16, txn: u64, start: u64, reads: RwSet, writes: RwSet) -> CertRequest {
    CertRequest {
        site: SiteId(site),
        txn,
        start_seq: start,
        read_set: reads,
        write_set: writes,
        write_bytes: 256,
    }
}

fn bench_certification(c: &mut Criterion) {
    // Same fill, same probe request, one bench id per backend: the linear
    // scan's cost grows with the conflict window (the benchmark's `history`
    // axis), the indexed backend's stays flat — compare
    // `certify_history_linear_1024` against `certify_history_indexed_1024`.
    // The sharded backend (8 row-keyed shards) adds the per-shard
    // bookkeeping on the same flat probes and must stay in the indexed
    // backend's ballpark: its scratch buffers are reused, not reallocated.
    let mut g = c.benchmark_group("certification");
    for kind in
        [CertBackendKind::Linear, CertBackendKind::Indexed, CertBackendKind::Sharded { shards: 8 }]
    {
        for history in [16usize, 128, 1024] {
            g.bench_function(format!("certify_history_{}_{history}", kind.name()), |b| {
                let mut certifier = kind.new_backend();
                for i in 0..history as u64 {
                    let r = req(0, i, i, RwSet::new(), rwset(1, i * 64, 8));
                    certifier.certify(&r).expect("fill");
                }
                let mut txn = history as u64;
                b.iter(|| {
                    let r = req(1, txn, 0, rwset(2, 0, 16), rwset(2, 1000, 4));
                    txn += 1;
                    black_box(certifier.certify(&r).expect("certify"))
                });
            });
        }
    }
    g.finish();
}

fn bench_intersection(c: &mut Criterion) {
    let mut g = c.benchmark_group("rwset_intersection");
    for n in [16usize, 256, 4096] {
        let a = rwset(1, 0, n as u64);
        let b_set = rwset(1, 2 * n as u64, n as u64);
        g.bench_function(format!("disjoint_{n}"), |bencher| {
            bencher.iter(|| black_box(a.intersects(&b_set)))
        });
    }
    g.finish();
}

fn bench_marshal(c: &mut Criterion) {
    let mut g = c.benchmark_group("marshal");
    for n in [8usize, 64, 256] {
        let r = req(3, 42, 1000, rwset(1, 0, n as u64), rwset(2, 0, (n / 2) as u64));
        g.bench_function(format!("roundtrip_{n}_ids"), |b| {
            b.iter(|| {
                let wire = marshal(&r);
                black_box(unmarshal(wire).expect("roundtrip"))
            })
        });
    }
    g.finish();
}

fn bench_stability(c: &mut Criterion) {
    c.bench_function("stability_gossip_round_6_nodes", |b| {
        let n = 6;
        let members = NodeSet::first_n(n);
        let received: Vec<Vec<u64>> = (0..n).map(|_| vec![1000; n]).collect();
        b.iter_batched(
            || (0..n).map(|i| Stability::new(NodeId(i as u16), n, members)).collect::<Vec<_>>(),
            |mut nodes| {
                let gossips: Vec<_> = nodes
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| s.make_gossip(&received[i]))
                    .collect();
                for (i, node) in nodes.iter_mut().enumerate() {
                    for (j, g) in gossips.iter().enumerate() {
                        if i != j {
                            node.on_gossip(g, &received[i]);
                        }
                    }
                }
                black_box(nodes[0].stable()[0])
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_acquire_release_disjoint", |b| {
        let mut lt = LockTable::new(CcPolicy::MultiVersion);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let set: Vec<TupleId> =
                (0..8).map(|i| TupleId::new(TableId(1), k * 16 + i + 1)).collect();
            let t = TxnId(k);
            assert_eq!(lt.acquire(t, set, OwnerKind::LocalAbortable), Acquire::Granted);
            black_box(lt.release(t, true))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim_schedule_run_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..1000u64 {
                sim.schedule_at(dbsm_sim::SimTime::from_nanos(i * 7 % 997), || {});
            }
            sim.run();
            black_box(sim.events_executed())
        })
    });
}

fn bench_tpcc_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpcc");
    g.bench_function("next_request", |b| {
        let mut gen = TpccGen::new(TpccConfig::new(200));
        let mut client = 0usize;
        b.iter(|| {
            client = (client + 1) % 200;
            black_box(gen.next_request(client).spec.read_set.len())
        })
    });
    g.bench_function("neworder_only", |b| {
        let mut gen = TpccGen::new(TpccConfig::new(200));
        b.iter(|| black_box(gen.request_for(0, TxnClass::NewOrder).spec.write_set.len()))
    });
    g.finish();
}

fn bench_network_pump(c: &mut Criterion) {
    use bytes::Bytes;
    use dbsm_net::{Addr, Dest, NetworkBuilder, Port, SegmentConfig};
    c.bench_function("net_unicast_1000_packets", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let mut nb = NetworkBuilder::new(&sim);
            let lan = nb.lan(SegmentConfig::fast_ethernet());
            let h0 = nb.host(lan);
            let h1 = nb.host(lan);
            let net = nb.build();
            net.bind(Addr::new(h1, Port(9)), |_| {}).expect("bind");
            let payload = Bytes::from(vec![0u8; 512]);
            for _ in 0..1000 {
                net.send(
                    Addr::new(h0, Port(1)),
                    Dest::Unicast(Addr::new(h1, Port(9))),
                    payload.clone(),
                );
            }
            sim.run();
            black_box(net.stats().host(1).rx_packets)
        })
    });
}

fn bench_gcs_stack(c: &mut Criterion) {
    use bytes::Bytes;
    use dbsm_gcs::{testkit::TestNet, GcsConfig};
    c.bench_function("gcs_order_100_messages_3_nodes", |b| {
        b.iter(|| {
            let mut net = TestNet::new(GcsConfig::lan(3));
            for i in 0..100u64 {
                net.broadcast(NodeId((i % 3) as u16), Bytes::from(i.to_le_bytes().to_vec()));
            }
            net.run_for(Duration::from_secs(2));
            black_box(net.deliveries(NodeId(0)).len())
        })
    });
}

fn bench_announcement(c: &mut Criterion) {
    use bytes::Bytes;
    use dbsm_gcs::{testkit::TestNet, GcsConfig};
    // The two halves of the announcement hot path: the SeqAnn wire
    // encode/decode roundtrip as a function of batch size, and the full
    // assign→flush→deliver pipeline under each batching policy.
    let mut g = c.benchmark_group("announcement");
    for n in [1usize, 16, 256] {
        let assigns: Vec<SeqAssign> = (0..n as u64)
            .map(|i| SeqAssign {
                sender: NodeId((i % 6) as u16),
                msg_seq: i + 1,
                global_seq: i + 1,
            })
            .collect();
        g.bench_function(format!("encode_decode_{n}_assigns"), |b| {
            b.iter(|| black_box(decode_seq_ann(encode_seq_ann(&assigns)).expect("roundtrip")))
        });
    }
    for (name, policy) in [
        ("immediate", AnnBatchPolicy::Immediate),
        ("fixed_2ms", AnnBatchPolicy::Fixed(Duration::from_millis(2))),
        ("adaptive", AnnBatchPolicy::adaptive_lan()),
    ] {
        g.bench_function(format!("flush_100_messages_{name}"), |b| {
            b.iter(|| {
                let mut cfg = GcsConfig::lan(3);
                cfg.ann_policy = policy;
                let mut net = TestNet::new(cfg);
                for i in 0..100u64 {
                    net.broadcast(NodeId((i % 3) as u16), Bytes::from(i.to_le_bytes().to_vec()));
                }
                net.run_for(Duration::from_secs(2));
                black_box(net.deliveries(NodeId(0)).len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_certification,
    bench_intersection,
    bench_marshal,
    bench_stability,
    bench_lock_table,
    bench_event_queue,
    bench_tpcc_gen,
    bench_network_pump,
    bench_gcs_stack,
    bench_announcement,
);
criterion_main!(benches);

//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! locking policy (multi-version vs conservative 2PL), sequencer buffer
//! share (the §5.3 mitigation), announcement batching, uniform delivery,
//! and the certification backend (linear scan vs indexed write history).
//! Each runs a small end-to-end experiment; Criterion reports the
//! wall-clock cost of simulating it, and the printed side-channel reports
//! the system-level metric of interest.

use criterion::{criterion_group, criterion_main, Criterion};
use dbsm_bench::cert_json::{merge_and_write, CertBenchRow};
use dbsm_core::{run_experiment, AnnBatchPolicy, CertBackendKind, CommitPath, ExperimentConfig};
use dbsm_db::CcPolicy;
use dbsm_fault::{FaultPlan, FaultSpec};
use dbsm_gcs::GcsConfig;
use dbsm_sim::SimTime;
use std::cell::RefCell;
use std::hint::black_box;
use std::time::Duration;

fn small(sites: usize, clients: usize) -> ExperimentConfig {
    ExperimentConfig::replicated(sites, clients).with_target(300)
}

fn bench_locking_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_locking");
    g.sample_size(10);
    for (name, policy) in
        [("multiversion", CcPolicy::MultiVersion), ("conservative_2pl", CcPolicy::Conservative2pl)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::centralized(1, 60).with_target(300);
                cfg.policy = policy;
                let m = run_experiment(cfg);
                black_box((m.committed(), m.abort_rate()))
            })
        });
    }
    g.finish();
}

fn bench_sequencer_share(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sequencer_share");
    g.sample_size(10);
    for (name, boost) in [("fair_share", 1.0), ("boosted_sequencer", 4.0)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = small(3, 60).with_faults(FaultPlan::random_loss(0.05));
                let mut gcs = GcsConfig::lan(3);
                gcs.sequencer_share_boost = boost;
                cfg.gcs = Some(gcs);
                let m = run_experiment(cfg);
                black_box(m.cert_latencies_ms.clone().percentile(99.0))
            })
        });
    }
    g.finish();
}

fn bench_ann_batching(c: &mut Criterion) {
    // The §5.3 sweep at the paper-scale operating point: 2000 clients over 3
    // sites, each announcement policy crossed with packet-loss rates. Loss
    // stalls stability and backs the sequencer's send queue up, which is
    // exactly when per-message announcements amplify the collapse — and when
    // the adaptive policy widens its window and piggybacks. Criterion times
    // the simulation; the system-level comparison (tpm, latency, and the
    // announcements-vs-piggybacks `ann_work` ledger) rides the black box.
    let mut g = c.benchmark_group("ablation_ann_batching");
    g.sample_size(10);
    let policies = [
        ("immediate", AnnBatchPolicy::Immediate),
        ("batched_2ms", AnnBatchPolicy::Fixed(Duration::from_millis(2))),
        ("adaptive", AnnBatchPolicy::adaptive_lan()),
    ];
    for (name, policy) in policies {
        for loss_pct in [0u32, 1, 5] {
            let id = format!("clients_2000_{name}_loss_{loss_pct}pct");
            let mut printed = false;
            g.bench_function(&id, |b| {
                b.iter(|| {
                    let mut cfg = ExperimentConfig::replicated(3, 2000)
                        .with_target(600)
                        .with_ann_policy(policy);
                    if loss_pct > 0 {
                        cfg = cfg.with_faults(FaultPlan::random_loss(loss_pct as f64 / 100.0));
                    }
                    let m = run_experiment(cfg);
                    if !printed {
                        printed = true;
                        println!("    {}", dbsm_core::report::summary_line(&id, &m));
                    }
                    black_box((
                        m.tpm(),
                        m.mean_latency_ms(),
                        m.ann_work.announcements,
                        m.ann_work.mean_batch(),
                        m.ann_work.piggybacked,
                    ))
                })
            });
        }
    }
    g.finish();
}

fn bench_uniform_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_uniform_delivery");
    g.sample_size(10);
    for (name, uniform) in [("optimistic", false), ("uniform", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = small(3, 60);
                let mut gcs = GcsConfig::lan(3);
                gcs.uniform_delivery = uniform;
                cfg.gcs = Some(gcs);
                let m = run_experiment(cfg);
                black_box(m.mean_latency_ms())
            })
        });
    }
    g.finish();
}

fn bench_fault_plans(c: &mut Criterion) {
    // Prices every fault-scenario family at the paper-scale operating point
    // (2000 clients over 3 sites): what does each fault family cost in
    // throughput and latency, and what does the fault machinery itself do
    // (view installs, duplicate absorption, partition drops)? Criterion
    // times the simulation; the printed summary lines carry the
    // system-level ledger. Note the partition rows run with uniform (safe)
    // delivery — the runner forces it for partition plans.
    let mut g = c.benchmark_group("ablation_fault_plans");
    g.sample_size(10);
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        ("random_loss_5pct", FaultPlan::random_loss(0.05)),
        ("bursty_loss_5pct", FaultPlan::bursty_loss(0.05, 5)),
        ("clock_drift_1.05", FaultPlan::clock_drift(1, 1.05)),
        ("crash_at_1s", FaultPlan::crash(2, SimTime::from_secs(1))),
        (
            "partition_2s",
            FaultPlan::partition(
                vec![vec![0, 1], vec![2]],
                SimTime::from_secs(1),
                SimTime::from_secs(3),
            ),
        ),
        (
            "partition_300ms",
            FaultPlan::partition(
                vec![vec![0, 1], vec![2]],
                SimTime::from_secs(1),
                SimTime::from_millis(1_300),
            ),
        ),
        ("duplicates_10pct_x2", FaultPlan::duplicate_delivery(0.10, 2)),
        (
            "correlated_burst_10pct",
            FaultPlan::correlated_burst(vec![0, 1, 2], Duration::from_millis(10), 0.10),
        ),
    ];
    for (name, plan) in plans {
        let id = format!("clients_2000_{name}");
        let mut printed = false;
        g.bench_function(&id, |b| {
            b.iter(|| {
                let cfg = ExperimentConfig::replicated(3, 2000)
                    .with_target(600)
                    .with_faults(plan.clone());
                let m = run_experiment(cfg);
                if !printed {
                    printed = true;
                    println!("    {}", dbsm_core::report::summary_line(&id, &m));
                }
                black_box((
                    m.tpm(),
                    m.mean_latency_ms(),
                    m.fault_work.view_installs,
                    m.fault_work.dup_injected,
                    m.fault_work.partition_drops,
                ))
            })
        });
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // Prices the rejoin machinery at the paper-scale operating point (2000
    // clients over 3 sites): crash rate (how many sites are killed and
    // replaced, staggered so a majority always survives) crossed with the
    // restart delay (how long a dead site stays down, which sets the delta
    // log it must replay on top of the snapshot). Criterion times the
    // simulation; the printed summary lines carry the `rec=` recovery
    // ledger (rejoins/snapshots, transfer kilobytes, replayed entries,
    // mean time-to-useful). One sample per point — each run simulates
    // enough load to outlast the last restart plus its state transfer. The
    // kills are staggered 10s apart: under this load a join grant takes a
    // few seconds to find an order-clean point, and killing the next site
    // before the previous grant lands would strand the survivor in a
    // minority.
    let mut g = c.benchmark_group("ablation_recovery");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    for kills in [1usize, 2] {
        for (delay_name, downtime) in
            [("1s", Duration::from_secs(1)), ("3s", Duration::from_secs(3))]
        {
            let id = format!("clients_2000_kill{kills}_down{delay_name}");
            let mut printed = false;
            g.bench_function(&id, |b| {
                b.iter(|| {
                    let plan = FaultPlan::kill_and_replace(
                        kills,
                        SimTime::from_secs(1),
                        Duration::from_secs(10),
                        downtime,
                    );
                    let mut cfg =
                        ExperimentConfig::replicated(3, 2000).with_target(3_000).with_faults(plan);
                    cfg.max_sim = Duration::from_secs(120);
                    let m = run_experiment(cfg);
                    if !printed {
                        printed = true;
                        println!("    {}", dbsm_core::report::summary_line(&id, &m));
                    }
                    black_box((
                        m.tpm(),
                        m.recovery_work.rejoins,
                        m.recovery_work.total_bytes(),
                        m.recovery_work.mean_ttu_ms(),
                    ))
                })
            });
        }
    }
    // The double-restart point: one site flaps twice (crash, 10s down,
    // back, 10s up, crash again). Each incarnation must come back through
    // its own snapshot + delta-log transfer, and the chain checker's
    // multi-cut rule is what prices it — two rejoins, two transfer cuts.
    {
        let id = "clients_2000_flap2_period10s".to_string();
        let mut printed = false;
        g.bench_function(&id, |b| {
            b.iter(|| {
                let plan =
                    FaultPlan::flapping_crash(2, SimTime::from_secs(1), Duration::from_secs(10), 2);
                let mut cfg =
                    ExperimentConfig::replicated(3, 2000).with_target(3_000).with_faults(plan);
                cfg.max_sim = Duration::from_secs(120);
                let m = run_experiment(cfg);
                if !printed {
                    printed = true;
                    println!("    {}", dbsm_core::report::summary_line(&id, &m));
                }
                black_box((m.tpm(), m.recovery_work.rejoins, m.recovery_work.mean_ttu_ms()))
            })
        });
    }
    g.finish();
}

fn bench_cert_backend(c: &mut Criterion) {
    // The certification ablation at a paper-scale operating point: 2000
    // clients over 3 sites keep a wide conflict window open, which is where
    // the linear scan's O(window) cost and the index's O(request) probes
    // diverge. Decisions are bit-identical across backends; tpm/latency and
    // the scan-vs-probe work ledger are the comparison.
    let mut g = c.benchmark_group("ablation_cert_backend");
    g.sample_size(10);
    for kind in [CertBackendKind::Linear, CertBackendKind::Indexed] {
        g.bench_function(format!("clients_2000_{}", kind.name()), |b| {
            b.iter(|| {
                let cfg =
                    ExperimentConfig::replicated(3, 2000).with_target(600).with_cert_backend(kind);
                let m = run_experiment(cfg);
                black_box((
                    m.tpm(),
                    m.mean_latency_ms(),
                    m.cert_work.mean_comparisons(),
                    m.cert_work.mean_probes(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_cert_sharding(c: &mut Criterion) {
    // The post-PR-2 question: once the conflict check is indexed, the
    // serial certifier is the remaining wall — where does throughput
    // saturate when certification itself goes N-way parallel? The sweep
    // crosses every backend (linear scan, indexed, sharded at 2/4/8/16
    // home-warehouse shards) with client counts from the paper's 2000 up to
    // 10000. Decisions are bit-identical everywhere; what moves is the
    // certification *critical path* (most-loaded shard + merge), reported
    // per row in the summary line and persisted as machine-readable
    // BENCH_cert.json so the perf trajectory survives across PRs.
    let rows: RefCell<Vec<CertBenchRow>> = RefCell::new(Vec::new());
    {
        let mut g = c.benchmark_group("ablation_cert_sharding");
        g.sample_size(10);
        let backends: Vec<(String, CertBackendKind, usize)> = [
            ("linear".to_string(), CertBackendKind::Linear, 1),
            ("indexed".to_string(), CertBackendKind::Indexed, 1),
        ]
        .into_iter()
        .chain(
            [2usize, 4, 8, 16]
                .into_iter()
                .map(|n| (format!("sharded{n}"), CertBackendKind::Sharded { shards: n }, n)),
        )
        .collect();
        for clients in [2000usize, 5000, 10000] {
            for (name, kind, shards) in &backends {
                let id = format!("clients_{clients}_{name}");
                let mut recorded = false;
                g.bench_function(&id, |b| {
                    b.iter(|| {
                        let cfg = ExperimentConfig::replicated(3, clients)
                            .with_target(600)
                            .with_cert_backend(*kind);
                        let m = run_experiment(cfg.clone());
                        if !recorded {
                            recorded = true;
                            println!("    {}", dbsm_core::report::summary_line(&id, &m));
                            rows.borrow_mut()
                                .push(CertBenchRow::from_metrics(name, *shards, &cfg, &m));
                        }
                        black_box((
                            m.tpm(),
                            m.cert_work.probes,
                            m.cert_work.critical_probes,
                            m.cert_work.mean_shards_touched(),
                        ))
                    })
                });
            }
        }
        g.finish();
    }
    // The pipeline sweep: 20k-50k clients, synchronous vs pipelined commit
    // path at each shard count. This is where the delivery loop itself is
    // the wall — the question is how much of the certification stall the
    // tentative-delivery overlap actually removes, and whether the shard
    // servers queue. One sample per point (each run is seconds of simulated
    // load at these client counts); the system-level ledger, not the
    // harness wall clock, is the result.
    {
        let mut g = c.benchmark_group("ablation_cert_pipeline");
        g.sample_size(1);
        g.measurement_time(Duration::from_secs(1));
        let backends: Vec<(String, CertBackendKind, usize)> = vec![
            ("indexed".to_string(), CertBackendKind::Indexed, 1),
            ("sharded8".to_string(), CertBackendKind::Sharded { shards: 8 }, 8),
            ("sharded16".to_string(), CertBackendKind::Sharded { shards: 16 }, 16),
        ];
        for clients in [20000usize, 50000] {
            for path in [CommitPath::Synchronous, CommitPath::Pipelined] {
                for (name, kind, shards) in &backends {
                    let id = format!("clients_{clients}_{name}_{}", path.name());
                    let mut recorded = false;
                    g.bench_function(&id, |b| {
                        b.iter(|| {
                            // 600 transactions (the sharding sweep's budget)
                            // would sample only the open-loop ramp, where
                            // mean latency is an artifact of which clients
                            // happen to finish first. One full population
                            // turnover puts the window in steady state,
                            // where the closed-loop law (latency =
                            // clients/throughput - think time) makes the
                            // commit path's throughput gain visible as a
                            // latency gain.
                            let mut cfg = ExperimentConfig::replicated(3, clients)
                                .with_target(20_000)
                                .with_cert_backend(*kind)
                                .with_commit_path(path);
                            // At these client counts tens of thousands of
                            // requests are in flight: a request's snapshot
                            // must not be garbage-collected before its
                            // delivery, or certification reports (correct
                            // but useless) truncation. Both paths get the
                            // same window; it is part of the config hash.
                            cfg.history_window = 1 << 17;
                            // The paper's mid CPU configuration: on 1 CPU
                            // these client counts sit far past the
                            // saturation knee, where mean latency measures
                            // backlog collapse rather than the commit
                            // path. 3 CPUs put 20k clients near the knee
                            // (where the delivery-loop stall matters) and
                            // leave 50k as the overload point.
                            cfg.cpus_per_site = 3;
                            let m = run_experiment(cfg.clone());
                            if !recorded {
                                recorded = true;
                                println!("    {}", dbsm_core::report::summary_line(&id, &m));
                                rows.borrow_mut()
                                    .push(CertBenchRow::from_metrics(name, *shards, &cfg, &m));
                            }
                            black_box((m.tpm(), m.mean_latency_ms(), m.cert_work.stall_ns))
                        })
                    });
                }
            }
        }
        g.finish();
    }
    let rows = rows.into_inner();
    // Merge into the across-PR artifact: rows this invocation re-ran (even
    // under a narrowed `cargo bench -- <filter>`) replace their old
    // versions, rows it didn't run are preserved, and a config-hash
    // mismatch (schema bump, changed seed/sites/target) fails loudly
    // instead of mixing incomparable sweeps. A filtered-out group (zero
    // rows) does not touch the file at all.
    if !rows.is_empty() {
        let path = merge_and_write("ablation_cert_sharding", &rows).expect("merge BENCH_cert.json");
        println!("merged {} fresh rows into {}", rows.len(), path.display());
    }
}

fn bench_partial_replication(c: &mut Criterion) {
    // The partial-replication question: at a fixed total data set (clients,
    // hence warehouses, held constant), what does dropping the replication
    // factor from full to k buy per site? Each site then indexes only the
    // warehouses it replicates (~k/N of the rows), certifies against that
    // span, and pays a vote round only for the cross-span minority — so
    // per-site critical-path certification work should shrink ∝ k/N while
    // aggregate throughput grows with the site count. The sweep crosses
    // sites {3, 6, 9, 12} with replication factor {full, 2, 3}; duplicate
    // points (rf 3 at 3 sites IS full replication) are skipped. Rows land
    // in BENCH_cert.json keyed by (sites, replication_factor) alongside
    // the sharding sweep's rows.
    let rows: RefCell<Vec<CertBenchRow>> = RefCell::new(Vec::new());
    {
        let mut g = c.benchmark_group("ablation_partial_replication");
        g.sample_size(1);
        g.measurement_time(Duration::from_secs(1));
        let clients = 12_000usize;
        for sites in [3usize, 6, 9, 12] {
            // `factor >= sites` materializes no placement: that point is
            // the full-replication baseline the partial rows compare to.
            let mut factors = vec![2, 3, sites];
            factors.sort_unstable();
            factors.dedup();
            factors.retain(|f| *f <= sites);
            for factor in factors {
                let label = if factor >= sites { "full".to_string() } else { format!("{factor}") };
                let id = format!("sites_{sites}_rf_{label}");
                let mut recorded = false;
                g.bench_function(&id, |b| {
                    b.iter(|| {
                        // Same steady-state budget, snapshot window and CPU
                        // configuration as the pipeline sweep, so the
                        // full-replication rows here are comparable to its
                        // synchronous baseline.
                        let mut cfg = ExperimentConfig::replicated(sites, clients)
                            .with_target(20_000)
                            .with_cert_backend(CertBackendKind::Indexed)
                            .with_replication_factor(factor);
                        cfg.history_window = 1 << 17;
                        cfg.cpus_per_site = 3;
                        let m = run_experiment(cfg.clone());
                        if !recorded {
                            recorded = true;
                            println!("    {}", dbsm_core::report::summary_line(&id, &m));
                            rows.borrow_mut()
                                .push(CertBenchRow::from_metrics("indexed", 1, &cfg, &m));
                        }
                        black_box((m.tpm(), m.cert_work.span_fraction(), m.cert_work.vote_rounds))
                    })
                });
            }
        }
        g.finish();
    }
    let rows = rows.into_inner();
    if !rows.is_empty() {
        let path = merge_and_write("ablation_cert_sharding", &rows).expect("merge BENCH_cert.json");
        println!("merged {} fresh rows into {}", rows.len(), path.display());
    }
}

fn bench_vote_wire(c: &mut Criterion) {
    // The decentralized-vote question: with certification verdicts
    // multicast as wire-level votes (piggybacked on outgoing data frames
    // where MTU slack allows) instead of modeled as a fixed RTT, what does
    // the vote round actually cost — and how much of it does the pipelined
    // path hide by pre-computing votes at tentative delivery, overlapping
    // the vote round with the ordering round? The sweep crosses sites
    // {3, 6, 9, 12} with replication factor {2, 3} under BOTH commit
    // paths (rf >= sites points are full replication — no wire votes —
    // and are skipped). Rows land in BENCH_cert.json keyed by
    // (commit_path, sites, replication_factor), carrying the schema-v4
    // wire ledger: votes sent/received, piggyback rate, resends, and the
    // mean origin-side wait from delivery to quorum decision.
    let rows: RefCell<Vec<CertBenchRow>> = RefCell::new(Vec::new());
    {
        let mut g = c.benchmark_group("ablation_vote_wire");
        g.sample_size(1);
        g.measurement_time(Duration::from_secs(1));
        let clients = 12_000usize;
        for sites in [3usize, 6, 9, 12] {
            for factor in [2usize, 3] {
                if factor >= sites {
                    continue; // full replication: no wire votes to measure
                }
                for path in [CommitPath::Synchronous, CommitPath::Pipelined] {
                    let id = format!("sites_{sites}_rf_{factor}_{}", path.name());
                    let mut recorded = false;
                    g.bench_function(&id, |b| {
                        b.iter(|| {
                            // Same steady-state budget, snapshot window and
                            // CPU configuration as the partial-replication
                            // sweep, so its synchronous rows are directly
                            // comparable.
                            let mut cfg = ExperimentConfig::replicated(sites, clients)
                                .with_target(20_000)
                                .with_cert_backend(CertBackendKind::Indexed)
                                .with_replication_factor(factor)
                                .with_commit_path(path);
                            cfg.history_window = 1 << 17;
                            cfg.cpus_per_site = 3;
                            let m = run_experiment(cfg.clone());
                            if !recorded {
                                recorded = true;
                                println!("    {}", dbsm_core::report::summary_line(&id, &m));
                                rows.borrow_mut()
                                    .push(CertBenchRow::from_metrics("indexed", 1, &cfg, &m));
                            }
                            black_box((
                                m.tpm(),
                                m.vote_wire.sent,
                                m.vote_wire.piggyback_rate(),
                                m.vote_wire.mean_wait_ms(),
                            ))
                        })
                    });
                }
            }
        }
        g.finish();
    }
    let rows = rows.into_inner();
    if !rows.is_empty() {
        let path = merge_and_write("ablation_cert_sharding", &rows).expect("merge BENCH_cert.json");
        println!("merged {} fresh rows into {}", rows.len(), path.display());
    }
}

fn bench_replacement(c: &mut Criterion) {
    // Re-placement under churn: at 6 sites the sweep crosses replication
    // factor {2, 3} with crash counts {0, 1, 2}. Zero crashes is the
    // baseline; one crash (site 5) removes one replica of its spans but
    // strands nothing — clients re-route to the surviving replica; two
    // crashes take the ADJACENT pair {0, 1}, which under round-robin
    // placement at rf 2 removes BOTH replicas of the spans homed on the
    // pair, forcing the survivors to elect adopters and re-home those
    // spans through state transfer. At rf 3 the same pair crash leaves a
    // third replica alive, so its rows price pure degradation with no
    // re-homing — the rf axis separates the two effects. Rows land in
    // BENCH_cert.json under synthetic backend labels `churn{n}` (so they
    // never collide with the partial-replication sweep's rows at the same
    // (sites, rf) point), carrying the schema-v5 re-placement ledger.
    let rows: RefCell<Vec<CertBenchRow>> = RefCell::new(Vec::new());
    {
        let mut g = c.benchmark_group("ablation_replacement");
        g.sample_size(1);
        g.measurement_time(Duration::from_secs(1));
        let sites = 6usize;
        let clients = 12_000usize;
        for factor in [2usize, 3] {
            for crashes in [0usize, 1, 2] {
                let id = format!("rf_{factor}_crash_{crashes}");
                let backend = format!("churn{crashes}");
                let mut recorded = false;
                g.bench_function(&id, |b| {
                    b.iter(|| {
                        let plan = match crashes {
                            0 => FaultPlan::none(),
                            1 => FaultPlan::crash(5, SimTime::from_secs(3)),
                            _ => FaultPlan::crash(0, SimTime::from_secs(3))
                                .with(FaultSpec::Crash { site: 1, at: SimTime::from_secs(5) }),
                        };
                        // Same steady-state budget, snapshot window and CPU
                        // configuration as the partial-replication sweep, so
                        // the churn0 rows match its no-fault rows.
                        let mut cfg = ExperimentConfig::replicated(sites, clients)
                            .with_target(20_000)
                            .with_cert_backend(CertBackendKind::Indexed)
                            .with_replication_factor(factor)
                            .with_faults(plan);
                        cfg.history_window = 1 << 17;
                        cfg.cpus_per_site = 3;
                        let m = run_experiment(cfg.clone());
                        // A vote round stalled past its re-collect cap would
                        // park its clients forever and commits would collapse
                        // well below the no-crash baseline's ~15k — a
                        // genuine hang, not churn-degraded throughput.
                        assert!(
                            m.committed() >= 5_000,
                            "{id}: run stalled at {} commits",
                            m.committed()
                        );
                        if !recorded {
                            recorded = true;
                            println!("    {}", dbsm_core::report::summary_line(&id, &m));
                            rows.borrow_mut()
                                .push(CertBenchRow::from_metrics(&backend, 1, &cfg, &m));
                        }
                        black_box((
                            m.tpm(),
                            m.replacement_work.replacements,
                            m.replacement_work.rehomed_spans,
                            m.replacement_work.mean_time_to_serving_ms(),
                        ))
                    })
                });
            }
        }
        g.finish();
    }
    let rows = rows.into_inner();
    if !rows.is_empty() {
        let path = merge_and_write("ablation_cert_sharding", &rows).expect("merge BENCH_cert.json");
        println!("merged {} fresh rows into {}", rows.len(), path.display());
    }
}

criterion_group!(
    benches,
    bench_locking_policy,
    bench_sequencer_share,
    bench_ann_batching,
    bench_uniform_delivery,
    bench_fault_plans,
    bench_recovery,
    bench_cert_backend,
    bench_cert_sharding,
    bench_partial_replication,
    bench_vote_wire,
    bench_replacement,
);
criterion_main!(benches);

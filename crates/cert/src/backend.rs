//! Pluggable certification backends.
//!
//! The DBSM conflict check (§3.3) is a pure function of the totally ordered
//! request stream, so *how* the write history is organized is an
//! implementation choice as long as every backend reaches bit-identical
//! decisions. [`CertBackend`] captures the contract; three implementations
//! are provided:
//!
//! * [`LinearCertifier`] — the paper-faithful ordered-merge scan of every
//!   concurrent write-set. Cost grows with the conflict window
//!   (`history_scanned` × merge `comparisons`).
//! * [`IndexedCertifier`] — a per-table hash index from row number to the
//!   sequence numbers that wrote it, plus table-level wildcard and
//!   any-writer interval lists, so certification probes only the request's
//!   own keys. Cost is O(request) `probes`, independent of the window. This
//!   is the default.
//! * [`ShardedCertifier`](crate::ShardedCertifier) — the same index split
//!   into N keyed shards plus a spill shard, probed per request only where
//!   its read-set lands, and priced by the most-loaded shard (critical
//!   path) instead of the serial sum.
//!
//! The indexed and sharded backends are one generic
//! [`HistoryCertifier`](crate::HistoryCertifier) instantiated at different
//! [`IndexPlacement`](crate::IndexPlacement)s, so they share the history
//! window, gc semantics and the speculative certify/confirm pipeline; a
//! property test (`tests/properties.rs`) and this module's equivalence
//! tests hold every backend to identical outcome streams on the same
//! totally ordered input, and the smoke test runs each backend's 3-replica
//! experiment bit-reproducibly.

use crate::certifier::{CertWork, HistoryTruncated, LinearCertifier, Outcome};
use crate::placement::{
    evict_front, first_above, HistoryCertifier, IndexPlacement, ShardLoads, SpecProbe,
    SpecResolution, TableIndex,
};
use crate::request::CertRequest;
use crate::rwset::RwSet;
use crate::sharded::ShardedCertifier;
use crate::tuple::TableId;
use std::collections::HashMap;

/// The operations the replication layer needs from a certifier, independent
/// of how the write history is organized.
///
/// Implementations must be deterministic functions of the call sequence:
/// every replica feeds its backend the same totally ordered stream and must
/// reach the same [`Outcome`] — including the same `conflict_seq` on aborts,
/// which is defined as the *lowest* sequence number among conflicting
/// concurrent transactions (the first hit of the paper's linear scan).
pub trait CertBackend {
    /// Certifies a request delivered in total order, updating the history
    /// when it commits. See [`LinearCertifier::certify`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark, making a sound decision impossible.
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated>;

    /// Certifies a local read-only transaction without consuming a sequence
    /// number. See [`LinearCertifier::certify_read_only`].
    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork);

    /// Discards history at or below `stable_seq` (clamped to
    /// [`CertBackend::last_committed`]).
    fn gc(&mut self, stable_seq: u64);

    /// Sequence number of the last committed transaction (0 if none).
    fn last_committed(&self) -> u64;

    /// Committed write-sets currently retained.
    fn history_len(&self) -> usize;

    /// Oldest garbage-collected sequence number; snapshots below it cannot
    /// be certified.
    fn low_water(&self) -> u64;

    /// Number of parallel index servers certification probes are spread
    /// over — what a queueing simulation provisions as shard servers.
    /// Backends without parallel placement report 1.
    fn servers(&self) -> usize {
        1
    }

    /// Deep-copies the certifier behind the trait object. This is the donor
    /// half of a rejoin state transfer: a live site snapshots its certifier
    /// at the transfer cut and ships the copy to the rejoining site, which
    /// resumes certification bit-identically from that point (the copy's
    /// history, low-water mark and next sequence number all carry over).
    fn clone_box(&self) -> Box<dyn CertBackend>;

    /// Speculatively certifies a tentatively delivered request (pipelined
    /// commit path); see
    /// [`HistoryCertifier::speculate`](crate::HistoryCertifier::speculate).
    /// The default performs no speculation, so
    /// [`CertBackend::confirm`] degenerates to a full synchronous certify.
    fn speculate(&mut self, _req: &CertRequest) -> SpecProbe {
        SpecProbe::default()
    }

    /// Resolves a request at total-order delivery time against its
    /// speculation, with the bit-identical outcome of a synchronous
    /// [`CertBackend::certify`]; see
    /// [`HistoryCertifier::confirm`](crate::HistoryCertifier::confirm).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    fn confirm(
        &mut self,
        req: &CertRequest,
    ) -> Result<(Outcome, CertWork, SpecResolution), HistoryTruncated> {
        let (outcome, work) = self.certify(req)?;
        Ok((outcome, work, SpecResolution::Miss))
    }
}

impl CertBackend for LinearCertifier {
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        LinearCertifier::certify(self, req)
    }

    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        LinearCertifier::certify_read_only(self, read_set, start_seq)
    }

    fn gc(&mut self, stable_seq: u64) {
        LinearCertifier::gc(self, stable_seq)
    }

    fn last_committed(&self) -> u64 {
        LinearCertifier::last_committed(self)
    }

    fn history_len(&self) -> usize {
        LinearCertifier::history_len(self)
    }

    fn low_water(&self) -> u64 {
        LinearCertifier::low_water(self)
    }

    fn clone_box(&self) -> Box<dyn CertBackend> {
        Box::new(self.clone())
    }
}

impl<P: IndexPlacement + Clone + 'static> CertBackend for HistoryCertifier<P> {
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        HistoryCertifier::certify(self, req)
    }

    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        HistoryCertifier::certify_read_only(self, read_set, start_seq)
    }

    fn gc(&mut self, stable_seq: u64) {
        HistoryCertifier::gc(self, stable_seq)
    }

    fn last_committed(&self) -> u64 {
        HistoryCertifier::last_committed(self)
    }

    fn history_len(&self) -> usize {
        HistoryCertifier::history_len(self)
    }

    fn low_water(&self) -> u64 {
        HistoryCertifier::low_water(self)
    }

    fn servers(&self) -> usize {
        HistoryCertifier::servers(self)
    }

    fn speculate(&mut self, req: &CertRequest) -> SpecProbe {
        HistoryCertifier::speculate(self, req)
    }

    fn confirm(
        &mut self,
        req: &CertRequest,
    ) -> Result<(Outcome, CertWork, SpecResolution), HistoryTruncated> {
        HistoryCertifier::confirm(self, req)
    }

    fn clone_box(&self) -> Box<dyn CertBackend> {
        Box::new(self.clone())
    }
}

/// Selects which [`CertBackend`] implementation a site runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertBackendKind {
    /// The paper-faithful ordered-merge scan ([`LinearCertifier`]).
    Linear,
    /// The per-table write-history index ([`IndexedCertifier`]) — the
    /// default: same decisions as the linear scan at O(request) cost.
    #[default]
    Indexed,
    /// The N-way sharded index ([`ShardedCertifier`]) with critical-path
    /// cost accounting. Constructed through
    /// [`CertBackendKind::new_backend`] it shards by the generic
    /// [`row_shard_key`](crate::row_shard_key); deployments install a
    /// workload-aware key via [`ShardedCertifier::with_key`].
    Sharded {
        /// Number of keyed shards (a spill shard is added on top).
        shards: usize,
    },
}

impl CertBackendKind {
    /// Instantiates a fresh backend of this kind.
    pub fn new_backend(self) -> Box<dyn CertBackend> {
        match self {
            CertBackendKind::Linear => Box::new(LinearCertifier::new()),
            CertBackendKind::Indexed => Box::new(IndexedCertifier::new()),
            CertBackendKind::Sharded { shards } => Box::new(ShardedCertifier::new(shards)),
        }
    }

    /// Short lowercase name (used in bench ids and reports).
    pub fn name(self) -> &'static str {
        match self {
            CertBackendKind::Linear => "linear",
            CertBackendKind::Indexed => "indexed",
            CertBackendKind::Sharded { .. } => "sharded",
        }
    }
}

/// The unified (single-server) index placement: one per-table probe
/// structure holding every committed write, exactly the layout
/// [`IndexedCertifier`] has always used.
///
/// For every read-set entry the probe is: the row's writer list (was this
/// tuple overwritten concurrently?), the table's wildcard list (did a
/// table-level write cover it?), and — for wildcard reads — the table's
/// any-writer list. Each is a hash lookup plus one binary search, so the
/// total cost is proportional to the *request*, not to the conflict window.
#[derive(Debug, Clone, Default)]
pub struct UnifiedPlacement {
    /// The per-table probe structures.
    pub(crate) tables: HashMap<TableId, TableIndex>,
}

impl UnifiedPlacement {
    /// The probe loop with an id filter: entries rejected by `local` are
    /// skipped without bumping `loads` — a partially replicating site
    /// ([`SpanPlacement`](crate::SpanPlacement)) performs *no* work for
    /// tuples outside its span. The unfiltered placement passes `|_| true`.
    pub(crate) fn probe_where(
        &self,
        read_set: &RwSet,
        start_seq: u64,
        loads: &mut ShardLoads,
        mut local: impl FnMut(crate::TupleId) -> bool,
    ) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut note = |seq: Option<u64>| {
            if let Some(s) = seq {
                earliest = Some(earliest.map_or(s, |e| e.min(s)));
            }
        };
        for id in read_set.ids() {
            if !local(*id) {
                continue;
            }
            // The table lookup itself is one probe.
            loads.bump(0, 1);
            let Some(table) = self.tables.get(&id.table()) else { continue };
            if id.is_table_level() {
                // A wildcard read conflicts with any concurrent write to the
                // table.
                loads.bump(0, 1);
                note(first_above(&table.any_writer, start_seq));
            } else {
                // A row read conflicts with concurrent writes to that row or
                // with a concurrent table-level write.
                loads.bump(0, 2);
                note(first_above(&table.wildcard, start_seq));
                if let Some(rows) = table.rows.get(&id.row()) {
                    note(first_above(rows, start_seq));
                }
            }
        }
        earliest
    }

    /// [`IndexPlacement::index_writes`] with an id filter: only entries
    /// accepted by `local` land in the index.
    pub(crate) fn index_writes_where(
        &mut self,
        seq: u64,
        writes: &RwSet,
        mut local: impl FnMut(crate::TupleId) -> bool,
    ) {
        for id in writes.ids() {
            if !local(*id) {
                continue;
            }
            let table = self.tables.entry(id.table()).or_default();
            if id.is_table_level() {
                table.wildcard.push_back(seq);
            } else {
                table.rows.entry(id.row()).or_default().push_back(seq);
            }
            // One entry per (table, seq) pair: ids of the same table are
            // adjacent in the sorted write-set, so dedup against the back.
            if table.any_writer.back() != Some(&seq) {
                table.any_writer.push_back(seq);
            }
        }
    }

    /// [`IndexPlacement::unindex_writes`] with an id filter. The any-writer
    /// eviction runs only for tables that contributed at least one accepted
    /// id — mirroring what `index_writes_where` inserted, so a filtering
    /// placement stays internally consistent across gc.
    pub(crate) fn unindex_writes_where(
        &mut self,
        seq: u64,
        writes: &RwSet,
        mut local: impl FnMut(crate::TupleId) -> bool,
    ) {
        // Ids of the same table are adjacent in the sorted set; track per
        // table-run whether any id passed the filter.
        let mut run: Option<(TableId, bool)> = None;
        for id in writes.ids() {
            let t = id.table();
            if run.map(|(rt, _)| rt) != Some(t) {
                if let Some((prev, true)) = run {
                    self.evict_any_writer(prev, seq);
                }
                run = Some((t, false));
            }
            if !local(*id) {
                continue;
            }
            run = Some((t, true));
            let Some(table) = self.tables.get_mut(&t) else { continue };
            if id.is_table_level() {
                evict_front(&mut table.wildcard, seq);
            } else if let Some(rows) = table.rows.get_mut(&id.row()) {
                evict_front(rows, seq);
                if rows.is_empty() {
                    table.rows.remove(&id.row());
                }
            }
        }
        if let Some((prev, true)) = run {
            self.evict_any_writer(prev, seq);
        }
    }

    fn evict_any_writer(&mut self, t: TableId, seq: u64) {
        if let Some(table) = self.tables.get_mut(&t) {
            evict_front(&mut table.any_writer, seq);
            if table.is_empty() {
                self.tables.remove(&t);
            }
        }
    }
}

impl IndexPlacement for UnifiedPlacement {
    fn servers(&self) -> usize {
        1
    }

    fn probe(&self, read_set: &RwSet, start_seq: u64, loads: &mut ShardLoads) -> Option<u64> {
        self.probe_where(read_set, start_seq, loads, |_| true)
    }

    fn index_writes(&mut self, seq: u64, writes: &RwSet) {
        self.index_writes_where(seq, writes, |_| true);
    }

    fn unindex_writes(&mut self, seq: u64, writes: &RwSet) {
        self.unindex_writes_where(seq, writes, |_| true);
    }
}

/// A certifier that answers the DBSM conflict check from a per-table index
/// of the write history instead of scanning it: the generic
/// [`HistoryCertifier`] at the [`UnifiedPlacement`]. The index is
/// maintained incrementally: commits append, gc evicts exactly the entries
/// of the history rows it retires.
pub type IndexedCertifier = HistoryCertifier<UnifiedPlacement>;

impl IndexedCertifier {
    /// Creates an indexed certifier with an empty history; the first
    /// committed transaction receives sequence number 1.
    pub fn new() -> Self {
        HistoryCertifier::from_placement(UnifiedPlacement::default())
    }
}

impl Default for IndexedCertifier {
    fn default() -> Self {
        IndexedCertifier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;
    use crate::SiteId;

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn wild(t: u16) -> TupleId {
        TupleId::table_level(TableId(t))
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    /// A deterministic pseudo-random request stream exercising rows,
    /// wildcards, varying snapshots and varying set sizes.
    fn stream(len: u64) -> Vec<CertRequest> {
        let mut reqs = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..len {
            let reads: Vec<TupleId> = (0..rng() % 6)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 8 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let writes: Vec<TupleId> = (0..rng() % 4)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 16 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let back = rng() % 5;
            // Snapshots trail an optimistic commit count (request i sees at
            // most i commits); exactness does not matter, validity
            // (≥ low_water) does.
            reqs.push(req((i % 3) as u16, i, i.saturating_sub(back), &reads, &writes));
        }
        reqs
    }

    #[test]
    fn backends_agree_on_a_mixed_stream() {
        let mut linear = LinearCertifier::new();
        let mut indexed = IndexedCertifier::new();
        for (i, r) in stream(600).iter().enumerate() {
            let a = linear.certify(r);
            let b = indexed.certify(r);
            assert_eq!(a.map(|(o, _)| o), b.map(|(o, _)| o), "request {i} diverged");
            if i % 97 == 0 {
                let stable = linear.last_committed().saturating_sub(16);
                linear.gc(stable);
                indexed.gc(stable);
                assert_eq!(linear.low_water(), indexed.low_water());
            }
        }
        assert_eq!(linear.last_committed(), indexed.last_committed());
        assert_eq!(linear.history_len(), indexed.history_len());
    }

    #[test]
    fn three_replicas_per_backend_stay_identical() {
        // The deterministic multi-replica check of the linear certifier,
        // replayed across backend kinds: replicas of every kind (including
        // two shard counts) fed the same totally ordered stream all agree
        // with each other *and* across kinds.
        let mut replicas: Vec<Box<dyn CertBackend>> = vec![
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Sharded { shards: 2 }.new_backend(),
            CertBackendKind::Sharded { shards: 8 }.new_backend(),
        ];
        for r in &stream(300) {
            let outcomes: Vec<_> =
                replicas.iter_mut().map(|c| c.certify(r).expect("window").0).collect();
            assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "replicas diverged: {outcomes:?}");
        }
        let heads: Vec<u64> = replicas.iter().map(|c| c.last_committed()).collect();
        assert!(heads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn abort_reports_the_earliest_conflicting_seq() {
        // Two concurrent writers of the same tuple: the linear scan reports
        // the first (lowest-seq) one, so the index must too.
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("w1"); // seq 1
        c.certify(&req(0, 2, 1, &[], &[id(1, 5)])).expect("w2"); // seq 2
        let (o, _) = c.certify(&req(1, 3, 0, &[id(1, 5)], &[])).expect("reader");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        // A snapshot past the first writer sees only the second.
        let (o, _) = c.certify(&req(1, 4, 1, &[id(1, 5)], &[])).expect("reader");
        assert_eq!(o, Outcome::Abort { conflict_seq: 2 });
    }

    #[test]
    fn wildcard_reads_and_writes_conflict_through_the_index() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(3, 42)])).expect("row write"); // seq 1
        c.certify(&req(0, 2, 1, &[], &[wild(4)])).expect("table write"); // seq 2
                                                                         // Wildcard read vs row write.
        let (o, _) = c.certify(&req(1, 3, 0, &[wild(3)], &[])).expect("wild read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        // Row read vs wildcard write.
        let (o, _) = c.certify(&req(1, 4, 0, &[id(4, 9)], &[])).expect("row read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 2 });
        // Unrelated table commits.
        let (o, _) = c.certify(&req(1, 5, 0, &[id(5, 1)], &[])).expect("clean");
        assert!(o.is_commit());
    }

    #[test]
    fn gc_evicts_index_entries_incrementally() {
        let mut c = IndexedCertifier::new();
        for i in 0..32 {
            c.certify(&req(0, i, i, &[], &[id(1, i % 4 + 1), wild(2)])).expect("fill");
        }
        assert_eq!(c.history_len(), 32);
        assert_eq!(c.place.tables.len(), 2);
        c.gc(30);
        assert_eq!(c.history_len(), 2);
        let t1 = c.place.tables.get(&TableId(1)).expect("table 1 live");
        let total_row_seqs: usize = t1.rows.values().map(|v| v.len()).sum();
        assert_eq!(total_row_seqs, 2, "only uncollected writers remain indexed");
        assert_eq!(c.place.tables.get(&TableId(2)).expect("table 2 live").wildcard.len(), 2);
        // Full collection drops the tables entirely.
        c.gc(32);
        assert!(c.place.tables.is_empty());
        assert_eq!(c.history_len(), 0);
        // The emptied certifier still certifies fresh snapshots.
        let (o, _) = c.certify(&req(1, 99, 32, &[id(1, 1)], &[])).expect("fresh");
        assert!(o.is_commit());
    }

    #[test]
    fn probe_work_is_independent_of_history_depth() {
        // The acceptance claim behind the refactor: linear work grows with
        // the conflict window, indexed work stays O(request).
        let probe_reads: Vec<TupleId> = (1..=8).map(|r| id(9, r)).collect();
        let mut probes_by_depth = Vec::new();
        let mut scans_by_depth = Vec::new();
        for depth in [64u64, 512, 4096] {
            let mut linear = LinearCertifier::new();
            let mut indexed = IndexedCertifier::new();
            for i in 0..depth {
                let w = [id(1, i % 50 + 1)];
                linear.certify(&req(0, i, i, &[], &w)).expect("fill");
                indexed.certify(&req(0, i, i, &[], &w)).expect("fill");
            }
            let probe = req(1, depth, 0, &probe_reads, &[]);
            let (ol, wl) = linear.certify(&probe).expect("linear");
            let (oi, wi) = indexed.certify(&probe).expect("indexed");
            assert_eq!(ol, oi);
            probes_by_depth.push(wi.probes);
            scans_by_depth.push(wl.history_scanned);
        }
        assert_eq!(probes_by_depth[0], probes_by_depth[2], "probes flat in depth");
        assert!(scans_by_depth[2] > scans_by_depth[0] * 10, "linear scan grows with depth");
    }

    #[test]
    fn unified_placement_reports_single_server_accounting() {
        // The unified index is one server: plain probe counts, no
        // critical-path or fan-out fields — those belong to parallel
        // placements (and to the shard-server queueing model built on them).
        let mut c = IndexedCertifier::new();
        assert_eq!(CertBackend::servers(&c), 1);
        c.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("write");
        let (o, w) = c.certify(&req(1, 2, 0, &[id(1, 1)], &[])).expect("read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert!(w.probes > 0);
        assert_eq!(w.critical_probes, 0);
        assert_eq!(w.shards_touched, 0);
    }

    #[test]
    fn default_constructed_certifiers_are_valid() {
        // Regression: a derived Default would zero next_seq and make
        // last_committed() underflow; Default must agree with new().
        assert_eq!(IndexedCertifier::default().last_committed(), 0);
        assert_eq!(LinearCertifier::default().last_committed(), 0);
    }

    #[test]
    fn backend_kind_constructs_and_names() {
        // The default flipped to Indexed once the paper-scale figures were
        // re-validated under it; the linear scan stays selectable (and stays
        // exported as `Certifier`).
        assert_eq!(CertBackendKind::default(), CertBackendKind::Indexed);
        assert_eq!(CertBackendKind::Linear.name(), "linear");
        assert_eq!(CertBackendKind::Indexed.name(), "indexed");
        assert_eq!(CertBackendKind::Sharded { shards: 4 }.name(), "sharded");
        for kind in [
            CertBackendKind::Linear,
            CertBackendKind::Indexed,
            CertBackendKind::Sharded { shards: 4 },
        ] {
            let mut b = kind.new_backend();
            assert_eq!(b.last_committed(), 0);
            let (o, _) = b.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("first");
            assert_eq!(o, Outcome::Commit(1));
            assert_eq!(b.history_len(), 1);
            b.gc(1);
            assert_eq!(b.history_len(), 0);
            assert_eq!(b.low_water(), 1);
        }
    }

    #[test]
    fn clone_box_resumes_bit_identically_per_kind() {
        // The rejoin state transfer in miniature: feed a prefix, snapshot
        // via clone_box, then feed the same suffix to original and copy —
        // outcomes must match step for step, and the copy must be fully
        // independent of the original afterwards.
        let all = stream(400);
        let (prefix, suffix) = all.split_at(250);
        for kind in [
            CertBackendKind::Linear,
            CertBackendKind::Indexed,
            CertBackendKind::Sharded { shards: 4 },
        ] {
            let mut donor = kind.new_backend();
            for r in prefix {
                donor.certify(r).expect("prefix");
            }
            donor.gc(donor.last_committed().saturating_sub(64));
            let mut rejoiner = donor.clone_box();
            assert_eq!(rejoiner.last_committed(), donor.last_committed());
            assert_eq!(rejoiner.history_len(), donor.history_len());
            assert_eq!(rejoiner.low_water(), donor.low_water());
            assert_eq!(rejoiner.servers(), donor.servers());
            for r in suffix {
                let a = donor.certify(r).expect("donor").0;
                let b = rejoiner.certify(r).expect("rejoiner").0;
                assert_eq!(a, b, "kind {:?} txn {} diverged after clone", kind.name(), r.txn);
            }
            // Independence: mutating the copy leaves the donor untouched.
            rejoiner.gc(rejoiner.last_committed());
            assert_eq!(rejoiner.history_len(), 0);
            assert!(donor.history_len() > 0, "donor unaffected by the copy's gc");
        }
    }

    #[test]
    fn trait_speculation_matches_synchronous_outcomes_per_kind() {
        // Through the trait object — the way the cluster drives it — every
        // kind resolves speculations to the synchronous answer, including
        // the Linear default which simply misses into a full certify.
        for kind in [
            CertBackendKind::Linear,
            CertBackendKind::Indexed,
            CertBackendKind::Sharded { shards: 4 },
        ] {
            let mut sync = kind.new_backend();
            let mut pipe = kind.new_backend();
            for r in &stream(200) {
                pipe.speculate(r);
                let a = sync.certify(r).expect("sync").0;
                let (b, _, _) = pipe.confirm(r).expect("pipe");
                assert_eq!(a, b, "kind {:?} txn {} diverged", kind.name(), r.txn);
            }
            assert_eq!(sync.last_committed(), pipe.last_committed());
        }
    }
}

//! Pluggable certification backends.
//!
//! The DBSM conflict check (§3.3) is a pure function of the totally ordered
//! request stream, so *how* the write history is organized is an
//! implementation choice as long as every backend reaches bit-identical
//! decisions. [`CertBackend`] captures the contract; three implementations
//! are provided:
//!
//! * [`LinearCertifier`] — the paper-faithful ordered-merge scan of every
//!   concurrent write-set. Cost grows with the conflict window
//!   (`history_scanned` × merge `comparisons`).
//! * [`IndexedCertifier`] — a per-table hash index from row number to the
//!   sequence numbers that wrote it, plus table-level wildcard and
//!   any-writer interval lists, so certification probes only the request's
//!   own keys. Cost is O(request) `probes`, independent of the window. This
//!   is the default.
//! * [`ShardedCertifier`](crate::ShardedCertifier) — the same index split
//!   into N keyed shards plus a spill shard, probed per request only where
//!   its read-set lands, and priced by the most-loaded shard (critical
//!   path) instead of the serial sum.
//!
//! Both maintain the same low-water/garbage-collection semantics, so they
//! are interchangeable under the replication protocol; a property test
//! (`tests/properties.rs`) and this module's equivalence tests hold them to
//! identical outcome streams on the same totally ordered input, and the
//! smoke test runs each backend's 3-replica experiment bit-reproducibly.

use crate::certifier::{CertWork, HistoryTruncated, LinearCertifier, Outcome};
use crate::request::CertRequest;
use crate::rwset::RwSet;
use crate::sharded::ShardedCertifier;
use crate::tuple::TableId;
use std::collections::{HashMap, VecDeque};

/// The operations the replication layer needs from a certifier, independent
/// of how the write history is organized.
///
/// Implementations must be deterministic functions of the call sequence:
/// every replica feeds its backend the same totally ordered stream and must
/// reach the same [`Outcome`] — including the same `conflict_seq` on aborts,
/// which is defined as the *lowest* sequence number among conflicting
/// concurrent transactions (the first hit of the paper's linear scan).
pub trait CertBackend {
    /// Certifies a request delivered in total order, updating the history
    /// when it commits. See [`LinearCertifier::certify`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark, making a sound decision impossible.
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated>;

    /// Certifies a local read-only transaction without consuming a sequence
    /// number. See [`LinearCertifier::certify_read_only`].
    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork);

    /// Discards history at or below `stable_seq` (clamped to
    /// [`CertBackend::last_committed`]).
    fn gc(&mut self, stable_seq: u64);

    /// Sequence number of the last committed transaction (0 if none).
    fn last_committed(&self) -> u64;

    /// Committed write-sets currently retained.
    fn history_len(&self) -> usize;

    /// Oldest garbage-collected sequence number; snapshots below it cannot
    /// be certified.
    fn low_water(&self) -> u64;
}

impl CertBackend for LinearCertifier {
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        LinearCertifier::certify(self, req)
    }

    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        LinearCertifier::certify_read_only(self, read_set, start_seq)
    }

    fn gc(&mut self, stable_seq: u64) {
        LinearCertifier::gc(self, stable_seq)
    }

    fn last_committed(&self) -> u64 {
        LinearCertifier::last_committed(self)
    }

    fn history_len(&self) -> usize {
        LinearCertifier::history_len(self)
    }

    fn low_water(&self) -> u64 {
        LinearCertifier::low_water(self)
    }
}

/// Selects which [`CertBackend`] implementation a site runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertBackendKind {
    /// The paper-faithful ordered-merge scan ([`LinearCertifier`]).
    Linear,
    /// The per-table write-history index ([`IndexedCertifier`]) — the
    /// default: same decisions as the linear scan at O(request) cost.
    #[default]
    Indexed,
    /// The N-way sharded index ([`ShardedCertifier`]) with critical-path
    /// cost accounting. Constructed through
    /// [`CertBackendKind::new_backend`] it shards by the generic
    /// [`row_shard_key`](crate::row_shard_key); deployments install a
    /// workload-aware key via [`ShardedCertifier::with_key`].
    Sharded {
        /// Number of keyed shards (a spill shard is added on top).
        shards: usize,
    },
}

impl CertBackendKind {
    /// Instantiates a fresh backend of this kind.
    pub fn new_backend(self) -> Box<dyn CertBackend> {
        match self {
            CertBackendKind::Linear => Box::new(LinearCertifier::new()),
            CertBackendKind::Indexed => Box::new(IndexedCertifier::new()),
            CertBackendKind::Sharded { shards } => Box::new(ShardedCertifier::new(shards)),
        }
    }

    /// Short lowercase name (used in bench ids and reports).
    pub fn name(self) -> &'static str {
        match self {
            CertBackendKind::Linear => "linear",
            CertBackendKind::Indexed => "indexed",
            CertBackendKind::Sharded { .. } => "sharded",
        }
    }
}

/// Per-table slice of the write-history index.
///
/// All three containers hold *ascending* sequence numbers: commits arrive in
/// total order, so insertion is a push to the back, and garbage collection —
/// which retires the globally oldest history entry first — is a pop from the
/// front. A conflict probe is then a single `partition_point` for the first
/// sequence number above the request's snapshot.
#[derive(Debug, Clone, Default)]
pub(crate) struct TableIndex {
    /// Row number → sequence numbers of committed transactions that wrote it.
    pub(crate) rows: HashMap<u64, VecDeque<u64>>,
    /// Sequence numbers of table-level (wildcard) writes to this table.
    pub(crate) wildcard: VecDeque<u64>,
    /// Sequence numbers of *any* write touching this table (row or
    /// wildcard), deduplicated — the list a wildcard *read* probes.
    pub(crate) any_writer: VecDeque<u64>,
}

impl TableIndex {
    pub(crate) fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.wildcard.is_empty() && self.any_writer.is_empty()
    }
}

/// Smallest sequence number in `seqs` strictly above `start_seq`.
pub(crate) fn first_above(seqs: &VecDeque<u64>, start_seq: u64) -> Option<u64> {
    let i = seqs.partition_point(|s| *s <= start_seq);
    seqs.get(i).copied()
}

/// Pops the front of `seqs` when it equals the sequence number being
/// garbage-collected; eviction follows history order, so the retired
/// sequence number is always the oldest one present.
pub(crate) fn evict_front(seqs: &mut VecDeque<u64>, seq: u64) {
    debug_assert!(seqs.front().is_none_or(|s| *s >= seq), "eviction out of order");
    if seqs.front() == Some(&seq) {
        seqs.pop_front();
    }
}

/// A certifier that answers the DBSM conflict check from a per-table index
/// of the write history instead of scanning it.
///
/// For every read-set entry the probe is: the row's writer list (was this
/// tuple overwritten concurrently?), the table's wildcard list (did a
/// table-level write cover it?), and — for wildcard reads — the table's
/// any-writer list. Each is a hash lookup plus one binary search, so the
/// total cost is proportional to the *request*, not to the conflict window;
/// [`CertWork::probes`] counts those lookups. The index is maintained
/// incrementally: commits append, [`IndexedCertifier::gc`] evicts exactly
/// the entries of the history rows it retires.
#[derive(Debug, Clone)]
pub struct IndexedCertifier {
    /// Committed `(seq, write_set)` pairs, oldest first — retained only to
    /// drive incremental index eviction on gc.
    history: VecDeque<(u64, RwSet)>,
    /// The per-table probe structures.
    tables: HashMap<TableId, TableIndex>,
    /// Next global sequence number to assign.
    next_seq: u64,
    /// All sequence numbers `<= low_water` have been garbage collected.
    low_water: u64,
}

impl Default for IndexedCertifier {
    fn default() -> Self {
        IndexedCertifier::new()
    }
}

impl IndexedCertifier {
    /// Creates an indexed certifier with an empty history; the first
    /// committed transaction receives sequence number 1.
    pub fn new() -> Self {
        IndexedCertifier {
            history: VecDeque::new(),
            tables: HashMap::new(),
            next_seq: 1,
            low_water: 0,
        }
    }

    /// Sequence number of the last committed transaction (0 if none).
    pub fn last_committed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Number of write-sets retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Oldest garbage-collected sequence number.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Probes the index for the lowest sequence number above `start_seq`
    /// whose write-set intersects `read_set` — the same answer the linear
    /// scan's first hit gives, found in O(|read_set|) lookups.
    fn probe_conflicts(&self, read_set: &RwSet, start_seq: u64) -> (Option<u64>, CertWork) {
        let mut work = CertWork::default();
        let mut earliest: Option<u64> = None;
        let mut note = |seq: Option<u64>| {
            if let Some(s) = seq {
                earliest = Some(earliest.map_or(s, |e| e.min(s)));
            }
        };
        for id in read_set.ids() {
            // The table lookup itself is one probe.
            work.probes += 1;
            let Some(table) = self.tables.get(&id.table()) else { continue };
            if id.is_table_level() {
                // A wildcard read conflicts with any concurrent write to the
                // table.
                work.probes += 1;
                note(first_above(&table.any_writer, start_seq));
            } else {
                // A row read conflicts with concurrent writes to that row or
                // with a concurrent table-level write.
                work.probes += 2;
                note(first_above(&table.wildcard, start_seq));
                if let Some(rows) = table.rows.get(&id.row()) {
                    note(first_above(rows, start_seq));
                }
            }
        }
        (earliest, work)
    }

    /// Inserts a committed write-set into the index under `seq`.
    fn index_writes(&mut self, seq: u64, writes: &RwSet) {
        for id in writes.ids() {
            let table = self.tables.entry(id.table()).or_default();
            if id.is_table_level() {
                table.wildcard.push_back(seq);
            } else {
                table.rows.entry(id.row()).or_default().push_back(seq);
            }
            // One entry per (table, seq) pair: ids of the same table are
            // adjacent in the sorted write-set, so dedup against the back.
            if table.any_writer.back() != Some(&seq) {
                table.any_writer.push_back(seq);
            }
        }
    }

    /// Removes one retired history entry's contributions from the index.
    fn unindex_writes(&mut self, seq: u64, writes: &RwSet) {
        for id in writes.ids() {
            let Some(table) = self.tables.get_mut(&id.table()) else { continue };
            if id.is_table_level() {
                evict_front(&mut table.wildcard, seq);
            } else if let Some(rows) = table.rows.get_mut(&id.row()) {
                evict_front(rows, seq);
                if rows.is_empty() {
                    table.rows.remove(&id.row());
                }
            }
        }
        for t in writes.tables() {
            if let Some(table) = self.tables.get_mut(&t) {
                evict_front(&mut table.any_writer, seq);
                if table.is_empty() {
                    self.tables.remove(&t);
                }
            }
        }
    }

    /// Certifies a request delivered in total order; same contract and same
    /// decisions as [`LinearCertifier::certify`], at O(request) cost.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    pub fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        let (conflict, work) = self.probe_conflicts(&req.read_set, req.start_seq);
        if let Some(conflict_seq) = conflict {
            return Ok((Outcome::Abort { conflict_seq }, work));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if !req.write_set.is_empty() {
            self.index_writes(seq, &req.write_set);
            self.history.push_back((seq, req.write_set.clone()));
        }
        Ok((Outcome::Commit(seq), work))
    }

    /// Local read-only validation; same contract as
    /// [`LinearCertifier::certify_read_only`].
    pub fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        let (conflict, work) = self.probe_conflicts(read_set, start_seq);
        (conflict.is_none(), work)
    }

    /// Discards history at or below `stable_seq` (clamped to
    /// [`IndexedCertifier::last_committed`]), incrementally evicting the
    /// retired entries from the index.
    pub fn gc(&mut self, stable_seq: u64) {
        let stable_seq = stable_seq.min(self.last_committed());
        while let Some((seq, _)) = self.history.front() {
            if *seq > stable_seq {
                break;
            }
            let (seq, writes) = self.history.pop_front().expect("front just checked");
            self.unindex_writes(seq, &writes);
        }
        self.low_water = self.low_water.max(stable_seq);
    }
}

impl CertBackend for IndexedCertifier {
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        IndexedCertifier::certify(self, req)
    }

    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        IndexedCertifier::certify_read_only(self, read_set, start_seq)
    }

    fn gc(&mut self, stable_seq: u64) {
        IndexedCertifier::gc(self, stable_seq)
    }

    fn last_committed(&self) -> u64 {
        IndexedCertifier::last_committed(self)
    }

    fn history_len(&self) -> usize {
        IndexedCertifier::history_len(self)
    }

    fn low_water(&self) -> u64 {
        IndexedCertifier::low_water(self)
    }
}

impl CertBackend for ShardedCertifier {
    fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        ShardedCertifier::certify(self, req)
    }

    fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        ShardedCertifier::certify_read_only(self, read_set, start_seq)
    }

    fn gc(&mut self, stable_seq: u64) {
        ShardedCertifier::gc(self, stable_seq)
    }

    fn last_committed(&self) -> u64 {
        ShardedCertifier::last_committed(self)
    }

    fn history_len(&self) -> usize {
        ShardedCertifier::history_len(self)
    }

    fn low_water(&self) -> u64 {
        ShardedCertifier::low_water(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;
    use crate::SiteId;

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn wild(t: u16) -> TupleId {
        TupleId::table_level(TableId(t))
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    /// A deterministic pseudo-random request stream exercising rows,
    /// wildcards, varying snapshots and varying set sizes.
    fn stream(len: u64) -> Vec<CertRequest> {
        let mut reqs = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..len {
            let reads: Vec<TupleId> = (0..rng() % 6)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 8 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let writes: Vec<TupleId> = (0..rng() % 4)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 16 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let back = rng() % 5;
            // Snapshots trail an optimistic commit count (request i sees at
            // most i commits); exactness does not matter, validity
            // (≥ low_water) does.
            reqs.push(req((i % 3) as u16, i, i.saturating_sub(back), &reads, &writes));
        }
        reqs
    }

    #[test]
    fn backends_agree_on_a_mixed_stream() {
        let mut linear = LinearCertifier::new();
        let mut indexed = IndexedCertifier::new();
        for (i, r) in stream(600).iter().enumerate() {
            let a = linear.certify(r);
            let b = indexed.certify(r);
            assert_eq!(a.map(|(o, _)| o), b.map(|(o, _)| o), "request {i} diverged");
            if i % 97 == 0 {
                let stable = linear.last_committed().saturating_sub(16);
                linear.gc(stable);
                indexed.gc(stable);
                assert_eq!(linear.low_water(), indexed.low_water());
            }
        }
        assert_eq!(linear.last_committed(), indexed.last_committed());
        assert_eq!(linear.history_len(), indexed.history_len());
    }

    #[test]
    fn three_replicas_per_backend_stay_identical() {
        // The deterministic multi-replica check of the linear certifier,
        // replayed across backend kinds: replicas of every kind (including
        // two shard counts) fed the same totally ordered stream all agree
        // with each other *and* across kinds.
        let mut replicas: Vec<Box<dyn CertBackend>> = vec![
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Linear.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Indexed.new_backend(),
            CertBackendKind::Sharded { shards: 2 }.new_backend(),
            CertBackendKind::Sharded { shards: 8 }.new_backend(),
        ];
        for r in &stream(300) {
            let outcomes: Vec<_> =
                replicas.iter_mut().map(|c| c.certify(r).expect("window").0).collect();
            assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "replicas diverged: {outcomes:?}");
        }
        let heads: Vec<u64> = replicas.iter().map(|c| c.last_committed()).collect();
        assert!(heads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn abort_reports_the_earliest_conflicting_seq() {
        // Two concurrent writers of the same tuple: the linear scan reports
        // the first (lowest-seq) one, so the index must too.
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("w1"); // seq 1
        c.certify(&req(0, 2, 1, &[], &[id(1, 5)])).expect("w2"); // seq 2
        let (o, _) = c.certify(&req(1, 3, 0, &[id(1, 5)], &[])).expect("reader");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        // A snapshot past the first writer sees only the second.
        let (o, _) = c.certify(&req(1, 4, 1, &[id(1, 5)], &[])).expect("reader");
        assert_eq!(o, Outcome::Abort { conflict_seq: 2 });
    }

    #[test]
    fn wildcard_reads_and_writes_conflict_through_the_index() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(3, 42)])).expect("row write"); // seq 1
        c.certify(&req(0, 2, 1, &[], &[wild(4)])).expect("table write"); // seq 2
                                                                         // Wildcard read vs row write.
        let (o, _) = c.certify(&req(1, 3, 0, &[wild(3)], &[])).expect("wild read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        // Row read vs wildcard write.
        let (o, _) = c.certify(&req(1, 4, 0, &[id(4, 9)], &[])).expect("row read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 2 });
        // Unrelated table commits.
        let (o, _) = c.certify(&req(1, 5, 0, &[id(5, 1)], &[])).expect("clean");
        assert!(o.is_commit());
    }

    #[test]
    fn gc_evicts_index_entries_incrementally() {
        let mut c = IndexedCertifier::new();
        for i in 0..32 {
            c.certify(&req(0, i, i, &[], &[id(1, i % 4 + 1), wild(2)])).expect("fill");
        }
        assert_eq!(c.history_len(), 32);
        assert_eq!(c.tables.len(), 2);
        c.gc(30);
        assert_eq!(c.history_len(), 2);
        let t1 = c.tables.get(&TableId(1)).expect("table 1 live");
        let total_row_seqs: usize = t1.rows.values().map(|v| v.len()).sum();
        assert_eq!(total_row_seqs, 2, "only uncollected writers remain indexed");
        assert_eq!(c.tables.get(&TableId(2)).expect("table 2 live").wildcard.len(), 2);
        // Full collection drops the tables entirely.
        c.gc(32);
        assert!(c.tables.is_empty());
        assert_eq!(c.history_len(), 0);
        // The emptied certifier still certifies fresh snapshots.
        let (o, _) = c.certify(&req(1, 99, 32, &[id(1, 1)], &[])).expect("fresh");
        assert!(o.is_commit());
    }

    #[test]
    fn probe_work_is_independent_of_history_depth() {
        // The acceptance claim behind the refactor: linear work grows with
        // the conflict window, indexed work stays O(request).
        let probe_reads: Vec<TupleId> = (1..=8).map(|r| id(9, r)).collect();
        let mut probes_by_depth = Vec::new();
        let mut scans_by_depth = Vec::new();
        for depth in [64u64, 512, 4096] {
            let mut linear = LinearCertifier::new();
            let mut indexed = IndexedCertifier::new();
            for i in 0..depth {
                let w = [id(1, i % 50 + 1)];
                linear.certify(&req(0, i, i, &[], &w)).expect("fill");
                indexed.certify(&req(0, i, i, &[], &w)).expect("fill");
            }
            let probe = req(1, depth, 0, &probe_reads, &[]);
            let (ol, wl) = linear.certify(&probe).expect("linear");
            let (oi, wi) = indexed.certify(&probe).expect("indexed");
            assert_eq!(ol, oi);
            probes_by_depth.push(wi.probes);
            scans_by_depth.push(wl.history_scanned);
        }
        assert_eq!(probes_by_depth[0], probes_by_depth[2], "probes flat in depth");
        assert!(scans_by_depth[2] > scans_by_depth[0] * 10, "linear scan grows with depth");
    }

    #[test]
    fn default_constructed_certifiers_are_valid() {
        // Regression: a derived Default would zero next_seq and make
        // last_committed() underflow; Default must agree with new().
        assert_eq!(IndexedCertifier::default().last_committed(), 0);
        assert_eq!(LinearCertifier::default().last_committed(), 0);
    }

    #[test]
    fn backend_kind_constructs_and_names() {
        // The default flipped to Indexed once the paper-scale figures were
        // re-validated under it; the linear scan stays selectable (and stays
        // exported as `Certifier`).
        assert_eq!(CertBackendKind::default(), CertBackendKind::Indexed);
        assert_eq!(CertBackendKind::Linear.name(), "linear");
        assert_eq!(CertBackendKind::Indexed.name(), "indexed");
        assert_eq!(CertBackendKind::Sharded { shards: 4 }.name(), "sharded");
        for kind in [
            CertBackendKind::Linear,
            CertBackendKind::Indexed,
            CertBackendKind::Sharded { shards: 4 },
        ] {
            let mut b = kind.new_backend();
            assert_eq!(b.last_committed(), 0);
            let (o, _) = b.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("first");
            assert_eq!(o, Outcome::Commit(1));
            assert_eq!(b.history_len(), 1);
            b.gc(1);
            assert_eq!(b.history_len(), 0);
            assert_eq!(b.low_water(), 1);
        }
    }
}

//! # dbsm-cert — the DBSM certification prototype (real code)
//!
//! One of the two "real implementation" components the paper places under
//! simulation control (§3.3): tuple identifiers with the table id in the
//! high-order bits, sorted read/write sets with single-traversal conflict
//! detection, marshalling with realistic padding for written values, the
//! table-lock upgrade threshold for oversized read-sets, and the
//! deterministic certifier every replica runs over the totally ordered
//! request stream.
//!
//! Certification is pluggable behind the [`CertBackend`] trait:
//! [`LinearCertifier`] is the paper-faithful ordered-merge scan (re-exported
//! as [`Certifier`], its historical name), [`IndexedCertifier`] — the
//! default — answers the same conflict check from a per-table write-history
//! index in O(request) probes, and [`ShardedCertifier`] partitions that
//! index into N shards by a [`ShardKeyFn`] and reports critical-path cost
//! for parallel certification. All three produce bit-identical decisions;
//! select one with [`CertBackendKind`].
//!
//! The indexed and sharded backends are one generic [`HistoryCertifier`]
//! instantiated at different [`IndexPlacement`] strategies
//! ([`UnifiedPlacement`] / [`ShardedPlacement`]), which also hosts the
//! speculative certify/confirm pipeline ([`HistoryCertifier::speculate`] /
//! [`HistoryCertifier::confirm`]) used by the pipelined commit path to
//! overlap certification with the total-order broadcast.
//!
//! This crate is deliberately free of any simulation dependency: it is the
//! code "under test", driven identically by the simulation bridge and by
//! native deployments.
//!
//! # Examples
//!
//! ```
//! use dbsm_cert::{CertRequest, Certifier, Outcome, RwSet, SiteId, TableId, TupleId};
//!
//! let mut certifier = Certifier::new();
//! let t1 = CertRequest {
//!     site: SiteId(0),
//!     txn: 1,
//!     start_seq: 0,
//!     read_set: RwSet::new(),
//!     write_set: [TupleId::new(TableId(1), 7)].into_iter().collect(),
//!     write_bytes: 64,
//! };
//! let (outcome, _work) = certifier.certify(&t1)?;
//! assert_eq!(outcome, Outcome::Commit(1));
//! # Ok::<(), dbsm_cert::HistoryTruncated>(())
//! ```

#![warn(missing_docs)]

mod backend;
mod certifier;
mod marshal;
mod placement;
mod request;
mod rwset;
mod sharded;
mod span;
mod tuple;

pub use backend::{CertBackend, CertBackendKind, IndexedCertifier, UnifiedPlacement};
pub use certifier::{CertWork, Certifier, HistoryTruncated, LinearCertifier, Outcome};
pub use marshal::{marshal, marshalled_len, unmarshal, UnmarshalError, HEADER_LEN};
pub use placement::{HistoryCertifier, IndexPlacement, ShardLoads, SpecProbe, SpecResolution};
pub use request::CertRequest;
pub use rwset::RwSet;
pub use sharded::{row_shard_key, ShardKeyFn, ShardedCertifier, ShardedPlacement};
pub use span::{merge_votes, SpanCertifier, SpanPlacement};
pub use tuple::{TableId, TupleId, ROW_BITS, ROW_MASK};

/// Identifier of a database site (replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub u16);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

//! Read/write sets: sorted, deduplicated lists of [`TupleId`]s.
//!
//! "The runtime is minimized by keeping tuple identifiers ordered in both
//! lists, thus requiring only a single traversal to conclude the procedure"
//! (§3.3). The intersection test below is that single traversal, extended to
//! understand table-level (wildcard) entries.

use crate::tuple::{TableId, TupleId};

/// A sorted, duplicate-free set of tuple identifiers.
///
/// # Examples
///
/// ```
/// use dbsm_cert::{RwSet, TableId, TupleId};
///
/// let a = RwSet::from_iter([TupleId::new(TableId(1), 5), TupleId::new(TableId(1), 9)]);
/// let b = RwSet::from_iter([TupleId::new(TableId(1), 9)]);
/// assert!(a.intersects(&b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RwSet {
    ids: Vec<TupleId>,
}

impl RwSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RwSet::default()
    }

    /// Builds a set from an unsorted, possibly duplicated id list.
    pub fn from_unsorted(mut ids: Vec<TupleId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        RwSet { ids }
    }

    /// Builds from a list that the caller guarantees is already sorted and
    /// duplicate-free (e.g. straight off the wire after validation).
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if the invariant does not hold.
    pub fn from_sorted(ids: Vec<TupleId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted and unique");
        RwSet { ids }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set has no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The entries, sorted ascending.
    pub fn ids(&self) -> &[TupleId] {
        &self.ids
    }

    /// Membership test honouring wildcards in *this* set: a table-level
    /// entry contains every tuple of its table.
    pub fn contains(&self, id: TupleId) -> bool {
        if self.ids.binary_search(&id).is_ok() {
            return true;
        }
        !id.is_table_level() && self.ids.binary_search(&TupleId::table_level(id.table())).is_ok()
    }

    /// Single-traversal intersection test with wildcard awareness: a
    /// table-level entry in either set conflicts with any entry of the same
    /// table in the other.
    pub fn intersects(&self, other: &RwSet) -> bool {
        self.intersect_stats(other).0
    }

    /// Intersection test that also reports how many entries were examined —
    /// the cost driver used to charge simulated CPU for certification.
    pub fn intersect_stats(&self, other: &RwSet) -> (bool, usize) {
        let (a, b) = (&self.ids, &other.ids);
        let (mut i, mut j, mut steps) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            steps += 1;
            let (x, y) = (a[i], b[j]);
            if x == y {
                return (true, steps);
            }
            // Wildcards sort first within their table, so when x < y and x is
            // a wildcard of y's table, it covers y (and vice versa).
            if x < y {
                if x.is_table_level() && x.table() == y.table() {
                    return (true, steps);
                }
                i += 1;
            } else {
                if y.is_table_level() && y.table() == x.table() {
                    return (true, steps);
                }
                j += 1;
            }
        }
        (false, steps)
    }

    /// Upgrades per-tuple entries to a single table-level entry for every
    /// table with more than `threshold` entries — the read-set compression
    /// of §3.3 ("similar to the common practice of upgrading individual
    /// locks on tuples to a single table lock"). Returns the number of
    /// tables upgraded.
    pub fn upgrade_large_tables(&mut self, threshold: usize) -> usize {
        if self.ids.len() <= threshold {
            return 0;
        }
        // First pass: detect whether any table actually exceeds the
        // threshold. Certification runs this per request, and most requests
        // upgrade nothing — deciding that must not allocate.
        if !self.has_table_run_longer_than(threshold) {
            return 0;
        }
        let mut out: Vec<TupleId> = Vec::with_capacity(self.ids.len());
        let mut upgraded = 0usize;
        let mut i = 0;
        while i < self.ids.len() {
            let table = self.ids[i].table();
            let mut j = i;
            while j < self.ids.len() && self.ids[j].table() == table {
                j += 1;
            }
            if j - i > threshold {
                out.push(TupleId::table_level(table));
                upgraded += 1;
            } else {
                out.extend_from_slice(&self.ids[i..j]);
            }
            i = j;
        }
        self.ids = out;
        upgraded
    }

    /// True when some table contributes more than `threshold` entries — the
    /// allocation-free pre-check of [`RwSet::upgrade_large_tables`] (ids are
    /// sorted, so each table is one contiguous run).
    fn has_table_run_longer_than(&self, threshold: usize) -> bool {
        let mut run_start = 0usize;
        for i in 1..=self.ids.len() {
            if i == self.ids.len() || self.ids[i].table() != self.ids[run_start].table() {
                if i - run_start > threshold {
                    return true;
                }
                run_start = i;
            }
        }
        false
    }

    /// Iterates over the distinct tables present in the set.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        let mut last: Option<TableId> = None;
        self.ids.iter().filter_map(move |id| {
            let t = id.table();
            if last == Some(t) {
                None
            } else {
                last = Some(t);
                Some(t)
            }
        })
    }

    /// Merges `other` into this set.
    pub fn union_with(&mut self, other: &RwSet) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (a, b) = (&self.ids, &other.ids);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.ids = merged;
    }
}

impl FromIterator<TupleId> for RwSet {
    fn from_iter<T: IntoIterator<Item = TupleId>>(iter: T) -> Self {
        RwSet::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<TupleId> for RwSet {
    fn extend<T: IntoIterator<Item = TupleId>>(&mut self, iter: T) {
        let add: RwSet = iter.into_iter().collect();
        self.union_with(&add);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn wild(t: u16) -> TupleId {
        TupleId::table_level(TableId(t))
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = RwSet::from_unsorted(vec![id(1, 3), id(1, 1), id(1, 3), id(0, 9)]);
        assert_eq!(s.ids(), &[id(0, 9), id(1, 1), id(1, 3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a = RwSet::from_iter([id(1, 1), id(1, 3)]);
        let b = RwSet::from_iter([id(1, 2), id(2, 1)]);
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
    }

    #[test]
    fn shared_tuple_intersects() {
        let a = RwSet::from_iter([id(1, 1), id(2, 7)]);
        let b = RwSet::from_iter([id(2, 7)]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn wildcard_conflicts_with_same_table_rows() {
        let a = RwSet::from_iter([wild(2)]);
        let b = RwSet::from_iter([id(2, 99)]);
        let c = RwSet::from_iter([id(3, 99)]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Wildcard vs wildcard of the same table.
        let d = RwSet::from_iter([wild(2)]);
        assert!(a.intersects(&d));
    }

    #[test]
    fn empty_sets_never_intersect() {
        let a = RwSet::new();
        let b = RwSet::from_iter([id(1, 1)]);
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
        assert!(!a.intersects(&RwSet::new()));
        assert!(a.is_empty());
    }

    #[test]
    fn contains_honours_wildcards() {
        let s = RwSet::from_iter([wild(1), id(2, 5)]);
        assert!(s.contains(id(1, 123)));
        assert!(s.contains(id(2, 5)));
        assert!(!s.contains(id(2, 6)));
        assert!(s.contains(wild(1)));
        assert!(!s.contains(wild(2)));
    }

    #[test]
    fn upgrade_compresses_large_tables_only() {
        let mut s: RwSet = (1..=10).map(|r| id(1, r)).chain([id(2, 1)]).collect();
        let upgraded = s.upgrade_large_tables(5);
        assert_eq!(upgraded, 1);
        assert_eq!(s.ids(), &[wild(1), id(2, 1)]);
        // Below threshold: untouched.
        let mut t: RwSet = (1..=3).map(|r| id(1, r)).collect();
        assert_eq!(t.upgrade_large_tables(5), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn upgrade_fast_path_skips_sets_with_no_oversized_table() {
        // Total size above the threshold but no single table over it: the
        // allocation-free pre-check must decline without rebuilding.
        let mut s: RwSet = (1u16..=3).flat_map(|t| (1..=3).map(move |r| id(t, r))).collect();
        assert_eq!(s.len(), 9);
        let before = s.clone();
        assert_eq!(s.upgrade_large_tables(5), 0);
        assert_eq!(s, before, "set untouched when nothing upgrades");
        // And the boundary: exactly threshold entries in one table does not
        // upgrade, threshold+1 does.
        let mut at: RwSet = (1..=5).map(|r| id(7, r)).chain([id(8, 1)]).collect();
        assert_eq!(at.upgrade_large_tables(5), 0);
        let mut over: RwSet = (1..=6).map(|r| id(7, r)).chain([id(8, 1)]).collect();
        assert_eq!(over.upgrade_large_tables(5), 1);
        assert_eq!(over.ids()[0], wild(7));
    }

    #[test]
    fn upgraded_set_still_conflicts_with_original_rows() {
        let mut big: RwSet = (1..=100).map(|r| id(7, r)).collect();
        big.upgrade_large_tables(10);
        let probe = RwSet::from_iter([id(7, 55)]);
        assert!(big.intersects(&probe));
    }

    #[test]
    fn union_merges_sorted() {
        let mut a = RwSet::from_iter([id(1, 1), id(1, 5)]);
        a.union_with(&RwSet::from_iter([id(1, 3), id(1, 5)]));
        assert_eq!(a.ids(), &[id(1, 1), id(1, 3), id(1, 5)]);
    }

    #[test]
    fn tables_lists_distinct_tables() {
        let s = RwSet::from_iter([id(1, 1), id(1, 2), id(3, 1)]);
        let tables: Vec<TableId> = s.tables().collect();
        assert_eq!(tables, vec![TableId(1), TableId(3)]);
    }

    #[test]
    fn intersect_stats_reports_work() {
        let a: RwSet = (1..=100).map(|r| id(1, 2 * r)).collect();
        let b: RwSet = (1..=100).map(|r| id(1, 2 * r + 1)).collect();
        let (hit, steps) = a.intersect_stats(&b);
        assert!(!hit);
        assert!(steps >= 100, "steps {steps}");
    }
}

//! Span-restricted certification for partial replication.
//!
//! Under *genuine partial replication* (Sutra & Shapiro) each replica
//! stores — and therefore can certify — only the rows of the warehouses it
//! replicates, its **span**. [`SpanPlacement`] is an [`IndexPlacement`]
//! whose probe index holds exactly that slice of the committed write
//! history: a [`ShardKeyFn`] maps every tuple to a span (tuples it maps to
//! `None` — the shared item catalogue, table-level wildcards — are treated
//! as replicated everywhere), and ids outside the owned span set are
//! skipped *without performing any probe work*, which is where the k/N
//! certification saving comes from.
//!
//! [`SpanCertifier`] is the [`HistoryCertifier`] instantiated at this
//! placement, driven through the vote/apply split instead of the one-shot
//! `certify`:
//!
//! * [`HistoryCertifier::vote`] probes the local span and returns the
//!   site's *verdict* — the lowest conflicting sequence number among the
//!   tuples it indexes, or `None`;
//! * [`merge_votes`] combines a covering set of per-span verdicts by the
//!   same earliest-conflict rule the full certifier uses;
//! * [`HistoryCertifier::apply`] applies the merged decision, advancing the
//!   shared sequence counter in lockstep on every replica while indexing
//!   only the local slice of the write-set.
//!
//! # Why the merge is exact
//!
//! The full certifier's conflict answer is the minimum, over the read-set's
//! tuples, of each tuple's first committed writer above the snapshot. The
//! span key partitions the tuple space (with `None`-span tuples owned by
//! every replica), so as long as every read tuple is covered by at least
//! one voting replica, the minimum of the per-span minima *is* the global
//! minimum — the merged outcome is bit-identical to full replication. The
//! property test `partial_matches_full_replication_outcome_streams`
//! (`tests/properties.rs`) checks this against [`IndexedCertifier`] over
//! random streams, placements and gc interleavings.

use crate::backend::UnifiedPlacement;
use crate::placement::{HistoryCertifier, IndexPlacement, ShardLoads};
use crate::rwset::RwSet;
use crate::sharded::ShardKeyFn;
use crate::tuple::TupleId;

/// An [`IndexPlacement`] restricted to a set of owned spans: committed
/// writes are indexed — and read-sets probed — only for tuples whose
/// [`ShardKeyFn`] span this replica owns (or whose span is `None`,
/// meaning replicated everywhere). Everything else costs nothing here.
#[derive(Debug, Clone)]
pub struct SpanPlacement {
    inner: UnifiedPlacement,
    span_of: ShardKeyFn,
    /// Owned span ids, sorted for binary-search membership.
    owned: Vec<u64>,
}

impl SpanPlacement {
    /// Creates a placement owning `owned` spans under the `span_of` key.
    pub fn new(span_of: ShardKeyFn, owned: impl IntoIterator<Item = u64>) -> Self {
        let mut owned: Vec<u64> = owned.into_iter().collect();
        owned.sort_unstable();
        owned.dedup();
        SpanPlacement { inner: UnifiedPlacement::default(), span_of, owned }
    }

    /// True when this replica stores `id`: its span is owned, or the key
    /// maps it to no span (replicated everywhere).
    pub fn is_local(&self, id: TupleId) -> bool {
        (self.span_of)(id).is_none_or(|s| self.owned.binary_search(&s).is_ok())
    }

    /// The owned span ids, sorted ascending.
    pub fn owned_spans(&self) -> &[u64] {
        &self.owned
    }

    /// `(local, total)` id counts of `set` — the numerator/denominator of
    /// the `span_fraction` metric.
    pub fn coverage(&self, set: &RwSet) -> (usize, usize) {
        let local = set.ids().iter().filter(|&&id| self.is_local(id)).count();
        (local, set.len())
    }

    /// The subset of `set` stored by this replica (what a remote write-set
    /// application touches here).
    pub fn local_subset(&self, set: &RwSet) -> RwSet {
        // Filtering a sorted set preserves order.
        RwSet::from_sorted(set.ids().iter().copied().filter(|&id| self.is_local(id)).collect())
    }
}

impl IndexPlacement for SpanPlacement {
    fn servers(&self) -> usize {
        1
    }

    fn probe(&self, read_set: &RwSet, start_seq: u64, loads: &mut ShardLoads) -> Option<u64> {
        self.inner.probe_where(read_set, start_seq, loads, |id| self.is_local(id))
    }

    fn index_writes(&mut self, seq: u64, writes: &RwSet) {
        let SpanPlacement { inner, span_of, owned } = self;
        inner.index_writes_where(seq, writes, |id| {
            (span_of)(id).is_none_or(|s| owned.binary_search(&s).is_ok())
        });
    }

    fn unindex_writes(&mut self, seq: u64, writes: &RwSet) {
        let SpanPlacement { inner, span_of, owned } = self;
        inner.unindex_writes_where(seq, writes, |id| {
            (span_of)(id).is_none_or(|s| owned.binary_search(&s).is_ok())
        });
    }
}

/// A partially replicating site's certifier: the generic
/// [`HistoryCertifier`] over a [`SpanPlacement`]. Drive it with
/// [`HistoryCertifier::vote`] / [`merge_votes`] /
/// [`HistoryCertifier::apply`]; its `certify` would decide from the local
/// span alone, which is only correct when the placement covers every span.
pub type SpanCertifier = HistoryCertifier<SpanPlacement>;

impl SpanCertifier {
    /// Creates a certifier owning `owned` spans under the `span_of` key,
    /// with an empty history; the first committed transaction receives
    /// sequence number 1.
    pub fn with_span(span_of: ShardKeyFn, owned: impl IntoIterator<Item = u64>) -> Self {
        HistoryCertifier::from_placement(SpanPlacement::new(span_of, owned))
    }

    /// True when this replica stores `id` (owned span or `None`-span).
    pub fn is_local(&self, id: TupleId) -> bool {
        self.place.is_local(id)
    }

    /// The owned span ids, sorted ascending.
    pub fn owned_spans(&self) -> &[u64] {
        self.place.owned_spans()
    }

    /// `(local, total)` id counts of `set` on this replica.
    pub fn coverage(&self, set: &RwSet) -> (usize, usize) {
        self.place.coverage(set)
    }

    /// The subset of `set` stored by this replica.
    pub fn local_subset(&self, set: &RwSet) -> RwSet {
        self.place.local_subset(set)
    }
}

/// Combines per-span verdicts by the earliest-conflict rule: the merged
/// conflict is the lowest sequence number any voter reported, `None` when
/// every voter passed. Exactly the full certifier's rule, so a covering
/// vote set reproduces its outcome bit for bit.
pub fn merge_votes(votes: impl IntoIterator<Item = Option<u64>>) -> Option<u64> {
    votes.into_iter().flatten().min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::Outcome;
    use crate::request::CertRequest;
    use crate::tuple::TableId;
    use crate::{IndexedCertifier, SiteId};

    /// Test span key: span = row % 4; table 0 and wildcards are global.
    fn span4(id: TupleId) -> Option<u64> {
        if id.is_table_level() || id.table().0 == 0 {
            None
        } else {
            Some(id.row() % 4)
        }
    }

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    #[test]
    fn locality_honours_owned_spans_and_globals() {
        let c = SpanCertifier::with_span(span4, [1, 3]);
        assert!(c.is_local(id(1, 5)), "row 5 -> span 1, owned");
        assert!(!c.is_local(id(1, 4)), "row 4 -> span 0, foreign");
        assert!(c.is_local(id(0, 4)), "table 0 is global");
        assert!(c.is_local(TupleId::table_level(TableId(7))), "wildcards are global");
        assert_eq!(c.owned_spans(), &[1, 3]);
    }

    #[test]
    fn foreign_tuples_cost_no_probe_work() {
        let mut c = SpanCertifier::with_span(span4, [1]);
        c.apply(&req(0, 1, 0, &[], &[id(1, 1), id(1, 2)]), Outcome::Commit(1));
        // Only the foreign tuple: zero probes, no verdict.
        let (conflict, work) = c.vote(&req(1, 2, 0, &[id(1, 2)], &[])).expect("vote");
        assert_eq!(conflict, None);
        assert_eq!(work.probes, 0, "foreign span is not probed");
        // The local tuple conflicts and is charged.
        let (conflict, work) = c.vote(&req(1, 3, 0, &[id(1, 1)], &[])).expect("vote");
        assert_eq!(conflict, Some(1));
        assert!(work.probes > 0);
    }

    #[test]
    fn apply_keeps_sequence_lockstep_without_indexing_foreign_writes() {
        let mut c = SpanCertifier::with_span(span4, [0]);
        // A commit writing only foreign tuples still consumes the sequence
        // number (every replica applies the same decision stream).
        c.apply(&req(0, 1, 0, &[], &[id(1, 1)]), Outcome::Commit(1));
        assert_eq!(c.last_committed(), 1);
        // An abort consumes nothing.
        c.apply(&req(0, 2, 0, &[id(1, 4)], &[]), Outcome::Abort { conflict_seq: 1 });
        assert_eq!(c.last_committed(), 1);
        // The foreign write was not indexed: a local-span read of the same
        // row (impossible in a real placement, but the index must agree).
        let (conflict, _) = c.vote(&req(1, 3, 0, &[id(1, 4)], &[])).expect("vote");
        assert_eq!(conflict, None);
    }

    #[test]
    fn covering_votes_merge_to_the_full_verdict() {
        // Two replicas covering spans {0,1} and {2,3}; a full certifier is
        // the ground truth.
        let mut a = SpanCertifier::with_span(span4, [0, 1]);
        let mut b = SpanCertifier::with_span(span4, [2, 3]);
        let mut full = IndexedCertifier::new();
        let stream = [
            req(0, 1, 0, &[], &[id(1, 4), id(1, 6)]), // spans 0 and 2
            req(0, 2, 0, &[], &[id(1, 5)]),           // span 1
            req(1, 3, 0, &[id(1, 6), id(1, 5)], &[]), // cross-span reader
            req(1, 4, 1, &[id(1, 6)], &[id(1, 7)]),
            req(0, 5, 2, &[id(0, 9)], &[id(0, 9)]), // global tuples
        ];
        for r in &stream {
            let va = a.vote(r).expect("a");
            let vb = b.vote(r).expect("b");
            let merged = merge_votes([va.0, vb.0]);
            let (expect, _) = full.certify(r).expect("full");
            let outcome = match merged {
                Some(conflict_seq) => Outcome::Abort { conflict_seq },
                None => Outcome::Commit(a.last_committed() + 1),
            };
            assert_eq!(outcome, expect, "txn {} diverged", r.txn);
            a.apply(r, outcome);
            b.apply(r, outcome);
            assert_eq!(a.last_committed(), full.last_committed());
            assert_eq!(b.last_committed(), full.last_committed());
        }
    }

    #[test]
    fn cross_span_conflict_aborts_identically_on_every_voting_site() {
        // The integration shape: a transaction reading spans owned by
        // different sites conflicts only on the remote span; the merged
        // abort is applied identically everywhere.
        let mut members: Vec<SpanCertifier> = vec![
            SpanCertifier::with_span(span4, [0, 1]),
            SpanCertifier::with_span(span4, [1, 2]),
            SpanCertifier::with_span(span4, [2, 3]),
            SpanCertifier::with_span(span4, [3, 0]),
        ];
        let mut full = IndexedCertifier::new();
        let writer = req(0, 1, 0, &[], &[id(1, 6)]); // span 2
        let reader = req(3, 2, 0, &[id(1, 4), id(1, 6)], &[id(1, 4)]); // spans 0+2
        for r in [&writer, &reader] {
            let votes: Vec<Option<u64>> =
                members.iter().map(|m| m.vote(r).expect("vote").0).collect();
            let merged = merge_votes(votes.iter().copied());
            let (expect, _) = full.certify(r).expect("full");
            let outcome = match merged {
                Some(conflict_seq) => Outcome::Abort { conflict_seq },
                None => Outcome::Commit(full.last_committed()),
            };
            assert_eq!(outcome, expect);
            for m in &mut members {
                m.apply(r, outcome);
            }
        }
        // The reader aborted: only sites owning span 2 saw the conflict,
        // but *all* sites recorded the same abort (sequence unchanged).
        for m in &members {
            assert_eq!(m.last_committed(), 1);
            assert_eq!(m.last_committed(), full.last_committed());
        }
    }

    #[test]
    fn gc_keeps_filtered_history_consistent() {
        let mut c = SpanCertifier::with_span(span4, [1]);
        for i in 0..40u64 {
            // Mixed local/foreign/global writes.
            let w = [id(1, i % 8 + 1), id(0, 3)];
            c.apply(&req(0, i, i, &[], &w), Outcome::Commit(i + 1));
        }
        assert_eq!(c.history_len(), 40);
        c.gc(38);
        assert_eq!(c.history_len(), 2);
        assert_eq!(c.low_water(), 38);
        // Votes against fresh snapshots still work after eviction.
        let (conflict, _) = c.vote(&req(1, 99, 38, &[id(0, 3)], &[])).expect("fresh");
        assert!(conflict.is_some(), "surviving global writers still indexed");
        let err = c.vote(&req(1, 100, 2, &[id(1, 1)], &[])).expect_err("stale");
        assert_eq!(err.low_water, 38);
    }

    #[test]
    fn local_subset_and_coverage() {
        let c = SpanCertifier::with_span(span4, [0]);
        let set: RwSet = [id(1, 4), id(1, 5), id(0, 1)].into_iter().collect();
        assert_eq!(c.coverage(&set), (2, 3));
        let local = c.local_subset(&set);
        assert_eq!(local.ids(), &[id(0, 1), id(1, 4)]);
    }
}

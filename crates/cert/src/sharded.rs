//! N-way sharded certification: the write-history index partitioned by a
//! tuple shard key, probed in parallel, priced by its critical path.
//!
//! [`ShardedCertifier`] splits the per-table write-history index of
//! [`IndexedCertifier`](crate::IndexedCertifier) into `N` keyed shards plus
//! one *spill* shard. A pure [`ShardKeyFn`] maps every row-level tuple to a
//! partition key (for the TPC-C workload: the home warehouse); tuples with
//! no extractable key and all table-level (wildcard) entries live in the
//! spill shard. Certification probes only the shards the request's read-set
//! actually touches, so independent requests — disjoint key ranges — probe
//! disjoint shards and could be certified by `N` worker threads without
//! synchronizing on a shared index.
//!
//! Decisions are **bit-identical** to [`LinearCertifier`] and
//! [`IndexedCertifier`](crate::IndexedCertifier) for *every* shard count and
//! *every* key function: the shard map only changes where an index entry is
//! stored, never whether a conflict is found or which `conflict_seq` is
//! reported. The property test `sharded_matches_linear_outcome_streams` and
//! this module's unit tests enforce that, including under interleaved
//! garbage collection.
//!
//! What sharding *does* change is the cost shape reported through
//! [`CertWork`]: `probes` stays the total work across all shards, while
//! `critical_probes` is the most-loaded shard's share (the critical path of
//! an N-way parallel certification) and `shards_touched` counts the fan-out
//! that a merge step must join. The simulation prices a sharded
//! certification as `max(per-shard probe cost) + merge × shards touched`
//! instead of the serial sum — or, with first-class shard servers, queues
//! each shard's probes on its own FIFO server.
//!
//! Since the placement refactor the certifier itself is the generic
//! [`HistoryCertifier`](crate::HistoryCertifier); this module contributes
//! only [`ShardedPlacement`], the index-placement strategy.
//!
//! # Index placement
//!
//! * A **row-level write** is indexed in its key's shard (row list and
//!   table any-writer list).
//! * A **table-level (wildcard) write** covers rows in every shard, so it is
//!   replicated into every shard's wildcard and any-writer lists — rare
//!   (only read-set upgrades produce wildcards in TPC-C) and cheap.
//! * A **row-level read** probes exactly its key's shard: the row list plus
//!   that shard's wildcard list (complete, because wildcards are
//!   replicated).
//! * A **table-level read** conflicts with any write to the table, wherever
//!   it was indexed, so it probes every shard's any-writer list — the
//!   cross-shard case the spill/merge pricing accounts for.
//!
//! [`LinearCertifier`]: crate::LinearCertifier
//! [`CertWork`]: crate::CertWork

use crate::placement::{
    evict_front, first_above, HistoryCertifier, IndexPlacement, ShardLoads, TableIndex,
};
use crate::rwset::RwSet;
use crate::tuple::{TableId, TupleId};
use std::collections::HashMap;

/// Maps a row-level tuple to its partition key, or `None` for tuples that
/// have no extractable key (routed to the spill shard).
///
/// The function must be **pure** (same tuple, same key — every replica of a
/// site configuration shards identically) and is never called with
/// table-level entries: wildcards are handled by the certifier itself.
/// Correctness does not depend on the key at all; only load balance does.
pub type ShardKeyFn = fn(TupleId) -> Option<u64>;

/// The default shard key: the row number. Generic and uniform for synthetic
/// workloads; real deployments install a locality-aware key (e.g. the TPC-C
/// home warehouse) so one transaction's tuples cluster in few shards.
pub fn row_shard_key(id: TupleId) -> Option<u64> {
    Some(id.row())
}

/// One shard's slice of the write-history index: per-table row, wildcard
/// and any-writer lists, exactly the [`IndexedCertifier`] structures scoped
/// to the tuples mapped here.
///
/// [`IndexedCertifier`]: crate::IndexedCertifier
#[derive(Debug, Clone, Default)]
struct Shard {
    tables: HashMap<TableId, TableIndex>,
}

/// The N-way sharded index placement: keyed shards `0..n` plus the spill
/// shard at index `n`, each an independent index server. See the module
/// documentation for the placement rules and the equivalence guarantee.
#[derive(Debug, Clone)]
pub struct ShardedPlacement {
    /// Keyed shards `0..n` plus the spill shard at index `n`.
    shards: Vec<Shard>,
    /// The partition key for row-level tuples.
    key: ShardKeyFn,
}

impl ShardedPlacement {
    /// Creates a placement with `shards` keyed shards plus the spill shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, key: ShardKeyFn) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardedPlacement { shards: vec![Shard::default(); shards + 1], key }
    }

    /// Number of keyed shards (the spill shard is extra).
    pub fn shard_count(&self) -> usize {
        self.shards.len() - 1
    }

    /// Index of the spill shard.
    fn spill(&self) -> usize {
        self.shards.len() - 1
    }

    /// Home shard of a row-level tuple.
    fn shard_of(&self, id: TupleId) -> usize {
        debug_assert!(!id.is_table_level(), "wildcards have no home shard");
        match (self.key)(id) {
            Some(k) => (k % self.shard_count() as u64) as usize,
            None => self.spill(),
        }
    }
}

impl IndexPlacement for ShardedPlacement {
    fn servers(&self) -> usize {
        self.shards.len()
    }

    /// Probes the sharded index for the lowest sequence number above
    /// `start_seq` whose write-set intersects `read_set` — the same answer
    /// the linear scan's first hit gives — while accounting probes per
    /// shard so the fold can report the critical path.
    fn probe(&self, read_set: &RwSet, start_seq: u64, loads: &mut ShardLoads) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut note = |seq: Option<u64>| {
            if let Some(s) = seq {
                earliest = Some(earliest.map_or(s, |e| e.min(s)));
            }
        };
        for id in read_set.ids() {
            if id.is_table_level() {
                // A wildcard read conflicts with any concurrent write to the
                // table, wherever its shard: probe every any-writer list.
                for (s, shard) in self.shards.iter().enumerate() {
                    loads.bump(s, 1);
                    let Some(table) = shard.tables.get(&id.table()) else { continue };
                    loads.bump(s, 1);
                    note(first_above(&table.any_writer, start_seq));
                }
            } else {
                // A row read conflicts with concurrent writes to that row or
                // with a concurrent table-level write; both live in the
                // row's home shard (wildcards are replicated into every
                // shard).
                let s = self.shard_of(*id);
                loads.bump(s, 1);
                let Some(table) = self.shards[s].tables.get(&id.table()) else { continue };
                loads.bump(s, 2);
                note(first_above(&table.wildcard, start_seq));
                if let Some(rows) = table.rows.get(&id.row()) {
                    note(first_above(rows, start_seq));
                }
            }
        }
        earliest
    }

    fn index_writes(&mut self, seq: u64, writes: &RwSet) {
        for id in writes.ids() {
            if id.is_table_level() {
                // A table-level write covers rows in every shard: replicate
                // it so row reads stay single-shard.
                for shard in &mut self.shards {
                    let table = shard.tables.entry(id.table()).or_default();
                    table.wildcard.push_back(seq);
                    if table.any_writer.back() != Some(&seq) {
                        table.any_writer.push_back(seq);
                    }
                }
            } else {
                let s = self.shard_of(*id);
                let table = self.shards[s].tables.entry(id.table()).or_default();
                table.rows.entry(id.row()).or_default().push_back(seq);
                // One any-writer entry per (shard, table, seq): ids of the
                // same table are adjacent in the sorted write-set, and seq
                // is the largest value in every list, so dedup against the
                // back suffices.
                if table.any_writer.back() != Some(&seq) {
                    table.any_writer.push_back(seq);
                }
            }
        }
    }

    /// Removes one retired history entry's contributions from exactly the
    /// shards it was indexed in: each id undoes its own insertion — its
    /// key's shard for a row, every shard for a wildcard — so gc cost
    /// follows the write's real fan-out instead of scaling with the shard
    /// count. `evict_front` pops only an exact front match and gc retires
    /// history oldest-first, so revisiting a (shard, table) pair for a
    /// second id of the same write is a harmless no-op.
    fn unindex_writes(&mut self, seq: u64, writes: &RwSet) {
        for id in writes.ids() {
            if id.is_table_level() {
                for shard in &mut self.shards {
                    if let Some(table) = shard.tables.get_mut(&id.table()) {
                        evict_front(&mut table.wildcard, seq);
                        evict_front(&mut table.any_writer, seq);
                        if table.is_empty() {
                            shard.tables.remove(&id.table());
                        }
                    }
                }
            } else {
                let s = self.shard_of(*id);
                if let Some(table) = self.shards[s].tables.get_mut(&id.table()) {
                    if let Some(rows) = table.rows.get_mut(&id.row()) {
                        evict_front(rows, seq);
                        if rows.is_empty() {
                            table.rows.remove(&id.row());
                        }
                    }
                    evict_front(&mut table.any_writer, seq);
                    if table.is_empty() {
                        self.shards[s].tables.remove(&id.table());
                    }
                }
            }
        }
    }
}

/// A certifier that answers the DBSM conflict check from an N-way sharded
/// write-history index, reporting critical-path cost: the generic
/// [`HistoryCertifier`] at a [`ShardedPlacement`]. See the module
/// documentation for the placement rules and the equivalence guarantee.
pub type ShardedCertifier = HistoryCertifier<ShardedPlacement>;

impl ShardedCertifier {
    /// Creates a sharded certifier with `shards` keyed shards and the
    /// generic [`row_shard_key`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        ShardedCertifier::with_key(shards, row_shard_key)
    }

    /// Creates a sharded certifier with `shards` keyed shards and a custom
    /// partition key (e.g. the TPC-C home warehouse).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_key(shards: usize, key: ShardKeyFn) -> Self {
        HistoryCertifier::from_placement(ShardedPlacement::new(shards, key))
    }

    /// Number of keyed shards (the spill shard is extra).
    pub fn shard_count(&self) -> usize {
        self.place.shard_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::{CertWork, HistoryTruncated, LinearCertifier, Outcome};
    use crate::request::CertRequest;
    use crate::SiteId;

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn wild(t: u16) -> TupleId {
        TupleId::table_level(TableId(t))
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    /// A key that refuses every tuple: everything spills.
    fn no_key(_id: TupleId) -> Option<u64> {
        None
    }

    /// A deterministic pseudo-random request stream exercising rows,
    /// wildcards, varying snapshots and varying set sizes (mirrors the
    /// backend.rs equivalence stream).
    fn stream(len: u64) -> Vec<CertRequest> {
        let mut reqs = Vec::new();
        let mut x = 0x51ed_270b_684e_a0d5u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..len {
            let reads: Vec<TupleId> = (0..rng() % 6)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 8 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let writes: Vec<TupleId> = (0..rng() % 4)
                .map(|_| {
                    let t = (rng() % 5) as u16;
                    match rng() % 16 {
                        0 => wild(t),
                        r => id(t, r % 97 + 1),
                    }
                })
                .collect();
            let back = rng() % 5;
            reqs.push(req((i % 3) as u16, i, i.saturating_sub(back), &reads, &writes));
        }
        reqs
    }

    #[test]
    fn every_shard_count_matches_linear_on_a_mixed_stream() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let mut linear = LinearCertifier::new();
            let mut sharded = ShardedCertifier::new(shards);
            for (i, r) in stream(600).iter().enumerate() {
                let a = linear.certify(r);
                let b = sharded.certify(r);
                assert_eq!(
                    a.map(|(o, _)| o),
                    b.map(|(o, _)| o),
                    "request {i} diverged at {shards} shards"
                );
                if i % 97 == 0 {
                    let stable = linear.last_committed().saturating_sub(16);
                    linear.gc(stable);
                    sharded.gc(stable);
                    assert_eq!(linear.low_water(), sharded.low_water());
                    assert_eq!(linear.history_len(), sharded.history_len());
                }
            }
            assert_eq!(linear.last_committed(), sharded.last_committed());
        }
    }

    #[test]
    fn wildcard_writes_conflict_in_every_shard() {
        // A table-level write is replicated into every shard, so row reads
        // of any shard see it, and the reported conflict_seq matches the
        // linear scan's earliest-writer rule.
        let mut c = ShardedCertifier::new(4);
        c.certify(&req(0, 1, 0, &[], &[wild(1)])).expect("wildcard write"); // seq 1
        c.certify(&req(0, 2, 1, &[], &[id(1, 6)])).expect("row write"); // seq 2
        for row in [1u64, 2, 3, 4, 5] {
            // Rows land in different shards (row % 4); all conflict with the
            // wildcard at seq 1.
            let (o, w) = c.certify(&req(1, 10 + row, 0, &[id(1, row)], &[])).expect("read");
            assert_eq!(o, Outcome::Abort { conflict_seq: 1 }, "row {row}");
            assert_eq!(w.shards_touched, 1, "row reads stay single-shard");
        }
        // Past the wildcard, only the row write at seq 2 conflicts — and
        // only for its own row.
        let (o, _) = c.certify(&req(1, 20, 1, &[id(1, 6)], &[])).expect("read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 2 });
        let (o, _) = c.certify(&req(1, 21, 1, &[id(1, 7)], &[])).expect("read");
        assert!(o.is_commit());
    }

    #[test]
    fn wildcard_reads_fan_out_across_all_shards() {
        let mut c = ShardedCertifier::new(4);
        c.certify(&req(0, 1, 0, &[], &[id(2, 9)])).expect("write"); // shard 1
        let (o, w) = c.certify(&req(1, 2, 0, &[wild(2)], &[])).expect("wild read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(w.shards_touched, 5, "wildcard read probes every shard incl. spill");
        assert!(w.critical_probes <= w.probes);
        // A wildcard read of an unwritten table commits after probing the
        // same fan-out.
        let (o, w) = c.certify(&req(1, 3, 0, &[wild(3)], &[])).expect("clean wild read");
        assert!(o.is_commit());
        assert_eq!(w.shards_touched, 5);
    }

    #[test]
    fn keyless_tuples_certify_through_the_spill_shard() {
        let mut c = ShardedCertifier::with_key(8, no_key);
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("write"); // spills
        let (o, w) = c.certify(&req(1, 2, 0, &[id(1, 5)], &[])).expect("read");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(w.shards_touched, 1, "everything funnels through spill");
        assert_eq!(w.critical_probes, w.probes, "single shard: critical path is the total");
        // Disjoint rows still commit — the spill shard is a real index, not
        // a pessimistic catch-all.
        let (o, _) = c.certify(&req(1, 3, 0, &[id(1, 6)], &[])).expect("read");
        assert!(o.is_commit());
    }

    #[test]
    fn critical_path_reports_the_most_loaded_shard() {
        let mut c = ShardedCertifier::new(2);
        // Rows 2,4,6 land in shard 0; row 1 in shard 1 (row % 2).
        for (i, r) in [2u64, 4, 6, 1].iter().enumerate() {
            c.certify(&req(0, i as u64, i as u64, &[], &[id(1, *r)])).expect("write");
        }
        let reads = [id(1, 2), id(1, 4), id(1, 6), id(1, 1)];
        let (ok, w) = c.certify_read_only(&reads.iter().copied().collect(), 0);
        assert!(!ok);
        assert_eq!(w.shards_touched, 2);
        // Shard 0 absorbs three row probes (3 × 3), shard 1 one (1 × 3).
        assert_eq!(w.probes, 12);
        assert_eq!(w.critical_probes, 9, "critical path = the 3-row shard");
    }

    #[test]
    fn speculation_reports_per_shard_loads() {
        // The pipelined path feeds each shard's probe count to its own FIFO
        // server; the loads must agree with the folded CertWork.
        let mut c = ShardedCertifier::new(2);
        for (i, r) in [2u64, 4, 6, 1].iter().enumerate() {
            c.certify(&req(0, i as u64, i as u64, &[], &[id(1, *r)])).expect("write");
        }
        let reads = [id(1, 2), id(1, 4), id(1, 6), id(1, 1)];
        let probe = c.speculate(&req(1, 50, 0, &reads, &[]));
        assert_eq!(probe.work.probes, 12);
        assert_eq!(probe.work.critical_probes, 9);
        let mut loads = probe.loads.clone();
        loads.sort_unstable();
        assert_eq!(loads, vec![(0, 9), (1, 3)]);
    }

    #[test]
    fn gc_then_certify_reports_truncation_per_shard() {
        // The HistoryTruncated edge must behave identically no matter which
        // shard a stale snapshot's reads would probe: the low-water check
        // guards the whole certifier, not one shard's index.
        let mut c = ShardedCertifier::new(4);
        for i in 0..12u64 {
            c.certify(&req(0, i, i, &[], &[id(1, i % 8 + 1)])).expect("fill");
        }
        c.gc(10);
        assert_eq!(c.low_water(), 10);
        assert_eq!(c.history_len(), 2);
        for row in [1u64, 2, 3, 4] {
            let err = c.certify(&req(1, 100 + row, 9, &[id(1, row)], &[])).expect_err("stale");
            assert_eq!(err, HistoryTruncated { start_seq: 9, low_water: 10 });
        }
        // At the low-water mark certification works again, in every shard.
        for row in [1u64, 2, 3, 4] {
            c.certify(&req(1, 200 + row, 10, &[id(2, row)], &[])).expect("fresh");
        }
        // gc clamps to last_committed: over-eager stability estimates never
        // strand the next snapshot.
        c.gc(1_000_000);
        assert_eq!(c.history_len(), 0);
        assert_eq!(c.low_water(), c.last_committed());
        let (o, _) =
            c.certify(&req(1, 300, c.last_committed(), &[id(1, 1)], &[])).expect("post-gc");
        assert!(o.is_commit());
    }

    #[test]
    fn gc_evicts_from_every_shard_incrementally() {
        let mut c = ShardedCertifier::new(3);
        for i in 0..30u64 {
            // Rows spread across shards; every 5th write is a wildcard that
            // replicates into all of them.
            let w: Vec<TupleId> = if i % 5 == 0 { vec![wild(1)] } else { vec![id(1, i % 9 + 1)] };
            c.certify(&req(0, i, i, &[], &w)).expect("fill");
        }
        c.gc(28);
        assert_eq!(c.history_len(), 2);
        // The index answers exactly as a fresh certifier fed the surviving
        // suffix would: only seqs 29 and 30 remain probe-able.
        let (o, _) = c.certify(&req(1, 100, 28, &[id(1, (28 % 9) + 1)], &[])).expect("probe");
        assert_eq!(o, Outcome::Abort { conflict_seq: 29 });
        c.gc(30);
        for shard in &c.place.shards {
            assert!(shard.tables.is_empty(), "full gc empties every shard");
        }
    }

    #[test]
    fn scratch_reuse_leaves_no_state_behind() {
        // Back-to-back certifications must not leak probe counts into each
        // other — the scratch drain resets exactly what it touched.
        let mut c = ShardedCertifier::new(4);
        c.certify(&req(0, 1, 0, &[], &[id(1, 1), id(1, 2), id(1, 3)])).expect("write");
        let (_, w1) = c.certify_read_only(&[id(1, 1), id(1, 2)].into_iter().collect(), 1);
        let (_, w2) = c.certify_read_only(&[id(1, 1), id(1, 2)].into_iter().collect(), 1);
        assert_eq!(w1, w2, "identical probes, identical work");
        let (_, w3) = c.certify_read_only(&RwSet::new(), 1);
        assert_eq!(w3, CertWork::default(), "empty read-set performs no work");
    }

    #[test]
    fn trait_object_roundtrip_via_backend_kind() {
        use crate::backend::CertBackendKind;
        let kind = CertBackendKind::Sharded { shards: 4 };
        assert_eq!(kind.name(), "sharded");
        let mut b = kind.new_backend();
        assert_eq!(b.servers(), 5, "four keyed shards plus spill");
        let (o, w) = b.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("first");
        assert_eq!(o, Outcome::Commit(1));
        assert_eq!(w.shards_touched, 0, "empty read-set probes nothing");
        let (o, w) = b.certify(&req(0, 2, 0, &[id(1, 1)], &[])).expect("second");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(w.shards_touched, 1);
        b.gc(1);
        assert_eq!(b.history_len(), 0);
        assert_eq!(b.low_water(), 1);
    }
}

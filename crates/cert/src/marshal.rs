//! Wire format for certification requests.
//!
//! "All this information, along with the identifiers of the last transaction
//! that has been committed locally, are marshaled into a message buffer"
//! (§3.3). Written tuple *values* are represented by padding of the real
//! cumulative size, "so its size resembles the one obtained in a real
//! system". Unmarshalling is zero-copy for the padding (a [`Bytes`] slice),
//! mirroring the prototype's copy-avoidance.

use crate::request::CertRequest;
use crate::rwset::RwSet;
use crate::tuple::TupleId;
use crate::SiteId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic tag so stray packets are rejected fast.
const MAGIC: u16 = 0xD85E;

/// Error unmarshalling a certification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnmarshalError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Bad magic tag.
    BadMagic(u16),
    /// Declared lengths exceed the buffer.
    LengthMismatch {
        /// Bytes the header claims the body needs.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Identifier lists not sorted/unique (corrupt or adversarial input).
    UnsortedIds,
}

impl fmt::Display for UnmarshalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnmarshalError::Truncated => write!(f, "buffer truncated"),
            UnmarshalError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            UnmarshalError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} bytes, had {actual}")
            }
            UnmarshalError::UnsortedIds => write!(f, "identifier list not sorted and unique"),
        }
    }
}

impl std::error::Error for UnmarshalError {}

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 2 + 2 + 8 + 8 + 4 + 4 + 4;

/// Serialized size of a request, without allocating.
pub fn marshalled_len(req: &CertRequest) -> usize {
    HEADER_LEN + 8 * (req.read_set.len() + req.write_set.len()) + req.write_bytes as usize
}

/// Marshals a certification request into a fresh buffer.
///
/// Layout (all little-endian):
/// `magic:u16 site:u16 txn:u64 start_seq:u64 n_read:u32 n_write:u32
/// write_bytes:u32 read_ids[n_read]:u64 write_ids[n_write]:u64
/// padding[write_bytes]`.
pub fn marshal(req: &CertRequest) -> Bytes {
    let mut buf = BytesMut::with_capacity(marshalled_len(req));
    buf.put_u16_le(MAGIC);
    buf.put_u16_le(req.site.0);
    buf.put_u64_le(req.txn);
    buf.put_u64_le(req.start_seq);
    buf.put_u32_le(req.read_set.len() as u32);
    buf.put_u32_le(req.write_set.len() as u32);
    buf.put_u32_le(req.write_bytes);
    for id in req.read_set.ids() {
        buf.put_u64_le(id.as_raw());
    }
    for id in req.write_set.ids() {
        buf.put_u64_le(id.as_raw());
    }
    // Written values: padding of the real cumulative size. A cheap fill is
    // deliberate — the simulation needs the *size*, not the content.
    buf.put_bytes(0xAB, req.write_bytes as usize);
    buf.freeze()
}

/// Unmarshals a certification request.
///
/// # Errors
///
/// Returns an [`UnmarshalError`] on truncated, mis-tagged, mis-sized or
/// unsorted input; the certifier never sees malformed requests.
pub fn unmarshal(mut buf: Bytes) -> Result<CertRequest, UnmarshalError> {
    if buf.len() < HEADER_LEN {
        return Err(UnmarshalError::Truncated);
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(UnmarshalError::BadMagic(magic));
    }
    let site = SiteId(buf.get_u16_le());
    let txn = buf.get_u64_le();
    let start_seq = buf.get_u64_le();
    let n_read = buf.get_u32_le() as usize;
    let n_write = buf.get_u32_le() as usize;
    let write_bytes = buf.get_u32_le();
    let body = 8 * (n_read + n_write) + write_bytes as usize;
    if buf.len() != body {
        return Err(UnmarshalError::LengthMismatch { expected: body, actual: buf.len() });
    }
    let mut read_ids = Vec::with_capacity(n_read);
    for _ in 0..n_read {
        read_ids.push(TupleId::from_raw(buf.get_u64_le()));
    }
    let mut write_ids = Vec::with_capacity(n_write);
    for _ in 0..n_write {
        write_ids.push(TupleId::from_raw(buf.get_u64_le()));
    }
    if !read_ids.windows(2).all(|w| w[0] < w[1]) || !write_ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(UnmarshalError::UnsortedIds);
    }
    Ok(CertRequest {
        site,
        txn,
        start_seq,
        read_set: RwSet::from_sorted(read_ids),
        write_set: RwSet::from_sorted(write_ids),
        write_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TableId;

    fn sample() -> CertRequest {
        CertRequest {
            site: SiteId(3),
            txn: 42,
            start_seq: 1000,
            read_set: RwSet::from_iter([TupleId::new(TableId(1), 5), TupleId::new(TableId(2), 9)]),
            write_set: RwSet::from_iter([TupleId::new(TableId(2), 9)]),
            write_bytes: 137,
        }
    }

    #[test]
    fn roundtrip() {
        let req = sample();
        let wire = marshal(&req);
        assert_eq!(wire.len(), marshalled_len(&req));
        let back = unmarshal(wire).expect("roundtrip");
        assert_eq!(back, req);
    }

    #[test]
    fn empty_sets_roundtrip() {
        let req = CertRequest {
            site: SiteId(0),
            txn: 0,
            start_seq: 0,
            read_set: RwSet::new(),
            write_set: RwSet::new(),
            write_bytes: 0,
        };
        let back = unmarshal(marshal(&req)).expect("roundtrip");
        assert_eq!(back, req);
    }

    #[test]
    fn rejects_truncated() {
        let wire = marshal(&sample());
        assert_eq!(unmarshal(wire.slice(0..5)), Err(UnmarshalError::Truncated));
        let short = wire.slice(0..wire.len() - 1);
        assert!(matches!(unmarshal(short), Err(UnmarshalError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = BytesMut::from(&marshal(&sample())[..]);
        raw[0] ^= 0xFF;
        assert!(matches!(unmarshal(raw.freeze()), Err(UnmarshalError::BadMagic(_))));
    }

    #[test]
    fn rejects_unsorted_ids() {
        let req = sample();
        let mut raw = BytesMut::from(&marshal(&req)[..]);
        // Swap the two read ids in place.
        let a = HEADER_LEN;
        for i in 0..8 {
            raw.as_mut().swap(a + i, a + 8 + i);
        }
        assert_eq!(unmarshal(raw.freeze()), Err(UnmarshalError::UnsortedIds));
    }

    #[test]
    fn padding_matches_declared_write_bytes() {
        let req = sample();
        let wire = marshal(&req);
        assert_eq!(wire.len() - HEADER_LEN - 8 * 3, 137);
    }
}

//! The certification request: what a site multicasts when a transaction
//! enters the committing stage (§3.3).

use crate::rwset::RwSet;
use crate::SiteId;

/// Data gathered when a transaction is ready to commit, atomically multicast
/// to the group of replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRequest {
    /// Originating site.
    pub site: SiteId,
    /// Site-local transaction identifier (unique per site).
    pub txn: u64,
    /// Global sequence number of the last transaction committed at the
    /// originating site when this request was built — defines which
    /// committed transactions count as *concurrent* during certification.
    pub start_seq: u64,
    /// Identifiers of tuples read.
    pub read_set: RwSet,
    /// Identifiers of tuples written.
    pub write_set: RwSet,
    /// Cumulative size of the written values in bytes (sent as padding so
    /// message sizes match a real system's).
    pub write_bytes: u32,
}

impl CertRequest {
    /// Globally unique transaction identity `(site, txn)`.
    pub fn gid(&self) -> (SiteId, u64) {
        (self.site, self.txn)
    }
}

//! The index-placement abstraction behind the unified and sharded
//! certifiers, and the generic history certifier written once over it.
//!
//! [`IndexedCertifier`](crate::IndexedCertifier) and
//! [`ShardedCertifier`](crate::ShardedCertifier) differ only in *where* a
//! committed write lands in the probe index and *which* index servers a read
//! probes — the history window, sequence numbering, garbage collection and
//! the speculative certify/confirm pipeline are identical. [`IndexPlacement`]
//! captures exactly the varying part; [`HistoryCertifier`] supplies the
//! invariant scaffolding once, so the optimistic pipeline below lands in a
//! single place instead of being duplicated per backend.
//!
//! # Speculative certification
//!
//! The pipelined commit path overlaps certification with the total-order
//! broadcast: when a request is *tentatively* delivered (content received,
//! global sequence not yet known), [`HistoryCertifier::speculate`] probes the
//! index against the history seen so far and remembers the answer together
//! with its `basis` — the last committed sequence number covered by the
//! probe. When the global sequence arrives, [`HistoryCertifier::confirm`]
//! turns the speculation into the *bit-identical* synchronous outcome:
//!
//! * a speculative **conflict** is final — later commits only append higher
//!   sequence numbers, so the speculative hit is still the linear scan's
//!   first (lowest) hit ([`SpecResolution::Hit`]);
//! * a speculative **pass** with an unchanged basis commits with no further
//!   probing ([`SpecResolution::Hit`]);
//! * a speculative **pass** overtaken by later commits re-probes only the
//!   delta window `(basis, last_committed]`
//!   ([`SpecResolution::Revalidated`], or [`SpecResolution::Rollback`] when
//!   the delta overturns the speculative commit);
//! * a request with no speculation on file falls back to a full synchronous
//!   certification ([`SpecResolution::Miss`]).
//!
//! Soundness leans on two invariants: commits append strictly increasing
//! sequence numbers (so nothing below the basis appears later), and garbage
//! collection only evicts history at or below the low-water mark, which
//! [`HistoryCertifier::confirm`] checks against `start_seq` before trusting
//! any speculation.

use crate::certifier::{CertWork, HistoryTruncated, Outcome};
use crate::request::CertRequest;
use crate::rwset::RwSet;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

/// Per-table slice of the write-history index.
///
/// All three containers hold *ascending* sequence numbers: commits arrive in
/// total order, so insertion is a push to the back, and garbage collection —
/// which retires the globally oldest history entry first — is a pop from the
/// front. A conflict probe is then a single `partition_point` for the first
/// sequence number above the request's snapshot.
#[derive(Debug, Clone, Default)]
pub(crate) struct TableIndex {
    /// Row number → sequence numbers of committed transactions that wrote it.
    pub(crate) rows: HashMap<u64, VecDeque<u64>>,
    /// Sequence numbers of table-level (wildcard) writes to this table.
    pub(crate) wildcard: VecDeque<u64>,
    /// Sequence numbers of *any* write touching this table (row or
    /// wildcard), deduplicated — the list a wildcard *read* probes.
    pub(crate) any_writer: VecDeque<u64>,
}

impl TableIndex {
    pub(crate) fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.wildcard.is_empty() && self.any_writer.is_empty()
    }
}

/// Smallest sequence number in `seqs` strictly above `start_seq`.
pub(crate) fn first_above(seqs: &VecDeque<u64>, start_seq: u64) -> Option<u64> {
    let i = seqs.partition_point(|s| *s <= start_seq);
    seqs.get(i).copied()
}

/// Pops the front of `seqs` when it equals the sequence number being
/// garbage-collected; eviction follows history order, so the retired
/// sequence number is always the oldest one present.
pub(crate) fn evict_front(seqs: &mut VecDeque<u64>, seq: u64) {
    debug_assert!(seqs.front().is_none_or(|s| *s >= seq), "eviction out of order");
    if seqs.front() == Some(&seq) {
        seqs.pop_front();
    }
}

/// Reusable per-request probe accounting: a probe counter per index server
/// plus the list of servers touched, reset after every request instead of
/// reallocated — the certification hot path performs no per-request
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct ShardLoads {
    /// Probe count per server for the request in flight.
    probes: Vec<usize>,
    /// Servers with a non-zero counter, so resetting is O(touched).
    touched: Vec<usize>,
}

impl ShardLoads {
    /// Creates accounting sized for `servers` index servers.
    pub fn new(servers: usize) -> Self {
        ShardLoads { probes: vec![0; servers], touched: Vec::with_capacity(servers) }
    }

    /// Adds `n` probes to `server`'s counter for the request in flight.
    pub fn bump(&mut self, server: usize, n: usize) {
        if self.probes[server] == 0 {
            self.touched.push(server);
        }
        self.probes[server] += n;
    }

    /// The `(server, probes)` pairs accumulated so far, in touch order.
    pub fn snapshot(&self) -> Vec<(usize, usize)> {
        self.touched.iter().map(|&s| (s, self.probes[s])).collect()
    }

    /// Folds the counters into a [`CertWork`] and resets for the next
    /// request.
    pub fn drain(&mut self) -> CertWork {
        let mut work = CertWork::default();
        for &s in &self.touched {
            work.probes += self.probes[s];
            work.critical_probes = work.critical_probes.max(self.probes[s]);
            self.probes[s] = 0;
        }
        work.shards_touched = self.touched.len();
        self.touched.clear();
        work
    }
}

/// Where committed writes are indexed and which index servers a read-set
/// probes — the only part that differs between the unified and sharded
/// certifiers. [`HistoryCertifier`] supplies everything else.
///
/// Implementations must be deterministic: the placement may move entries
/// between servers freely, but the conflict answer returned by
/// [`IndexPlacement::probe`] must equal the linear scan's first hit for
/// every placement.
pub trait IndexPlacement {
    /// Number of parallel index servers probes are spread over (1 for the
    /// unified index; keyed shards plus the spill shard when sharded).
    fn servers(&self) -> usize;

    /// Probes for the lowest sequence number strictly above `start_seq`
    /// whose indexed write-set intersects `read_set`, bumping `loads` once
    /// per index probe on the server that performs it.
    fn probe(&self, read_set: &RwSet, start_seq: u64, loads: &mut ShardLoads) -> Option<u64>;

    /// Indexes a committed write-set under `seq` (sequence numbers arrive
    /// strictly increasing).
    fn index_writes(&mut self, seq: u64, writes: &RwSet);

    /// Removes one retired history entry's contributions from the index
    /// (entries retire oldest-first).
    fn unindex_writes(&mut self, seq: u64, writes: &RwSet);
}

/// A speculative certification answer produced at tentative-delivery time.
#[derive(Debug, Clone, Copy)]
struct Speculation {
    /// The request snapshot the probe ran against.
    start_seq: u64,
    /// `last_committed` at probe time: everything at or below it was
    /// covered by the speculative probe.
    basis: u64,
    /// The speculative conflict, if one was found.
    conflict: Option<u64>,
}

/// Probe accounting returned by [`HistoryCertifier::speculate`]: the work
/// performed plus the per-server load split a queueing simulation feeds to
/// its shard servers.
#[derive(Debug, Clone, Default)]
pub struct SpecProbe {
    /// Probe accounting for the speculative pass.
    pub work: CertWork,
    /// `(server, probes)` pairs: how many index probes each placement
    /// server absorbed for this request.
    pub loads: Vec<(usize, usize)>,
}

/// How [`HistoryCertifier::confirm`] resolved a request against its
/// speculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecResolution {
    /// The speculative answer was final: a speculative conflict, or a
    /// speculative pass whose basis still equals `last_committed` — zero
    /// delta work on the critical path.
    Hit,
    /// The speculative pass was overtaken by later commits; the delta
    /// window re-probe upheld the commit.
    Revalidated,
    /// The delta re-probe overturned a speculative pass into an abort —
    /// the optimistic work is rolled back.
    Rollback,
    /// No speculation was on file; a full synchronous certification ran.
    Miss,
}

/// The certification scaffolding shared by every indexed backend: the
/// committed-history window, total-order sequence numbering, garbage
/// collection, and the speculative certify/confirm pipeline — generic over
/// the [`IndexPlacement`] that decides where writes are indexed.
///
/// Use through its concrete aliases
/// [`IndexedCertifier`](crate::IndexedCertifier) and
/// [`ShardedCertifier`](crate::ShardedCertifier).
#[derive(Debug, Clone)]
pub struct HistoryCertifier<P> {
    /// The probe index — the part that varies per backend.
    pub(crate) place: P,
    /// Committed `(seq, write_set)` pairs, oldest first — retained only to
    /// drive incremental index eviction on gc.
    history: VecDeque<(u64, RwSet)>,
    /// Next global sequence number to assign.
    next_seq: u64,
    /// All sequence numbers `<= low_water` have been garbage collected.
    low_water: u64,
    /// Outstanding speculations keyed by `(site, txn)`.
    specs: HashMap<(u16, u64), Speculation>,
    /// Reused probe accounting (interior mutability because read-only
    /// validation certifies through `&self`).
    scratch: RefCell<ShardLoads>,
}

impl<P: IndexPlacement> HistoryCertifier<P> {
    /// Wraps a placement in the shared certification scaffolding; the first
    /// committed transaction receives sequence number 1.
    pub fn from_placement(place: P) -> Self {
        let scratch = RefCell::new(ShardLoads::new(place.servers()));
        HistoryCertifier {
            place,
            history: VecDeque::new(),
            next_seq: 1,
            low_water: 0,
            specs: HashMap::new(),
            scratch,
        }
    }

    /// Rebuilds the retained history on top of a *different* placement.
    ///
    /// This is the receiving half of rejoin state transfer under partial
    /// placement: the donor holds the full history, and the rejoiner only
    /// wants the rows its spans own, so the transfer re-indexes every
    /// retained write-set through `place` instead of shipping the donor's
    /// index verbatim. Speculations are not carried over — they are bound to
    /// requests in flight at the donor, which the rejoiner never saw.
    pub fn reproject<Q: IndexPlacement>(&self, mut place: Q) -> HistoryCertifier<Q> {
        for (seq, writes) in &self.history {
            place.index_writes(*seq, writes);
        }
        let scratch = RefCell::new(ShardLoads::new(place.servers()));
        HistoryCertifier {
            place,
            history: self.history.clone(),
            next_seq: self.next_seq,
            low_water: self.low_water,
            specs: HashMap::new(),
            scratch,
        }
    }

    /// Sequence number of the last committed transaction (0 if none).
    pub fn last_committed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Number of write-sets retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Oldest garbage-collected sequence number.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Number of parallel index servers the placement spreads probes over.
    pub fn servers(&self) -> usize {
        self.place.servers()
    }

    /// Outstanding speculations (bounded by requests in flight between
    /// tentative and total-order delivery).
    pub fn speculations(&self) -> usize {
        self.specs.len()
    }

    /// Probes the placement, folding per-server accounting into one
    /// [`CertWork`]. A single-server placement reports plain `probes` only:
    /// critical-path and fan-out accounting are properties of parallel
    /// placements.
    fn probe_conflicts(&self, read_set: &RwSet, start_seq: u64) -> (Option<u64>, CertWork) {
        let mut scratch = self.scratch.borrow_mut();
        let conflict = self.place.probe(read_set, start_seq, &mut scratch);
        let mut work = scratch.drain();
        if self.place.servers() == 1 {
            work.critical_probes = 0;
            work.shards_touched = 0;
        }
        (conflict, work)
    }

    /// Appends a commit: assigns the next sequence number and indexes the
    /// write-set (empty write-sets leave no history).
    fn commit(&mut self, req: &CertRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if !req.write_set.is_empty() {
            self.place.index_writes(seq, &req.write_set);
            self.history.push_back((seq, req.write_set.clone()));
        }
        seq
    }

    /// Certifies a request delivered in total order; same contract and same
    /// decisions as [`LinearCertifier::certify`](crate::LinearCertifier::certify),
    /// at O(request) probe cost.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    pub fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        let (conflict, work) = self.probe_conflicts(&req.read_set, req.start_seq);
        if let Some(conflict_seq) = conflict {
            return Ok((Outcome::Abort { conflict_seq }, work));
        }
        let seq = self.commit(req);
        Ok((Outcome::Commit(seq), work))
    }

    /// Local read-only validation; same contract as
    /// [`LinearCertifier::certify_read_only`](crate::LinearCertifier::certify_read_only).
    pub fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        let (conflict, work) = self.probe_conflicts(read_set, start_seq);
        (conflict.is_none(), work)
    }

    /// The probe half of [`HistoryCertifier::certify`], with no state
    /// change: this site's *verdict* on the request — the lowest conflicting
    /// sequence number among the tuples this placement indexes, or `None`.
    ///
    /// Under partial replication ([`SpanCertifier`](crate::SpanCertifier))
    /// each replica votes only on its local span; combining a covering set
    /// of votes with [`merge_votes`](crate::merge_votes) reproduces the
    /// full-replication conflict answer bit for bit, because the global
    /// earliest conflict is the minimum of the per-span earliest conflicts.
    /// The decision is applied separately via [`HistoryCertifier::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    pub fn vote(&self, req: &CertRequest) -> Result<(Option<u64>, CertWork), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        Ok(self.probe_conflicts(&req.read_set, req.start_seq))
    }

    /// The state-change half of [`HistoryCertifier::certify`]: applies an
    /// externally merged decision. A commit must carry the next sequence
    /// number in total order — every replica applies the same decision
    /// stream, so the counters stay in lockstep; aborts consume nothing.
    pub fn apply(&mut self, req: &CertRequest, outcome: Outcome) {
        if let Outcome::Commit(seq) = outcome {
            debug_assert_eq!(seq, self.next_seq, "decision applied out of order");
            let assigned = self.commit(req);
            debug_assert_eq!(assigned, seq);
            let _ = assigned;
        }
    }

    /// Speculatively certifies a *tentatively* delivered request (content
    /// received, global order unknown) against the history seen so far,
    /// recording the answer for [`HistoryCertifier::confirm`]. Never
    /// mutates the index, so it is safe at any interleaving; requests whose
    /// snapshot already fell below the low-water mark are probed but not
    /// recorded (their confirm re-checks and reports truncation).
    pub fn speculate(&mut self, req: &CertRequest) -> SpecProbe {
        let (loads, work) = {
            let mut scratch = self.scratch.borrow_mut();
            let conflict = self.place.probe(&req.read_set, req.start_seq, &mut scratch);
            let loads = scratch.snapshot();
            let mut work = scratch.drain();
            if self.place.servers() == 1 {
                work.critical_probes = 0;
                work.shards_touched = 0;
            }
            if req.start_seq >= self.low_water {
                self.specs.insert(
                    (req.site.0, req.txn),
                    Speculation {
                        start_seq: req.start_seq,
                        basis: self.last_committed(),
                        conflict,
                    },
                );
            }
            (loads, work)
        };
        SpecProbe { work, loads }
    }

    /// Resolves a request at total-order delivery time against its
    /// speculation, producing the *bit-identical* outcome a synchronous
    /// [`HistoryCertifier::certify`] would have — see the module
    /// documentation for the case analysis. The returned [`CertWork`] is
    /// only the delta work performed *here*, on the delivery critical path;
    /// the speculative probe was already accounted by
    /// [`HistoryCertifier::speculate`].
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    pub fn confirm(
        &mut self,
        req: &CertRequest,
    ) -> Result<(Outcome, CertWork, SpecResolution), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        let Some(spec) = self.specs.remove(&(req.site.0, req.txn)) else {
            let (outcome, work) = self.certify(req)?;
            return Ok((outcome, work, SpecResolution::Miss));
        };
        debug_assert_eq!(spec.start_seq, req.start_seq, "speculation for a different snapshot");
        if let Some(conflict_seq) = spec.conflict {
            // Commits after the speculative probe all carry sequence numbers
            // above its basis, hence above this conflict: the speculative
            // hit is still the linear scan's first (lowest) hit.
            return Ok((Outcome::Abort { conflict_seq }, CertWork::default(), SpecResolution::Hit));
        }
        if spec.basis == self.last_committed() {
            // Nothing committed since the speculative pass covered the full
            // window: commit with zero delta work.
            let seq = self.commit(req);
            return Ok((Outcome::Commit(seq), CertWork::default(), SpecResolution::Hit));
        }
        // Re-probe only the delta window (basis, last_committed]; the
        // speculative pass already cleared (start_seq, basis].
        let delta_start = spec.basis.max(req.start_seq);
        let (conflict, work) = self.probe_conflicts(&req.read_set, delta_start);
        match conflict {
            Some(conflict_seq) => {
                Ok((Outcome::Abort { conflict_seq }, work, SpecResolution::Rollback))
            }
            None => {
                let seq = self.commit(req);
                Ok((Outcome::Commit(seq), work, SpecResolution::Revalidated))
            }
        }
    }

    /// Resolves a request at total-order delivery time against its
    /// speculation into this site's *vote* — the probe half of
    /// [`HistoryCertifier::confirm`], with no commit. The conflict answer is
    /// bit-identical to what [`HistoryCertifier::vote`] would return at the
    /// same point, but a speculative hit or a quiet basis costs zero delta
    /// probes on the delivery critical path: the pipelined partial-
    /// replication path overlaps the span probe with the ordering round and
    /// only pays here for the delta window. The merged decision is applied
    /// separately via [`HistoryCertifier::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark.
    pub fn confirm_vote(
        &mut self,
        req: &CertRequest,
    ) -> Result<(Option<u64>, CertWork, SpecResolution), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        let Some(spec) = self.specs.remove(&(req.site.0, req.txn)) else {
            let (conflict, work) = self.vote(req)?;
            return Ok((conflict, work, SpecResolution::Miss));
        };
        debug_assert_eq!(spec.start_seq, req.start_seq, "speculation for a different snapshot");
        if let Some(conflict_seq) = spec.conflict {
            // Later commits only append higher sequence numbers: the
            // speculative hit is still the lowest one.
            return Ok((Some(conflict_seq), CertWork::default(), SpecResolution::Hit));
        }
        if spec.basis == self.last_committed() {
            // Nothing committed since the speculative pass covered the full
            // window: a clean vote with zero delta work.
            return Ok((None, CertWork::default(), SpecResolution::Hit));
        }
        // Re-probe only the delta window (basis, last_committed].
        let delta_start = spec.basis.max(req.start_seq);
        let (conflict, work) = self.probe_conflicts(&req.read_set, delta_start);
        let res =
            if conflict.is_some() { SpecResolution::Rollback } else { SpecResolution::Revalidated };
        Ok((conflict, work, res))
    }

    /// Discards history at or below `stable_seq` (clamped to
    /// [`HistoryCertifier::last_committed`]), incrementally evicting the
    /// retired entries from the placement and pruning speculations whose
    /// snapshot fell below the new low-water mark (their confirm would
    /// report truncation anyway).
    pub fn gc(&mut self, stable_seq: u64) {
        let stable_seq = stable_seq.min(self.last_committed());
        while let Some((seq, _)) = self.history.front() {
            if *seq > stable_seq {
                break;
            }
            let (seq, writes) = self.history.pop_front().expect("front just checked");
            self.place.unindex_writes(seq, &writes);
        }
        self.low_water = self.low_water.max(stable_seq);
        let low_water = self.low_water;
        self.specs.retain(|_, s| s.start_seq >= low_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::LinearCertifier;
    use crate::tuple::{TableId, TupleId};
    use crate::{IndexedCertifier, ShardedCertifier, SiteId};

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    #[test]
    fn reproject_rebuilds_history_on_a_new_placement() {
        fn span_of(t: TupleId) -> Option<u64> {
            Some(t.row() % 2)
        }
        let mut oracle = IndexedCertifier::new();
        oracle.certify(&req(0, 1, 0, &[], &[id(1, 2)])).expect("even row"); // seq 1, span 0
        oracle.certify(&req(0, 2, 1, &[], &[id(1, 3)])).expect("odd row"); // seq 2, span 1
        let mut local = oracle.reproject(crate::span::SpanPlacement::new(span_of, [0]));
        assert_eq!(local.last_committed(), oracle.last_committed());
        assert_eq!(local.history_len(), oracle.history_len());
        assert_eq!(local.low_water(), oracle.low_water());
        assert_eq!(local.speculations(), 0, "donor speculations are not transferred");
        // The re-indexed placement sees the owned row's writer…
        let (v, _) = local.vote(&req(1, 3, 0, &[id(1, 2)], &[])).expect("vote");
        assert_eq!(v, Some(1), "owned span was re-indexed from the donor history");
        // …and sequencing resumes exactly where the donor left off.
        let (o, _) = local.certify(&req(1, 4, 2, &[], &[id(1, 4)])).expect("post-rejoin commit");
        assert_eq!(o, Outcome::Commit(3));
    }

    #[test]
    fn speculative_pass_with_quiet_basis_confirms_for_free() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("seed"); // seq 1
        let r = req(1, 2, 1, &[id(1, 2)], &[id(1, 2)]);
        let probe = c.speculate(&r);
        assert!(probe.work.probes > 0, "speculation does the probe work");
        assert_eq!(probe.loads, vec![(0, probe.work.probes)]);
        let (o, w, res) = c.confirm(&r).expect("confirm");
        assert_eq!(o, Outcome::Commit(2));
        assert_eq!(res, SpecResolution::Hit);
        assert_eq!(w, CertWork::default(), "zero delta work on the critical path");
        assert_eq!(c.speculations(), 0, "speculation consumed");
    }

    #[test]
    fn speculative_conflict_is_final() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("writer"); // seq 1
        let r = req(1, 2, 0, &[id(1, 5)], &[]);
        c.speculate(&r);
        // A later commit (higher seq) cannot lower the first hit.
        c.certify(&req(0, 3, 1, &[], &[id(1, 5)])).expect("later writer"); // seq 2
        let (o, w, res) = c.confirm(&r).expect("confirm");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(res, SpecResolution::Hit);
        assert_eq!(w, CertWork::default());
    }

    #[test]
    fn overtaken_speculation_revalidates_through_the_delta_window() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("seed"); // seq 1
        let r = req(1, 2, 1, &[id(2, 7)], &[id(2, 7)]);
        c.speculate(&r);
        // A non-conflicting commit lands between speculation and confirm.
        c.certify(&req(0, 3, 1, &[], &[id(3, 9)])).expect("interloper"); // seq 2
        let (o, w, res) = c.confirm(&r).expect("confirm");
        assert_eq!(o, Outcome::Commit(3));
        assert_eq!(res, SpecResolution::Revalidated);
        assert!(w.probes > 0, "the delta window is re-probed");
    }

    #[test]
    fn reordering_rolls_back_a_speculative_commit() {
        let mut c = IndexedCertifier::new();
        let r = req(1, 2, 0, &[id(1, 5)], &[id(1, 5)]);
        c.speculate(&r); // sees an empty history: speculative commit
                         // Total order places a conflicting writer first.
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("winner"); // seq 1
        let (o, _, res) = c.confirm(&r).expect("confirm");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(res, SpecResolution::Rollback);
    }

    #[test]
    fn confirm_without_speculation_is_a_full_certify() {
        let mut c = ShardedCertifier::new(4);
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("writer");
        let r = req(1, 2, 0, &[id(1, 5)], &[]);
        let (o, w, res) = c.confirm(&r).expect("confirm");
        assert_eq!(o, Outcome::Abort { conflict_seq: 1 });
        assert_eq!(res, SpecResolution::Miss);
        assert!(w.probes > 0);
    }

    #[test]
    fn pipelined_stream_matches_synchronous_certifier() {
        // Interleave speculate arbitrarily early, confirm in total order,
        // with gc mixed in: outcomes match a synchronous twin bit for bit.
        let mut sync = IndexedCertifier::new();
        let mut pipe = ShardedCertifier::new(3);
        let mut x = 0xd1b5_4a32_d192_ed03u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut pending: Vec<CertRequest> = Vec::new();
        for i in 0..400u64 {
            let reads: Vec<TupleId> =
                (0..rng() % 5).map(|_| id((rng() % 4) as u16, rng() % 37 + 1)).collect();
            let writes: Vec<TupleId> =
                (0..rng() % 3).map(|_| id((rng() % 4) as u16, rng() % 37 + 1)).collect();
            let r = req((i % 3) as u16, i, i.saturating_sub(rng() % 4), &reads, &writes);
            pipe.speculate(&r);
            pending.push(r);
            // Confirm a random prefix (total order = submission order here).
            while pending.len() > (rng() % 4) as usize {
                let r = pending.remove(0);
                let (a, _) = sync.certify(&r).expect("sync");
                let (b, _, _) = pipe.confirm(&r).expect("pipe");
                assert_eq!(a, b, "request {} diverged", r.txn);
            }
            if i % 83 == 0 {
                let stable = sync.last_committed().saturating_sub(8);
                sync.gc(stable);
                pipe.gc(stable);
            }
        }
        for r in pending {
            let (a, _) = sync.certify(&r).expect("sync");
            let (b, _, _) = pipe.confirm(&r).expect("pipe");
            assert_eq!(a, b);
        }
        assert_eq!(sync.last_committed(), pipe.last_committed());
        assert_eq!(sync.history_len(), pipe.history_len());
    }

    #[test]
    fn confirm_vote_matches_plain_vote_across_resolutions() {
        // Drive a (speculate → interleaved commits → confirm_vote) stream
        // next to an apply-only twin that votes synchronously: the conflict
        // answers must agree bit for bit, and the cheap resolutions must
        // show up with zero delta work.
        let mut sync = IndexedCertifier::new();
        let mut pipe = IndexedCertifier::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut seen = [false; 4];
        let mut pending: Vec<CertRequest> = Vec::new();
        for i in 0..300u64 {
            let reads: Vec<TupleId> =
                (0..rng() % 5).map(|_| id((rng() % 3) as u16, rng() % 23 + 1)).collect();
            let writes: Vec<TupleId> =
                (0..rng() % 3).map(|_| id((rng() % 3) as u16, rng() % 23 + 1)).collect();
            let r = req((i % 3) as u16, i, i.saturating_sub(rng() % 4), &reads, &writes);
            pipe.speculate(&r);
            pending.push(r);
            while pending.len() > (rng() % 4) as usize {
                let r = pending.remove(0);
                let (a, _) = sync.vote(&r).expect("sync vote");
                let (b, w, res) = pipe.confirm_vote(&r).expect("pipelined vote");
                assert_eq!(a, b, "request {} diverged", r.txn);
                let outcome = match a {
                    Some(conflict_seq) => Outcome::Abort { conflict_seq },
                    None => Outcome::Commit(sync.last_committed() + 1),
                };
                sync.apply(&r, outcome);
                pipe.apply(&r, outcome);
                if res == SpecResolution::Hit {
                    assert_eq!(w, CertWork::default(), "hits are free on the critical path");
                }
                seen[res as usize] = true;
            }
        }
        assert_eq!(sync.last_committed(), pipe.last_committed());
        assert!(seen[SpecResolution::Hit as usize], "stream must exercise hits");
        assert!(seen[SpecResolution::Revalidated as usize], "stream must exercise delta probes");
        assert!(seen[SpecResolution::Rollback as usize], "stream must exercise overturns");
    }

    #[test]
    fn confirm_vote_without_speculation_is_a_full_vote() {
        let mut c = IndexedCertifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("writer"); // seq 1
        let r = req(1, 2, 0, &[id(1, 5)], &[]);
        let (v, w, res) = c.confirm_vote(&r).expect("vote");
        assert_eq!(v, Some(1));
        assert_eq!(res, SpecResolution::Miss);
        assert!(w.probes > 0);
        assert_eq!(c.last_committed(), 1, "confirm_vote never commits");
    }

    #[test]
    fn confirm_vote_reports_truncation_like_confirm() {
        let mut c = IndexedCertifier::new();
        for i in 0..6u64 {
            c.certify(&req(0, i, i, &[], &[id(1, i + 1)])).expect("fill");
        }
        let stale = req(1, 100, 1, &[id(1, 1)], &[]);
        c.speculate(&stale);
        c.gc(4);
        let err = c.confirm_vote(&stale).expect_err("stale snapshot");
        assert_eq!(err, HistoryTruncated { start_seq: 1, low_water: 4 });
    }

    #[test]
    fn gc_prunes_speculations_below_the_low_water_mark() {
        let mut c = IndexedCertifier::new();
        for i in 0..8u64 {
            c.certify(&req(0, i, i, &[], &[id(1, i + 1)])).expect("fill");
        }
        let stale = req(1, 100, 2, &[id(1, 1)], &[]);
        let fresh = req(1, 101, 8, &[id(1, 1)], &[]);
        c.speculate(&stale);
        c.speculate(&fresh);
        assert_eq!(c.speculations(), 2);
        c.gc(6);
        assert_eq!(c.speculations(), 1, "stale speculation pruned");
        let err = c.confirm(&stale).expect_err("stale snapshot");
        assert_eq!(err, HistoryTruncated { start_seq: 2, low_water: 6 });
        let (o, _, res) = c.confirm(&fresh).expect("fresh");
        assert!(o.is_commit());
        assert_eq!(res, SpecResolution::Hit);
    }

    #[test]
    fn linear_twin_agrees_with_speculation_under_rollback_storm() {
        // Heavy same-row contention maximizes rollbacks; the linear
        // certifier is the ground truth.
        let mut lin = LinearCertifier::new();
        let mut pipe = IndexedCertifier::new();
        let mut reqs = Vec::new();
        for i in 0..60u64 {
            reqs.push(req((i % 2) as u16, i, i / 4, &[id(1, i % 3 + 1)], &[id(1, i % 3 + 1)]));
        }
        // Speculate everything up front (worst-case reordering), confirm in
        // total order.
        for r in &reqs {
            pipe.speculate(r);
        }
        let mut rollbacks = 0;
        for r in &reqs {
            let (a, _) = lin.certify(r).expect("linear");
            let (b, _, res) = pipe.confirm(r).expect("pipe");
            assert_eq!(a, b, "txn {} diverged", r.txn);
            if res == SpecResolution::Rollback {
                rollbacks += 1;
            }
        }
        assert!(rollbacks > 0, "the storm must exercise the rollback path");
    }
}

//! Tuple identifiers.
//!
//! The prototype "assumes that each of these tuples is a 64-bit integer" and
//! "the table identifier [is included] as the highest order bits of each
//! tuple identifier" (§3.3), so row-level and table-level entries compare in
//! a single ordered traversal.

use std::fmt;

/// Identifier of a table, occupying the 16 highest-order bits of a tuple id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u16);

/// A 64-bit tuple identifier: table id in the high 16 bits, row number in
/// the low 48 bits. Row number `0` is reserved: it denotes a *table-level*
/// entry (the whole-table lock produced when a read-set exceeds the upgrade
/// threshold, §3.3).
///
/// # Examples
///
/// ```
/// use dbsm_cert::{TableId, TupleId};
///
/// let t = TupleId::new(TableId(3), 42);
/// assert_eq!(t.table(), TableId(3));
/// assert_eq!(t.row(), 42);
/// assert!(!t.is_table_level());
/// assert!(TupleId::table_level(TableId(3)).is_table_level());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(u64);

/// Number of bits holding the row number.
pub const ROW_BITS: u32 = 48;
/// Mask selecting the row number.
pub const ROW_MASK: u64 = (1 << ROW_BITS) - 1;

impl TupleId {
    /// Creates a row-level identifier.
    ///
    /// # Panics
    ///
    /// Panics if `row` is zero (reserved for table-level entries) or does
    /// not fit in 48 bits.
    pub fn new(table: TableId, row: u64) -> Self {
        assert!(row != 0, "row 0 is reserved for table-level entries");
        assert!(row <= ROW_MASK, "row number exceeds 48 bits: {row}");
        TupleId((u64::from(table.0) << ROW_BITS) | row)
    }

    /// Creates the table-level (whole-table) identifier for `table`.
    pub const fn table_level(table: TableId) -> Self {
        TupleId((table.0 as u64) << ROW_BITS)
    }

    /// Reconstructs an identifier from its raw wire representation.
    pub const fn from_raw(raw: u64) -> Self {
        TupleId(raw)
    }

    /// Raw 64-bit representation (what goes on the wire).
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// The table this identifier belongs to.
    pub const fn table(self) -> TableId {
        TableId((self.0 >> ROW_BITS) as u16)
    }

    /// The row number (0 for table-level entries).
    pub const fn row(self) -> u64 {
        self.0 & ROW_MASK
    }

    /// True for whole-table entries.
    pub const fn is_table_level(self) -> bool {
        self.0 & ROW_MASK == 0
    }

    /// True if `self` covers `other`: identical ids, or a table-level entry
    /// of the same table.
    pub fn covers(self, other: TupleId) -> bool {
        self == other || (self.is_table_level() && self.table() == other.table())
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_table_level() {
            write!(f, "t{}:*", self.table().0)
        } else {
            write!(f, "t{}:{}", self.table().0, self.row())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_table_in_high_bits() {
        let t = TupleId::new(TableId(0xABCD), 7);
        assert_eq!(t.as_raw() >> 48, 0xABCD);
        assert_eq!(t.table(), TableId(0xABCD));
        assert_eq!(t.row(), 7);
    }

    #[test]
    fn ordering_groups_by_table() {
        // All ids of table 1 sort below all ids of table 2; the table-level
        // id sorts first within its table. This is what lets certification
        // handle wildcards in a single ordered traversal.
        let wild = TupleId::table_level(TableId(1));
        let row = TupleId::new(TableId(1), ROW_MASK);
        let next_table = TupleId::table_level(TableId(2));
        assert!(wild < row);
        assert!(row < next_table);
    }

    #[test]
    fn covers_semantics() {
        let wild = TupleId::table_level(TableId(1));
        let a = TupleId::new(TableId(1), 5);
        let b = TupleId::new(TableId(2), 5);
        assert!(wild.covers(a));
        assert!(!wild.covers(b));
        assert!(a.covers(a));
        assert!(!a.covers(wild));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn row_zero_is_rejected() {
        let _ = TupleId::new(TableId(0), 0);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn row_too_large_is_rejected() {
        let _ = TupleId::new(TableId(0), 1 << 48);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TupleId::new(TableId(2), 9).to_string(), "t2:9");
        assert_eq!(TupleId::table_level(TableId(2)).to_string(), "t2:*");
    }

    #[test]
    fn raw_roundtrip() {
        let t = TupleId::new(TableId(77), 123_456);
        assert_eq!(TupleId::from_raw(t.as_raw()), t);
    }
}

//! The deterministic certification procedure (§3.3) — linear backend.
//!
//! Every site runs an identical certifier over the totally ordered stream of
//! [`CertRequest`]s. A request aborts iff its read-set intersects the
//! write-set of some *concurrent* committed transaction — one whose global
//! sequence number is greater than the request's `start_seq`. Determinism of
//! this procedure plus total order is what keeps all replicas consistent
//! without distributed locking.
//!
//! [`LinearCertifier`] is the paper-faithful implementation: an ordered-merge
//! scan of the request's read-set against every concurrent write-set. It is
//! one of the two [`CertBackend`](crate::CertBackend) implementations; see
//! [`IndexedCertifier`](crate::IndexedCertifier) for the indexed alternative
//! whose cost is O(request) instead of O(conflict window).

use crate::request::CertRequest;
use crate::rwset::RwSet;
use std::collections::VecDeque;
use std::fmt;

/// Outcome of certifying one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The transaction commits and receives this global sequence number.
    Commit(u64),
    /// The transaction aborts: its read-set intersected the write-set of the
    /// concurrent transaction committed with this sequence number.
    Abort {
        /// Sequence number of the conflicting committed transaction.
        conflict_seq: u64,
    },
}

impl Outcome {
    /// True for [`Outcome::Commit`].
    pub fn is_commit(&self) -> bool {
        matches!(self, Outcome::Commit(_))
    }
}

/// Work performed during one certification — used by the simulation bridge
/// to charge CPU proportionally to the real algorithm's cost.
///
/// The linear backend reports `history_scanned`/`comparisons`; the indexed
/// backend reports `probes`; the sharded backend additionally splits its
/// probes into a *critical path* (`critical_probes`, the most-loaded shard)
/// and the fan-out (`shards_touched`). A cost model prices each dimension
/// separately so every backend is charged honestly for what it actually
/// executes — and a sharded certification is charged for its slowest shard
/// plus a per-shard merge term, not for the sum of all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertWork {
    /// Committed transactions examined (linear backend).
    pub history_scanned: usize,
    /// Ordered-merge comparison steps across all examined write-sets
    /// (linear backend).
    pub comparisons: usize,
    /// Index lookups — hash probes and interval-list binary searches —
    /// performed, summed over all shards (indexed and sharded backends).
    pub probes: usize,
    /// Probes performed by the most-loaded shard this request touched — the
    /// critical path of an N-way parallel certification (sharded backend;
    /// zero for the single-threaded backends).
    pub critical_probes: usize,
    /// Number of distinct shards the request's read-set probed (sharded
    /// backend; zero for the single-threaded backends).
    pub shards_touched: usize,
}

/// Error: the certifier's history no longer covers the request's snapshot.
///
/// The replication layer garbage-collects history only below the globally
/// stable sequence number, so seeing this error indicates a protocol bug —
/// it is surfaced rather than silently mis-certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryTruncated {
    /// The request's snapshot sequence number.
    pub start_seq: u64,
    /// Oldest sequence number still covered by the history.
    pub low_water: u64,
}

impl fmt::Display for HistoryTruncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certification history truncated: request snapshot {} below low-water {}",
            self.start_seq, self.low_water
        )
    }
}

impl std::error::Error for HistoryTruncated {}

/// Deterministic certifier state: the write-sets of recently committed
/// transactions, keyed by their global sequence numbers, scanned linearly
/// per request exactly as in the paper's prototype.
#[derive(Debug, Clone)]
pub struct LinearCertifier {
    /// Committed `(seq, write_set)` pairs, oldest first, seq contiguous.
    history: VecDeque<(u64, RwSet)>,
    /// Next global sequence number to assign.
    next_seq: u64,
    /// All sequence numbers `<= low_water` have been garbage collected.
    low_water: u64,
}

/// The historical name of the linear backend, kept for source compatibility:
/// `Certifier` has always been the paper-faithful ordered-merge scan.
pub type Certifier = LinearCertifier;

impl Default for LinearCertifier {
    fn default() -> Self {
        LinearCertifier::new()
    }
}

impl LinearCertifier {
    /// Creates a certifier with an empty history; the first committed
    /// transaction receives sequence number 1.
    pub fn new() -> Self {
        LinearCertifier { history: VecDeque::new(), next_seq: 1, low_water: 0 }
    }

    /// Sequence number of the last committed transaction (0 if none).
    pub fn last_committed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Number of write-sets retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Oldest garbage-collected sequence number; snapshots below it cannot
    /// be certified.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// The shared conflict check of both [`LinearCertifier::certify`] and
    /// [`LinearCertifier::certify_read_only`]: scans the write-sets of
    /// transactions concurrent with the snapshot (`seq > start_seq`) and
    /// returns the sequence number of the first one intersecting `read_set`.
    fn scan_conflicts(&self, read_set: &RwSet, start_seq: u64) -> (Option<u64>, CertWork) {
        let mut work = CertWork::default();
        // History is ordered by seq, so binary-search the first relevant one.
        let from = self.history.partition_point(|(seq, _)| *seq <= start_seq);
        for (seq, writes) in self.history.iter().skip(from) {
            work.history_scanned += 1;
            let (hit, steps) = writes.intersect_stats(read_set);
            work.comparisons += steps;
            if hit {
                return (Some(*seq), work);
            }
        }
        (None, work)
    }

    /// Certifies a request delivered in total order, updating the history
    /// when it commits.
    ///
    /// Read-only requests (empty write-set) are certified but never occupy
    /// history space. Requests with an empty read-set cannot conflict (the
    /// DBSM test is read-set vs write-set) and commit unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryTruncated`] if `req.start_seq` predates the garbage
    /// collection low-water mark, making a sound decision impossible.
    pub fn certify(&mut self, req: &CertRequest) -> Result<(Outcome, CertWork), HistoryTruncated> {
        if req.start_seq < self.low_water {
            return Err(HistoryTruncated { start_seq: req.start_seq, low_water: self.low_water });
        }
        let (conflict, work) = self.scan_conflicts(&req.read_set, req.start_seq);
        if let Some(conflict_seq) = conflict {
            return Ok((Outcome::Abort { conflict_seq }, work));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if !req.write_set.is_empty() {
            self.history.push_back((seq, req.write_set.clone()));
        }
        Ok((Outcome::Commit(seq), work))
    }

    /// Certifies a *local read-only* transaction against the current history
    /// without consuming a sequence number — the local validation used for
    /// queries that are not multicast (they acquire no locks and write
    /// nothing, so only read/write concurrency matters).
    pub fn certify_read_only(&self, read_set: &RwSet, start_seq: u64) -> (bool, CertWork) {
        let (conflict, work) = self.scan_conflicts(read_set, start_seq);
        (conflict.is_none(), work)
    }

    /// Discards history entries with sequence numbers `<= stable_seq`.
    /// Called by the replication layer once every site is known to have
    /// committed past `stable_seq` (piggybacked last-committed identifiers).
    ///
    /// `stable_seq` is clamped to [`LinearCertifier::last_committed`]: the
    /// low-water mark never moves past sequence numbers that were actually
    /// assigned, so a gc on an empty (or fully collected) history cannot
    /// make fresh snapshots spuriously [`HistoryTruncated`].
    pub fn gc(&mut self, stable_seq: u64) {
        let stable_seq = stable_seq.min(self.last_committed());
        while let Some((seq, _)) = self.history.front() {
            if *seq <= stable_seq {
                self.history.pop_front();
            } else {
                break;
            }
        }
        self.low_water = self.low_water.max(stable_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{TableId, TupleId};
    use crate::SiteId;

    fn id(t: u16, r: u64) -> TupleId {
        TupleId::new(TableId(t), r)
    }

    fn req(site: u16, txn: u64, start: u64, reads: &[TupleId], writes: &[TupleId]) -> CertRequest {
        CertRequest {
            site: SiteId(site),
            txn,
            start_seq: start,
            read_set: reads.iter().copied().collect(),
            write_set: writes.iter().copied().collect(),
            write_bytes: 0,
        }
    }

    #[test]
    fn first_transaction_commits_with_seq_one() {
        let mut c = Certifier::new();
        let (out, _) = c.certify(&req(0, 1, 0, &[id(1, 1)], &[id(1, 1)])).expect("certify");
        assert_eq!(out, Outcome::Commit(1));
        assert_eq!(c.last_committed(), 1);
    }

    #[test]
    fn concurrent_read_write_conflict_aborts() {
        let mut c = Certifier::new();
        // T1 writes (1,5); T2 was concurrent (start_seq=0) and read (1,5).
        let (o1, _) = c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("t1");
        assert_eq!(o1, Outcome::Commit(1));
        let (o2, _) = c.certify(&req(1, 1, 0, &[id(1, 5)], &[id(1, 5)])).expect("t2");
        assert_eq!(o2, Outcome::Abort { conflict_seq: 1 });
        // The abort leaves no trace in history.
        assert_eq!(c.last_committed(), 1);
        assert_eq!(c.history_len(), 1);
    }

    #[test]
    fn non_concurrent_transactions_do_not_conflict() {
        let mut c = Certifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("t1");
        // T2 started after T1 committed (start_seq = 1): no conflict.
        let (o2, _) = c.certify(&req(1, 1, 1, &[id(1, 5)], &[id(1, 5)])).expect("t2");
        assert_eq!(o2, Outcome::Commit(2));
    }

    #[test]
    fn disjoint_concurrent_transactions_commit() {
        let mut c = Certifier::new();
        c.certify(&req(0, 1, 0, &[id(1, 1)], &[id(1, 1)])).expect("t1");
        let (o2, _) = c.certify(&req(1, 1, 0, &[id(1, 2)], &[id(1, 2)])).expect("t2");
        assert_eq!(o2, Outcome::Commit(2));
    }

    #[test]
    fn empty_read_set_commits_unconditionally() {
        let mut c = Certifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 1)])).expect("t1");
        let (o2, _) = c.certify(&req(1, 1, 0, &[], &[id(1, 1)])).expect("blind write");
        assert_eq!(o2, Outcome::Commit(2));
    }

    #[test]
    fn certification_is_deterministic_across_replicas() {
        let reqs: Vec<CertRequest> = (0..100)
            .map(|i| {
                req(
                    (i % 3) as u16,
                    i,
                    i / 3,
                    &[id(1, i % 7 + 1), id(2, i % 5 + 1)],
                    &[id(1, i % 7 + 1)],
                )
            })
            .collect();
        let mut a = Certifier::new();
        let mut b = Certifier::new();
        for r in &reqs {
            let (oa, _) = a.certify(r).expect("a");
            let (ob, _) = b.certify(r).expect("b");
            assert_eq!(oa, ob);
        }
        assert_eq!(a.last_committed(), b.last_committed());
    }

    #[test]
    fn table_level_entries_conflict_with_rows() {
        let mut c = Certifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(3, 42)])).expect("t1");
        let mut reads = RwSet::new();
        reads.extend([TupleId::table_level(TableId(3))]);
        let r2 = CertRequest {
            site: SiteId(1),
            txn: 1,
            start_seq: 0,
            read_set: reads,
            write_set: RwSet::new(),
            write_bytes: 0,
        };
        let (o2, _) = c.certify(&r2).expect("t2");
        assert!(matches!(o2, Outcome::Abort { .. }));
    }

    #[test]
    fn gc_trims_history_and_sets_low_water() {
        let mut c = Certifier::new();
        for i in 0..10 {
            c.certify(&req(0, i, i, &[], &[id(1, i + 1)])).expect("fill");
        }
        assert_eq!(c.history_len(), 10);
        c.gc(5);
        assert_eq!(c.history_len(), 5);
        assert_eq!(c.low_water(), 5);
        // Requests with snapshots at/above the low-water still certify.
        let (o, _) = c.certify(&req(1, 100, 5, &[id(2, 1)], &[])).expect("ok");
        assert!(o.is_commit());
        // Older snapshots are rejected loudly.
        let err = c.certify(&req(1, 101, 4, &[id(2, 1)], &[])).expect_err("too old");
        assert_eq!(err, HistoryTruncated { start_seq: 4, low_water: 5 });
    }

    #[test]
    fn gc_on_empty_history_never_outruns_commits() {
        // Regression: gc with a stable_seq beyond last_committed (e.g. a
        // stale or overeager stability estimate, or repeated gc on an empty
        // history) must not push low_water past the assigned sequence
        // numbers — otherwise the very next request at the current snapshot
        // would be spuriously rejected as HistoryTruncated.
        let mut c = Certifier::new();
        c.gc(100);
        assert_eq!(c.low_water(), 0, "nothing committed, nothing collectable");
        let (o, _) = c.certify(&req(0, 1, 0, &[id(1, 1)], &[id(1, 1)])).expect("fresh");
        assert_eq!(o, Outcome::Commit(1));
        // Drain the history completely, then gc far beyond it.
        c.gc(1);
        assert_eq!(c.history_len(), 0);
        c.gc(1_000_000);
        assert_eq!(c.low_water(), 1, "clamped to last_committed");
        // gc-then-certify at the current snapshot still succeeds.
        let (o, _) = c.certify(&req(0, 2, 1, &[id(1, 1)], &[])).expect("post-gc certify");
        assert!(o.is_commit());
        // And a genuinely stale snapshot still errors.
        let err = c.certify(&req(0, 3, 0, &[id(1, 1)], &[])).expect_err("stale");
        assert_eq!(err, HistoryTruncated { start_seq: 0, low_water: 1 });
    }

    #[test]
    fn read_only_local_certification() {
        let mut c = Certifier::new();
        c.certify(&req(0, 1, 0, &[], &[id(1, 5)])).expect("t1");
        let reads: RwSet = [id(1, 5)].into_iter().collect();
        let (ok_old, _) = c.certify_read_only(&reads, 0);
        assert!(!ok_old, "concurrent read of written tuple must fail");
        let (ok_new, _) = c.certify_read_only(&reads, 1);
        assert!(ok_new, "snapshot after commit passes");
        // Read-only validation consumes no sequence number.
        assert_eq!(c.last_committed(), 1);
    }

    #[test]
    fn work_scales_with_concurrent_history_only() {
        let mut c = Certifier::new();
        for i in 0..50 {
            c.certify(&req(0, i, i, &[], &[id(1, i + 1)])).expect("fill");
        }
        let (_, work_new) = c.certify(&req(1, 99, 50, &[id(2, 1)], &[])).expect("new");
        assert_eq!(work_new.history_scanned, 0);
        let (_, work_old) = c.certify(&req(1, 98, 10, &[id(2, 1)], &[])).expect("old");
        assert_eq!(work_old.history_scanned, 40);
        // The linear backend never performs index probes.
        assert_eq!(work_old.probes, 0);
    }

    #[test]
    fn read_only_and_update_certification_share_the_conflict_check() {
        // The same read-set/snapshot pair must reach the same verdict through
        // both entry points (one shared scan, satellite of the refactor).
        let mut c = Certifier::new();
        for i in 0..20 {
            c.certify(&req(0, i, i, &[], &[id(1, i + 1)])).expect("fill");
        }
        for start in 0..20 {
            let reads: RwSet = [id(1, 7), id(2, 3)].into_iter().collect();
            let (ok, ro_work) = c.certify_read_only(&reads, start);
            let probe = CertRequest {
                site: SiteId(1),
                txn: 1000 + start,
                start_seq: start,
                read_set: reads,
                write_set: RwSet::new(),
                write_bytes: 0,
            };
            let (outcome, up_work) = c.clone().certify(&probe).expect("window");
            assert_eq!(ok, outcome.is_commit(), "start {start}");
            assert_eq!(ro_work, up_work, "identical scans, identical work");
        }
    }
}
